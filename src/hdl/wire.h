// Wire: the user-facing signal object, mirroring JHDL's Wire class.
//
// A Wire is an ordered list of Nets (bit 0 = LSB). Wires are constructed
// with an owning Cell, exactly as in JHDL:
//
//   Wire* t1 = new Wire(this, 1);          // fresh 1-bit wire
//   Wire* bus = new Wire(this, 8, "data"); // named 8-bit wire
//
// The constructor transfers ownership to the owning cell (JHDL-style
// self-registration); do not delete Wires manually.
//
// Bit-selects, ranges, and concatenations produce new Wire views sharing
// the same underlying Nets:
//
//   Wire* b3 = bus->gw(3);          // single-bit view of bit 3
//   Wire* lo = bus->range(3, 0);    // bits 3..0
//   Wire* cat = hi->concat(lo);     // hi in MSBs, lo in LSBs
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hdl/net.h"
#include "util/bitvector.h"

namespace jhdl {

class Cell;

/// Multi-bit signal; a view over one Net per bit.
class Wire {
 public:
  /// Create a `width`-bit wire with fresh nets, owned by `owner`.
  /// An empty name gets an auto-generated one ("w<id>").
  Wire(Cell* owner, std::size_t width, std::string name = "");

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  const std::string& name() const { return name_; }
  Cell* owner() const { return owner_; }

  /// Rename the wire (tooling hook used by the obfuscator). Does not
  /// rename the underlying nets.
  void rename(std::string new_name) { name_ = std::move(new_name); }
  std::size_t width() const { return nets_.size(); }

  Net* net(std::size_t bit) const;
  const std::vector<Net*>& nets() const { return nets_; }

  /// Dense net-id view (bit i -> net id): the index vector batch loops
  /// hoist once and then use to read/write HWSystem::net_values() (or a
  /// multi-pattern kernel's lane planes) directly, with no per-sample Net
  /// pointer chasing.
  std::vector<std::uint32_t> ids() const {
    std::vector<std::uint32_t> out;
    out.reserve(nets_.size());
    for (const Net* n : nets_) out.push_back(n->id());
    return out;
  }

  /// Single-bit view of bit `i` ("get wire", JHDL's gw()).
  Wire* gw(std::size_t i);

  /// View of bits [lo, hi] inclusive, hi >= lo.
  Wire* range(std::size_t hi, std::size_t lo);

  /// Concatenation view: *this supplies the MSBs, `low` the LSBs.
  Wire* concat(Wire* low);

  /// Current simulation value of all bits.
  BitVector value() const;

  /// Convenience: value as unsigned integer (throws if any bit is X/Z).
  std::uint64_t uvalue() const { return value().to_uint(); }
  /// Convenience: value as signed integer (throws if any bit is X/Z).
  std::int64_t svalue() const { return value().to_int(); }

 private:
  friend class Cell;
  // View constructor: shares nets, used by gw/range/concat.
  Wire(Cell* owner, std::vector<Net*> nets, std::string name);

  Cell* owner_;
  std::string name_;
  std::vector<Net*> nets_;
};

}  // namespace jhdl
