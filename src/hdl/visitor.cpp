#include "hdl/visitor.h"

namespace jhdl {

void for_each_cell(Cell& root, const std::function<void(Cell&)>& fn) {
  fn(root);
  for (Cell* child : root.children()) {
    for_each_cell(*child, fn);
  }
}

std::vector<Primitive*> collect_primitives(Cell& root) {
  std::vector<Primitive*> prims;
  for_each_cell(root, [&](Cell& c) {
    if (c.is_primitive()) {
      prims.push_back(static_cast<Primitive*>(&c));
    }
  });
  return prims;
}

namespace {
void stats_walk(Cell& c, std::size_t depth, HierarchyStats& s) {
  ++s.cells;
  if (c.is_primitive()) ++s.primitives;
  s.wires += c.wires().size();
  if (depth > s.max_depth) s.max_depth = depth;
  for (Cell* child : c.children()) {
    stats_walk(*child, depth + 1, s);
  }
}
}  // namespace

HierarchyStats hierarchy_stats(Cell& root) {
  HierarchyStats s;
  stats_walk(root, 0, s);
  return s;
}

}  // namespace jhdl
