// Net: a single-bit electrical node.
//
// Wires (the user-facing, possibly multi-bit objects) are views over Nets.
// Each Net has at most one driver - either the output pin of a primitive or
// an external source (testbench / top-level input). All Nets are owned by
// the HWSystem arena; Cells and Wires reference them by pointer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/logic.h"

namespace jhdl {

class Primitive;

/// Who drives a net.
enum class DriverKind : std::uint8_t {
  None,      ///< undriven (floating); simulates as X until driven
  Primitive,  ///< driven by a primitive output pin
  External,  ///< driven by the testbench / simulator put()
};

/// A single-bit node in the flattened circuit graph.
///
/// Invariant: at most one driver. The HWSystem enforces this when primitives
/// bind output pins.
class Net {
 public:
  /// `values` is the owning HWSystem's dense value array (one Logic4 per
  /// net id). Values live there - not in the Net - so the simulation
  /// engines can sweep a contiguous byte array instead of scattering
  /// loads and stores across ~90-byte Net objects, while Wire::value(),
  /// probes, and testbenches keep reading through this same accessor.
  /// The vector object itself is a stable address even as it grows.
  Net(std::uint32_t id, std::string name, std::vector<Logic4>* values)
      : id_(id), name_(std::move(name)), values_(values) {}

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  /// Rename the net (obfuscator tooling hook).
  void rename(std::string new_name) { name_ = std::move(new_name); }

  DriverKind driver_kind() const { return driver_kind_; }
  Primitive* driver() const { return driver_; }
  int driver_pin() const { return driver_pin_; }

  /// Primitives whose inputs read this net.
  const std::vector<Primitive*>& sinks() const { return sinks_; }

  /// Current simulation value (reads the system's dense value array).
  Logic4 value() const { return (*values_)[id_]; }
  void set_value(Logic4 v) { (*values_)[id_] = v; }

  // --- wiring (called by Primitive/Simulator, not by end users) ---
  void bind_driver(Primitive* p, int pin);
  void bind_external();
  void add_sink(Primitive* p) { sinks_.push_back(p); }

 private:
  std::uint32_t id_;
  std::string name_;
  DriverKind driver_kind_ = DriverKind::None;
  Primitive* driver_ = nullptr;
  int driver_pin_ = -1;
  std::vector<Primitive*> sinks_;
  std::vector<Logic4>* values_;  ///< the HWSystem's dense value array
};

}  // namespace jhdl
