// Relative placement (RLOC) attributes, mirroring the Xilinx relative
// location constraints JHDL module generators attach to improve timing.
//
// A cell's RLOC is an offset (row, col) in slice coordinates relative to its
// parent. Absolute positions are computed by summing the chain of RLOCs up
// to the root; cells without an RLOC anchor at their parent's origin.
#pragma once

namespace jhdl {

/// Relative location in slice grid coordinates.
struct RLoc {
  int row = 0;
  int col = 0;

  bool operator==(const RLoc&) const = default;
};

}  // namespace jhdl
