#include "hdl/cell.h"

#include <algorithm>

#include "hdl/error.h"
#include "hdl/hwsystem.h"

namespace jhdl {

const char* port_dir_name(PortDir dir) {
  switch (dir) {
    case PortDir::In:
      return "in";
    case PortDir::Out:
      return "out";
    case PortDir::InOut:
      return "inout";
  }
  return "?";
}

Cell::Cell(Cell* parent, std::string name) {
  if (parent == nullptr) {
    throw HdlError("Cell '" + name +
                   "' must have a parent (only HWSystem roots the tree)");
  }
  parent_ = parent;
  name_ = parent->unique_child_name(name.empty() ? "cell" : name);
  parent->children_.push_back(this);
}

Cell::Cell(std::string name) : name_(std::move(name)) {}

Cell::~Cell() {
  destroying_ = true;
  // Delete owned wires and children. Reverse order so later-constructed
  // nodes (which may reference earlier ones) go first.
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    delete *it;
  }
  children_.clear();
  for (auto it = wires_.rbegin(); it != wires_.rend(); ++it) {
    delete *it;
  }
  wires_.clear();
  // If we are being destroyed while the parent lives on (exception during
  // construction, or explicit removal), unregister from the parent.
  if (parent_ != nullptr && !parent_->destroying_) {
    parent_->remove_child(this);
  }
}

void Cell::remove_child(Cell* child) {
  auto it = std::find(children_.begin(), children_.end(), child);
  if (it != children_.end()) children_.erase(it);
}

std::string Cell::full_name() const {
  if (parent_ == nullptr) return name_;
  return parent_->full_name() + "/" + name_;
}

HWSystem* Cell::system() const {
  const Cell* c = this;
  while (c->parent_ != nullptr) c = c->parent_;
  auto* sys = dynamic_cast<const HWSystem*>(c);
  if (sys == nullptr) {
    throw HdlError("cell '" + full_name() + "' is not rooted in an HWSystem");
  }
  return const_cast<HWSystem*>(sys);
}

const Port* Cell::find_port(const std::string& name) const {
  for (const Port& p : ports_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void Cell::set_property(const std::string& key, const std::string& value) {
  properties_[key] = value;
}

const std::string* Cell::property(const std::string& key) const {
  auto it = properties_.find(key);
  return it == properties_.end() ? nullptr : &it->second;
}

RLoc Cell::absolute_loc() const {
  RLoc loc;
  for (const Cell* c = this; c != nullptr; c = c->parent_) {
    if (c->rloc_) {
      loc.row += c->rloc_->row;
      loc.col += c->rloc_->col;
    }
  }
  return loc;
}

Wire* Cell::adopt_wire(Wire* wire) {
  wires_.push_back(wire);
  return wire;
}

void Cell::port_in(const std::string& name, Wire* wire) {
  add_port(name, PortDir::In, wire);
}

void Cell::port_out(const std::string& name, Wire* wire) {
  add_port(name, PortDir::Out, wire);
}

void Cell::port_inout(const std::string& name, Wire* wire) {
  add_port(name, PortDir::InOut, wire);
}

void Cell::add_port(const std::string& name, PortDir dir, Wire* wire) {
  if (wire == nullptr) {
    throw HdlError("null wire bound to port '" + name + "' of " + full_name());
  }
  if (find_port(name) != nullptr) {
    throw HdlError("duplicate port '" + name + "' on " + full_name());
  }
  ports_.push_back(Port{name, dir, wire});
}

void Cell::rename(const std::string& new_name) {
  if (parent_ == nullptr) {
    name_ = new_name;
    return;
  }
  name_ = "";  // free the current name during uniquification
  name_ = parent_->unique_child_name(new_name.empty() ? "cell" : new_name);
}

std::string Cell::unique_child_name(const std::string& base) const {
  auto taken = [&](const std::string& n) {
    for (const Cell* c : children_) {
      if (c->name_ == n) return true;
    }
    return false;
  };
  if (!taken(base)) return base;
  for (int i = 1;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!taken(candidate)) return candidate;
  }
}

}  // namespace jhdl
