// Query oracles: the attacker's view of a delivered black box.
//
// The paper's applet ships a usable port-level simulation model while the
// netlist stays secret (Section 4.2). Everything an adversary can do is
// therefore a sequence of oracle transactions: drive the input ports,
// clock, read the output ports. This header models that surface exactly -
// ModelOracle is the in-process applet black box, AuditedOracle is the
// same surface behind the server's QueryAuditor - so the extraction
// harness measures what actually leaks through the interface the product
// ships, with per-module query accounting (QueryBudget) shared by every
// stage of an attack.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/auditor.h"
#include "core/blackbox.h"
#include "util/bitvector.h"

namespace jhdl::attack {

/// Per-module attack accounting: every oracle transaction (including the
/// Reset that makes a stateful query reproducible, and every throttled
/// attempt) spends from one budget, so "bits recovered per N queries"
/// charges the attacker for all traffic it generated.
class QueryBudget {
 public:
  /// 0 = unlimited.
  explicit QueryBudget(std::uint64_t limit = 0) : limit_(limit) {}

  /// Spend `n` query units; false (and nothing spent) when the budget
  /// cannot cover them.
  bool try_spend(std::uint64_t n = 1) {
    if (limit_ > 0 && spent_ + n > limit_) return false;
    spent_ += n;
    return true;
  }
  /// Return units reserved but not actually spent (e.g. a transaction
  /// budgeted at reset+eval that was refused after one round trip).
  void refund(std::uint64_t n) { spent_ = n > spent_ ? 0 : spent_ - n; }
  bool exhausted() const { return limit_ > 0 && spent_ >= limit_; }
  std::uint64_t spent() const { return spent_; }
  std::uint64_t limit() const { return limit_; }

 private:
  std::uint64_t limit_;
  std::uint64_t spent_ = 0;
};

/// One port-level transaction surface. Implementations count traffic.
class QueryOracle {
 public:
  virtual ~QueryOracle() = default;

  virtual std::vector<core::BlackBoxPort> ports() const = 0;
  /// Cycles before outputs reflect inputs (0 = combinational).
  virtual std::size_t latency() const = 0;

  /// One transaction: present `inputs` (a full input image), settle or
  /// clock as the module requires, read every output into `outputs`.
  /// Returns false when the query was refused (throttled/parked) -
  /// the attempt still counts as traffic but leaks nothing.
  virtual bool query(const std::map<std::string, BitVector>& inputs,
                     std::map<std::string, BitVector>& outputs) = 0;

  /// Query units generated so far (refused attempts included).
  std::uint64_t queries() const { return queries_; }
  /// Refused attempts.
  std::uint64_t throttled() const { return throttled_; }

 protected:
  std::uint64_t queries_ = 0;
  std::uint64_t throttled_ = 0;
};

/// Direct oracle over the applet's BlackBoxModel. Each transaction
/// resets the model, applies the inputs and clocks `latency` cycles (one
/// settle pass for combinational IP), making the answer a deterministic
/// function of the single input image even for stateful IP like the FIR.
/// The reset round trip is charged as a query unit of its own for
/// sequential modules - an attacker over the wire pays it too.
class ModelOracle : public QueryOracle {
 public:
  /// Borrows the model (caller keeps ownership and must outlive this).
  explicit ModelOracle(core::BlackBoxModel& model);

  std::vector<core::BlackBoxPort> ports() const override;
  std::size_t latency() const override { return latency_; }
  bool query(const std::map<std::string, BitVector>& inputs,
             std::map<std::string, BitVector>& outputs) override;

 private:
  core::BlackBoxModel& model_;
  std::size_t latency_;
  std::vector<core::BlackBoxPort> ports_;
};

/// The same surface behind the server's QueryAuditor: every transaction
/// is shown to the auditor first; Throttle/Park verdicts refuse the
/// query exactly as the delivery service answers Error(Throttled). Used
/// by the harness to measure how much a deployed auditor raises the
/// attacker's query cost without standing up a socket per probe.
class AuditedOracle : public QueryOracle {
 public:
  /// Borrows both; the auditor accumulates trips across the attack.
  AuditedOracle(QueryOracle& inner, QueryAuditor& auditor);

  std::vector<core::BlackBoxPort> ports() const override;
  std::size_t latency() const override { return inner_.latency(); }
  bool query(const std::map<std::string, BitVector>& inputs,
             std::map<std::string, BitVector>& outputs) override;

  const QueryAuditor& auditor() const { return auditor_; }

 private:
  QueryOracle& inner_;
  QueryAuditor& auditor_;
};

}  // namespace jhdl::attack
