// Watermark-survival evaluator: does the vendor's ownership mark survive
// the transforms an adversary (or an innocent resynthesis flow) applies
// to a delivered circuit?
//
// The Watermarker (core/protect.h) hides a CRC-chained signature in
// unreachable ROM entries. This evaluator re-verifies the mark after the
// two transforms the delivery pipeline itself can apply - identifier
// obfuscation, which must NOT disturb the mark (it renames, never
// rewrites tables) - and after random ROM-entry tampering at increasing
// intensities, which models an attacker scrubbing tables to destroy the
// evidence. Reported as survival rates alongside the extraction score,
// the two halves of the paper's visibility-vs-protection trade-off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace jhdl::attack {

/// One tamper intensity's outcome over `trials` independent circuits.
struct SurvivalPoint {
  std::size_t tampered_entries = 0;  ///< carrier entries overwritten
  std::size_t trials = 0;
  std::size_t fully_verified = 0;    ///< extract().verified() held
  double mean_carrier_match = 0.0;   ///< matching / carriers, averaged
  double survival_rate() const {
    return trials > 0
               ? static_cast<double>(fully_verified) /
                     static_cast<double>(trials)
               : 0.0;
  }
};

/// Full evaluation of one watermarked configuration.
struct SurvivalReport {
  std::string circuit;
  std::size_t carriers = 0;         ///< carrier entries per instance
  bool survives_obfuscation = false;
  std::vector<SurvivalPoint> tamper_points;
  Json to_json() const;
};

/// Embed a watermark in a freshly built unsigned KCM of `input_width`
/// bits, verify it survives obfuscation, then tamper `tamper_levels`
/// carrier entries at random over `trials` instances per level and
/// report survival. Deterministic for a given seed.
SurvivalReport evaluate_watermark_survival(
    std::size_t input_width, const std::string& owner_tag,
    const std::vector<std::size_t>& tamper_levels, std::size_t trials,
    std::uint64_t seed);

}  // namespace jhdl::attack
