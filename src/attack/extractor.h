// ConeExtractor: cone-wise truth-table learning over a black box's port
// interface - the offense half of the adversarial IP-protection loop.
//
// The attack treats each OUTPUT BIT as a boolean function of the input
// bits (its logic cone) and tries to recover that function from oracle
// transactions alone, the way FuncTeller recovers eFPGA functionality
// from I/O queries:
//
//   exhaustive  when the total input width W fits the budgeted sweep
//               (2^W transactions), enumerate every input image. This
//               yields each cone's EXACT support (the input bits the
//               function actually depends on) and its full truth table.
//   sampling    wide interfaces get (a) sensitivity probing - flip one
//               input bit of a random base image and watch which output
//               bits react - to approximate each cone's support, then
//               (b) enumeration of the approximated cone with the other
//               inputs pinned, and (c) validation on fresh random images
//               with a Hoeffding lower bound on the agreement rate.
//
// The PROTECTION SCORE this produces is deliberately attacker-friendly:
//   recovered_bits  = truth-table entries the attacker has confirmed
//                     (exhaustive cones count known entries; sampled
//                     cones are discounted to (2*p_lb - 1) * entries,
//                     the correlation credit of a table that agrees with
//                     the oracle with probability >= p_lb)
//   score_per_10k   = recovered_bits / queries_spent * 10000
// Lower is better for the vendor. The same attack run against an
// audited oracle spends queries on throttled transactions that recover
// nothing, which is how bench_attack shows the defense raising the
// attacker's query cost.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attack/oracle.h"
#include "util/json.h"

namespace jhdl::attack {

/// Attack sizing. Defaults match bench_attack's full run.
struct ExtractorConfig {
  /// Exhaustive sweep allowed while total input bits <= this.
  std::size_t exhaustive_limit = 12;
  /// Random base images used for sensitivity probing (sampling mode).
  std::size_t probe_bases = 24;
  /// Largest approximated cone the sampler will enumerate.
  std::size_t cone_limit = 10;
  /// Fresh random images used to validate sampled cones.
  std::size_t validation_queries = 256;
  std::uint64_t seed = 0xA77ACC;
};

/// What the attack learned about one output bit's cone.
struct ConeReport {
  std::string output;       ///< port name
  std::size_t bit = 0;      ///< bit index within the port
  /// Input bits the cone was found to depend on, as (port, bit).
  std::vector<std::pair<std::string, std::size_t>> support;
  bool exact = false;       ///< exhaustively recovered (vs sampled)
  std::size_t table_entries = 0;  ///< truth-table entries confirmed
  double confidence = 0.0;  ///< validation agreement (1.0 when exact)
  double recovered_bits = 0.0;    ///< credited toward the score
  double total_bits = 0.0;        ///< 2^|support|: what there was to learn
  /// The learned truth table: projection of the support bits (bit k of
  /// the key = value of support[k]) -> output bit value.
  std::map<std::uint64_t, bool> table;
};

/// One full extraction run against one module.
struct ExtractionReport {
  std::string module;
  std::uint64_t queries_spent = 0;    ///< oracle query units consumed
  std::uint64_t queries_throttled = 0;
  bool budget_exhausted = false;
  bool exhaustive = false;            ///< mode the run used
  std::size_t input_bits = 0;
  std::size_t output_bits = 0;
  double recovered_bits = 0.0;
  double total_bits = 0.0;
  std::vector<ConeReport> cones;

  /// Recovered truth-table bits per 10k queries (the protection score;
  /// lower = better protected).
  double score_per_10k() const {
    return queries_spent > 0
               ? recovered_bits / static_cast<double>(queries_spent) * 10000.0
               : 0.0;
  }
  /// Fraction of the interface function recovered.
  double recovered_fraction() const {
    return total_bits > 0.0 ? recovered_bits / total_bits : 0.0;
  }
  Json to_json() const;
};

/// Runs the attack. Stateless between runs; all accounting goes through
/// the oracle and the budget.
class ConeExtractor {
 public:
  explicit ConeExtractor(ExtractorConfig config = {}) : config_(config) {}

  /// Attack `oracle`, spending at most `budget`. Every oracle
  /// transaction first reserves budget; when the budget runs dry the
  /// attack stops and reports what it holds.
  ExtractionReport extract(QueryOracle& oracle, QueryBudget& budget,
                           const std::string& module_name) const;

  /// Predict the value the learned cone implies for `inputs`
  /// (std::nullopt when the table has no confirmed entry at that
  /// projection). Used by tests to verify exact recovery and by the
  /// validation stage internally.
  static std::optional<bool> predict(
      const ConeReport& cone, const std::map<std::string, BitVector>& inputs);

  const ExtractorConfig& config() const { return config_; }

 private:
  ExtractorConfig config_;
};

}  // namespace jhdl::attack
