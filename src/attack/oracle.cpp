#include "attack/oracle.h"

namespace jhdl::attack {

ModelOracle::ModelOracle(core::BlackBoxModel& model)
    : model_(model), latency_(model.latency()), ports_(model.ports()) {}

std::vector<core::BlackBoxPort> ModelOracle::ports() const { return ports_; }

bool ModelOracle::query(const std::map<std::string, BitVector>& inputs,
                        std::map<std::string, BitVector>& outputs) {
  // Sequential IP: reset so the answer depends only on this image (the
  // reset is its own protocol round trip, so it costs a query unit).
  if (latency_ > 0) {
    model_.reset();
    ++queries_;
  }
  for (const auto& [name, value] : inputs) model_.set_input(name, value);
  if (latency_ > 0) model_.cycle(latency_);
  ++queries_;
  outputs.clear();
  for (const core::BlackBoxPort& port : ports_) {
    if (port.is_input) continue;
    outputs[port.name] = model_.get_output(port.name);
  }
  return true;
}

AuditedOracle::AuditedOracle(QueryOracle& inner, QueryAuditor& auditor)
    : inner_(inner), auditor_(auditor) {}

std::vector<core::BlackBoxPort> AuditedOracle::ports() const {
  return inner_.ports();
}

bool AuditedOracle::query(const std::map<std::string, BitVector>& inputs,
                          std::map<std::string, BitVector>& outputs) {
  const Verdict verdict = auditor_.observe(inputs);
  bool ok = false;
  if (verdict == Verdict::Allow) {
    ok = inner_.query(inputs, outputs);
  } else {
    // The refused round trip is still traffic the attacker paid for.
    ++throttled_;
  }
  queries_ = inner_.queries() + throttled_;
  return ok;
}

}  // namespace jhdl::attack
