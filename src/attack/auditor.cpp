#include "attack/auditor.h"

#include <algorithm>

namespace jhdl::attack {
namespace {

/// Pack one input image (name-ordered, so the same logical vector always
/// packs the same way) into 64-bit words, LSB of the first port first.
void pack_image(const std::map<std::string, BitVector>& inputs,
                std::vector<std::uint64_t>& words, std::size_t& width) {
  words.clear();
  width = 0;
  std::uint64_t cur = 0;
  for (const auto& [name, value] : inputs) {
    for (std::size_t i = 0; i < value.width(); ++i) {
      // X/Z count as a third state folded onto 1: an attacker probing
      // with undefined bits still toggles the packed image.
      if (value.get(i) != Logic4::Zero) cur |= std::uint64_t{1} << (width % 64);
      ++width;
      if (width % 64 == 0) {
        words.push_back(cur);
        cur = 0;
      }
    }
  }
  if (width % 64 != 0) words.push_back(cur);
}

std::uint64_t hash_words(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t w : words) {
    h ^= w;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::size_t popcount_diff(const std::vector<std::uint64_t>& a,
                          const std::vector<std::uint64_t>& b) {
  std::size_t bits = 0;
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = (i < a.size() ? a[i] : 0) ^ (i < b.size() ? b[i] : 0);
    bits += static_cast<std::size_t>(__builtin_popcountll(x));
  }
  return bits;
}

}  // namespace

QueryAuditor::QueryAuditor(AuditorConfig config, obs::MetricsRegistry* metrics)
    : config_(config) {
  if (config_.window == 0) config_.window = 1;
  if (metrics != nullptr) {
    m_queries_ = &metrics->counter("attack.queries");
    m_throttled_ = &metrics->counter("attack.throttled");
    m_trips_ = &metrics->counter("attack.trips");
    m_parks_ = &metrics->counter("attack.parks");
    m_suspicion_ = &metrics->gauge("attack.tripped_sessions");
  }
}

double QueryAuditor::coverage() const {
  if (input_bits_ == 0) return 0.0;
  const std::size_t bits = std::min(input_bits_, config_.coverage_cap_bits);
  const double space = static_cast<double>(std::uint64_t{1} << bits);
  return static_cast<double>(seen_.size()) / space;
}

double QueryAuditor::window_flip_rate() const {
  if (flips_.empty()) return 0.0;
  return flip_sum_ / static_cast<double>(flips_.size());
}

void QueryAuditor::clear() {
  if (throttle_left_ > 0 && m_suspicion_ != nullptr) m_suspicion_->sub();
  throttle_left_ = 0;
  observed_ = 0;
  seen_.clear();
  input_bits_ = 0;
  flips_.clear();
  flip_sum_ = 0.0;
  have_prev_ = false;
  prev_bits_.clear();
  prev_width_ = 0;
  stamps_.clear();
}

void QueryAuditor::trip() {
  ++trips_;
  throttle_left_ = config_.throttle_queries;
  // Re-arm the probing window; coverage is cumulative by design, so a
  // session that resumes sweeping after its cooldown re-trips at once
  // and escalates toward Park.
  flips_.clear();
  flip_sum_ = 0.0;
  have_prev_ = false;
  if (m_trips_ != nullptr) m_trips_->inc();
  if (m_suspicion_ != nullptr && throttle_left_ > 0) m_suspicion_->add();
}

Verdict QueryAuditor::refuse() {
  ++throttled_total_;
  if (m_throttled_ != nullptr) m_throttled_->inc();
  if (config_.park_after_trips > 0 && trips_ >= config_.park_after_trips) {
    if (m_parks_ != nullptr) m_parks_->inc();
    return Verdict::Park;
  }
  return Verdict::Throttle;
}

Verdict QueryAuditor::observe(const std::map<std::string, BitVector>& inputs,
                              std::uint64_t now_us) {
  if (m_queries_ != nullptr) m_queries_->inc();

  // Active cooldown: refuse without updating the detectors (a throttled
  // query reached no model, so it is not part of the traffic shape).
  if (throttle_left_ > 0) {
    --throttle_left_;
    if (throttle_left_ == 0 && m_suspicion_ != nullptr) m_suspicion_->sub();
    return refuse();
  }

  ++observed_;

  // Hard per-session budget.
  if (config_.max_queries > 0 && observed_ > config_.max_queries) {
    trip();
    return refuse();
  }

  std::vector<std::uint64_t> words;
  std::size_t width = 0;
  pack_image(inputs, words, width);
  input_bits_ = std::max(input_bits_, width);

  // Probing detector: normalized Hamming distance to the previous image.
  if (have_prev_ && width > 0) {
    const double dist = static_cast<double>(popcount_diff(words, prev_bits_)) /
                        static_cast<double>(std::max(width, prev_width_));
    flips_.push_back(dist);
    flip_sum_ += dist;
    if (flips_.size() > config_.window) {
      flip_sum_ -= flips_.front();
      flips_.pop_front();
    }
  }
  prev_bits_ = std::move(words);
  prev_width_ = width;
  have_prev_ = true;

  // Coverage detector: cumulative distinct vectors vs the (capped) space.
  seen_.insert(hash_words(prev_bits_));

  // Rate detector (optional; timestamps injected for determinism).
  if (config_.rate_window_us > 0 && config_.rate_max_queries > 0 &&
      now_us > 0) {
    stamps_.push_back(now_us);
    while (!stamps_.empty() &&
           stamps_.front() + config_.rate_window_us < now_us) {
      stamps_.pop_front();
    }
    if (stamps_.size() > config_.rate_max_queries) {
      trip();
      return refuse();
    }
  }

  if (config_.coverage_threshold > 0.0 &&
      coverage() >= config_.coverage_threshold) {
    trip();
    return refuse();
  }
  if (config_.flip_low > 0.0 && flips_.size() >= config_.window) {
    const double rate = window_flip_rate();
    if (rate >= config_.flip_low && rate <= config_.flip_high) {
      trip();
      return refuse();
    }
  }
  return Verdict::Allow;
}

}  // namespace jhdl::attack
