#include "attack/extractor.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace jhdl::attack {
namespace {

/// One input or output bit's coordinates in the flattened interface.
struct BitRef {
  std::string port;
  std::size_t bit;
};

std::vector<BitRef> flatten(const std::vector<core::BlackBoxPort>& ports,
                            bool inputs) {
  std::vector<BitRef> refs;
  for (const core::BlackBoxPort& p : ports) {
    if (p.is_input != inputs) continue;
    for (std::size_t i = 0; i < p.width; ++i) refs.push_back({p.name, i});
  }
  return refs;
}

/// Materialize a full input image from flattened bit values.
std::map<std::string, BitVector> make_image(
    const std::vector<core::BlackBoxPort>& ports,
    const std::vector<BitRef>& in_bits, const std::vector<bool>& values) {
  std::map<std::string, BitVector> image;
  for (const core::BlackBoxPort& p : ports) {
    if (!p.is_input) continue;
    image.emplace(p.name, BitVector(p.width, Logic4::Zero));
  }
  for (std::size_t i = 0; i < in_bits.size(); ++i) {
    image.at(in_bits[i].port)
        .set(in_bits[i].bit,
             i < values.size() && values[i] ? Logic4::One : Logic4::Zero);
  }
  return image;
}

/// Read one flattened output bit from a query result; nullopt when the
/// model answered X/Z (undefined bits are not learnable payload).
std::optional<bool> read_bit(const std::map<std::string, BitVector>& outputs,
                             const BitRef& ref) {
  auto it = outputs.find(ref.port);
  if (it == outputs.end() || ref.bit >= it->second.width()) return std::nullopt;
  switch (it->second.get(ref.bit)) {
    case Logic4::Zero:
      return false;
    case Logic4::One:
      return true;
    default:
      return std::nullopt;
  }
}

/// Transaction runner shared by both modes: budget first, then query,
/// refunding the unused unit when an audited transaction is refused
/// before reaching the (sequential) model. Returns false when the
/// transaction yielded no outputs (throttled) or the budget is dry
/// (budget_dry set).
struct Runner {
  QueryOracle& oracle;
  QueryBudget& budget;
  std::uint64_t unit_cost;
  bool budget_dry = false;

  bool run(const std::map<std::string, BitVector>& image,
           std::map<std::string, BitVector>& outputs) {
    if (!budget.try_spend(unit_cost)) {
      budget_dry = true;
      return false;
    }
    const std::uint64_t before = oracle.queries();
    const bool ok = oracle.query(image, outputs);
    const std::uint64_t actual = oracle.queries() - before;
    if (actual < unit_cost) budget.refund(unit_cost - actual);
    return ok;
  }
};

double hoeffding_lower(double p_hat, std::size_t n, double delta = 0.05) {
  if (n == 0) return 0.0;
  const double slack = std::sqrt(std::log(1.0 / delta) /
                                 (2.0 * static_cast<double>(n)));
  return std::max(0.0, p_hat - slack);
}

}  // namespace

Json ExtractionReport::to_json() const {
  Json j = Json::object();
  j.set("module", module);
  j.set("mode", exhaustive ? "exhaustive" : "sampling");
  j.set("input_bits", input_bits);
  j.set("output_bits", output_bits);
  j.set("queries", queries_spent);
  j.set("throttled", queries_throttled);
  j.set("budget_exhausted", budget_exhausted);
  j.set("recovered_bits", recovered_bits);
  j.set("total_bits", total_bits);
  j.set("recovered_fraction", recovered_fraction());
  j.set("score_per_10k_queries", score_per_10k());
  Json cone_rows = Json::array();
  for (const ConeReport& c : cones) {
    Json row = Json::object();
    row.set("output", c.output + "[" + std::to_string(c.bit) + "]");
    row.set("support", c.support.size());
    row.set("exact", c.exact);
    row.set("entries", c.table_entries);
    row.set("confidence", c.confidence);
    row.set("recovered_bits", c.recovered_bits);
    cone_rows.push(row);
  }
  j.set("cones", cone_rows);
  return j;
}

std::optional<bool> ConeExtractor::predict(
    const ConeReport& cone, const std::map<std::string, BitVector>& inputs) {
  std::uint64_t key = 0;
  for (std::size_t k = 0; k < cone.support.size(); ++k) {
    const auto& [port, bit] = cone.support[k];
    auto it = inputs.find(port);
    if (it == inputs.end() || bit >= it->second.width()) return std::nullopt;
    if (it->second.get(bit) == Logic4::One) key |= std::uint64_t{1} << k;
  }
  auto it = cone.table.find(key);
  if (it == cone.table.end()) return std::nullopt;
  return it->second;
}

ExtractionReport ConeExtractor::extract(QueryOracle& oracle,
                                        QueryBudget& budget,
                                        const std::string& module_name) const {
  ExtractionReport report;
  report.module = module_name;
  const std::vector<core::BlackBoxPort> ports = oracle.ports();
  const std::vector<BitRef> in_bits = flatten(ports, true);
  const std::vector<BitRef> out_bits = flatten(ports, false);
  report.input_bits = in_bits.size();
  report.output_bits = out_bits.size();
  const std::uint64_t q0 = oracle.queries();
  const std::uint64_t t0 = oracle.throttled();
  Runner runner{oracle, budget,
                oracle.latency() > 0 ? std::uint64_t{2} : std::uint64_t{1}};

  const std::size_t W = in_bits.size();
  const std::size_t O = out_bits.size();
  report.exhaustive = W <= config_.exhaustive_limit && W < 64;

  if (report.exhaustive) {
    // ---- exhaustive truth-table sweep ----
    const std::uint64_t space = std::uint64_t{1} << W;
    // tables[j][v]: 0 / 1 / 2 = unknown (throttled or undefined).
    std::vector<std::vector<std::uint8_t>> tables(
        O, std::vector<std::uint8_t>(space, 2));
    std::vector<bool> assignment(W, false);
    for (std::uint64_t v = 0; v < space; ++v) {
      for (std::size_t i = 0; i < W; ++i) assignment[i] = (v >> i) & 1;
      std::map<std::string, BitVector> outputs;
      if (!runner.run(make_image(ports, in_bits, assignment), outputs)) {
        if (runner.budget_dry) break;
        continue;  // throttled: entry stays unknown
      }
      for (std::size_t j = 0; j < O; ++j) {
        if (auto b = read_bit(outputs, out_bits[j])) {
          tables[j][v] = *b ? 1 : 0;
        }
      }
    }
    report.budget_exhausted = runner.budget_dry;

    for (std::size_t j = 0; j < O; ++j) {
      ConeReport cone;
      cone.output = out_bits[j].port;
      cone.bit = out_bits[j].bit;
      const std::vector<std::uint8_t>& t = tables[j];
      std::uint64_t known = 0;
      for (std::uint64_t v = 0; v < space; ++v) known += t[v] != 2;
      // Support: input bit i matters iff some known pair differing only
      // in bit i differs in value.
      std::vector<std::size_t> support_idx;
      for (std::size_t i = 0; i < W; ++i) {
        const std::uint64_t mask = std::uint64_t{1} << i;
        bool depends = false;
        for (std::uint64_t v = 0; v < space && !depends; ++v) {
          if ((v & mask) != 0) continue;
          depends = t[v] != 2 && t[v | mask] != 2 && t[v] != t[v | mask];
        }
        if (depends) {
          support_idx.push_back(i);
          cone.support.emplace_back(in_bits[i].port, in_bits[i].bit);
        }
      }
      // Project known entries onto the support. With unknowns the
      // support may be underestimated, so conflicting projections are
      // dropped rather than credited.
      std::map<std::uint64_t, bool> proj;
      std::vector<std::uint64_t> conflicted;
      for (std::uint64_t v = 0; v < space; ++v) {
        if (t[v] == 2) continue;
        std::uint64_t key = 0;
        for (std::size_t k = 0; k < support_idx.size(); ++k) {
          if ((v >> support_idx[k]) & 1) key |= std::uint64_t{1} << k;
        }
        const bool value = t[v] == 1;
        auto [it, fresh] = proj.emplace(key, value);
        if (!fresh && it->second != value) conflicted.push_back(key);
      }
      for (std::uint64_t key : conflicted) proj.erase(key);
      cone.table = std::move(proj);
      cone.table_entries = cone.table.size();
      cone.total_bits =
          static_cast<double>(std::uint64_t{1} << cone.support.size());
      cone.exact = known == space &&
                   cone.table_entries ==
                       static_cast<std::size_t>(cone.total_bits);
      cone.confidence =
          space > 0 ? static_cast<double>(known) / static_cast<double>(space)
                    : 0.0;
      // Exhaustively confirmed entries are hard knowledge: every entry
      // was observed directly, so each counts as one recovered bit.
      cone.recovered_bits = static_cast<double>(cone.table_entries) *
                            (cone.exact ? 1.0 : cone.confidence);
      report.recovered_bits += cone.recovered_bits;
      report.total_bits += cone.total_bits;
      report.cones.push_back(std::move(cone));
    }
  } else {
    // ---- sensitivity probing + cone sampling ----
    Rng rng(config_.seed);
    auto random_assignment = [&] {
      std::vector<bool> a(W);
      for (std::size_t i = 0; i < W; ++i) a[i] = rng.coin();
      return a;
    };
    std::vector<std::vector<bool>> supports(O, std::vector<bool>(W, false));
    std::vector<bool> first_base;
    for (std::size_t b = 0; b < config_.probe_bases && !runner.budget_dry;
         ++b) {
      std::vector<bool> base = random_assignment();
      if (first_base.empty()) first_base = base;
      std::map<std::string, BitVector> base_out;
      if (!runner.run(make_image(ports, in_bits, base), base_out)) continue;
      for (std::size_t i = 0; i < W && !runner.budget_dry; ++i) {
        std::vector<bool> flipped = base;
        flipped[i] = !flipped[i];
        std::map<std::string, BitVector> flip_out;
        if (!runner.run(make_image(ports, in_bits, flipped), flip_out)) {
          continue;
        }
        for (std::size_t j = 0; j < O; ++j) {
          const auto a = read_bit(base_out, out_bits[j]);
          const auto c = read_bit(flip_out, out_bits[j]);
          if (a && c && *a != *c) supports[j][i] = true;
        }
      }
    }
    if (first_base.empty()) first_base.assign(W, false);

    // Enumerate each approximated cone with the non-support inputs
    // pinned to the first base image.
    for (std::size_t j = 0; j < O; ++j) {
      ConeReport cone;
      cone.output = out_bits[j].port;
      cone.bit = out_bits[j].bit;
      std::vector<std::size_t> support_idx;
      for (std::size_t i = 0; i < W; ++i) {
        if (supports[j][i]) {
          support_idx.push_back(i);
          cone.support.emplace_back(in_bits[i].port, in_bits[i].bit);
        }
      }
      cone.total_bits =
          static_cast<double>(std::pow(2.0, static_cast<double>(
                                                support_idx.size())));
      if (support_idx.size() <= config_.cone_limit && !runner.budget_dry) {
        const std::uint64_t cone_space = std::uint64_t{1}
                                         << support_idx.size();
        for (std::uint64_t v = 0; v < cone_space && !runner.budget_dry;
             ++v) {
          std::vector<bool> assignment = first_base;
          for (std::size_t k = 0; k < support_idx.size(); ++k) {
            assignment[support_idx[k]] = (v >> k) & 1;
          }
          std::map<std::string, BitVector> outputs;
          if (!runner.run(make_image(ports, in_bits, assignment), outputs)) {
            continue;
          }
          if (auto bit = read_bit(outputs, out_bits[j])) {
            cone.table[v] = *bit;
          }
        }
      }
      cone.table_entries = cone.table.size();
      report.cones.push_back(std::move(cone));
    }

    // Validation: fresh random images; each learned cone's prediction is
    // scored against the oracle, and the credit is discounted by the
    // Hoeffding lower bound on its agreement rate.
    std::vector<std::size_t> agree(O, 0), tried(O, 0);
    for (std::size_t v = 0;
         v < config_.validation_queries && !runner.budget_dry; ++v) {
      std::vector<bool> a = random_assignment();
      std::map<std::string, BitVector> image = make_image(ports, in_bits, a);
      std::map<std::string, BitVector> outputs;
      if (!runner.run(image, outputs)) continue;
      for (std::size_t j = 0; j < O; ++j) {
        const auto actual = read_bit(outputs, out_bits[j]);
        const auto predicted = predict(report.cones[j], image);
        if (actual && predicted) {
          ++tried[j];
          if (*actual == *predicted) ++agree[j];
        }
      }
    }
    report.budget_exhausted = runner.budget_dry;
    for (std::size_t j = 0; j < O; ++j) {
      ConeReport& cone = report.cones[j];
      const double p_hat =
          tried[j] > 0 ? static_cast<double>(agree[j]) /
                             static_cast<double>(tried[j])
                       : 0.0;
      cone.confidence = p_hat;
      const double p_lb = hoeffding_lower(p_hat, tried[j]);
      // Correlation credit: a table agreeing with probability p is worth
      // (2p - 1) of its entries (p = 1/2 is a coin flip, worth nothing).
      cone.recovered_bits = static_cast<double>(cone.table_entries) *
                            std::max(0.0, 2.0 * p_lb - 1.0);
      report.recovered_bits += cone.recovered_bits;
      report.total_bits += cone.total_bits;
    }
  }

  report.queries_spent = oracle.queries() - q0;
  report.queries_throttled = oracle.throttled() - t0;
  return report;
}

}  // namespace jhdl::attack
