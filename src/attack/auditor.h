// QueryAuditor: server-side anomaly detection for black-box extraction
// attacks (the defense half of the adversarial IP-protection loop).
//
// The paper's black box deliberately answers any port-level query - that
// is what makes co-simulation useful - so a hostile customer can treat
// the applet or the delivery service as a truth-table oracle (FuncTeller
// recovers eFPGA functionality exactly this way). The auditor watches the
// STREAM of input vectors a session evaluates and flags the signatures
// extraction traffic cannot avoid:
//
//   coverage   a cone-learning attack must visit a large fraction of the
//              input space; normal stimulus (audio samples, ramps with
//              limited amplitude, protocol traffic) revisits a small
//              working set. Tracked as distinct-input-vectors versus
//              2^min(width, coverage_cap_bits), cumulative per session.
//   probing    random-sampling attacks drive consecutive vectors whose
//              normalized Hamming distance sits near 1/2 for a whole
//              window; smooth real-world stimulus concentrates toggles in
//              the low-order bits (rate well below flip_low).
//   rate       a sliding window of arrival timestamps; attack harnesses
//              query as fast as the transport allows, licensed
//              co-simulation is paced by the surrounding system model.
//              Off by default (0) because loopback tests and benches run
//              both kinds of traffic at memory speed.
//   budget     a hard per-session query ceiling (max_queries), the
//              blunt instrument behind the statistical detectors.
//
// A trip throttles the session for `throttle_queries` observations
// (each throttled query is answered with a typed protocol Error and
// recovers nothing, which is precisely what lowers the attacker's
// bits-per-query protection score). Repeated trips escalate to Park:
// the delivery service evicts the session. Counters surface through the
// obs registry under "attack.*" so MetricsDump / Prometheus exposition
// show extraction pressure in production.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "util/bitvector.h"

namespace jhdl::attack {

/// Thresholds for one QueryAuditor. Defaults are tuned so the catalog's
/// licensed co-simulation workloads (see bench_attack) never trip while
/// exhaustive and random-sampling extraction trips within one window.
struct AuditorConfig {
  /// Observations per analysis window (probing detector granularity).
  std::size_t window = 128;
  /// Trip when distinct input vectors exceed this fraction of
  /// 2^min(total input bits, coverage_cap_bits). <= 0 disables.
  double coverage_threshold = 0.5;
  /// Interfaces wider than this are treated as 2^coverage_cap_bits for
  /// the coverage fraction (full coverage of a wide space is impossible;
  /// visiting 2^20 distinct vectors is already an anomaly).
  std::size_t coverage_cap_bits = 20;
  /// Probing band: a full window whose mean normalized Hamming distance
  /// between consecutive vectors lies in [flip_low, flip_high] trips
  /// (random probing sits at ~0.5). flip_low <= 0 disables.
  double flip_low = 0.35;
  double flip_high = 0.65;
  /// Queries answered with Throttle after a trip before the detectors
  /// re-arm.
  std::size_t throttle_queries = 256;
  /// Escalate to Park (service evicts the session) once a session has
  /// tripped this many times. 0 = never park.
  std::size_t park_after_trips = 4;
  /// Hard per-session observation ceiling (0 = unlimited). Exceeding it
  /// trips every time.
  std::uint64_t max_queries = 0;
  /// Rate detector: more than rate_max_queries observations inside the
  /// trailing rate_window_us microseconds trips. Both must be nonzero
  /// to enable; observe() must then be given timestamps.
  std::uint64_t rate_window_us = 0;
  std::size_t rate_max_queries = 0;
};

/// What the service should do with the query just observed.
enum class Verdict {
  Allow,     ///< serve it normally
  Throttle,  ///< refuse with a retryable Error; the query leaks nothing
  Park,      ///< refuse and evict the session (escalation)
};

/// Watches one session's evaluated input vectors. Not thread-safe: a
/// session's queries are serviced by one worker at a time (the delivery
/// service guarantees this), so the auditor rides along un-locked.
class QueryAuditor {
 public:
  /// `metrics`, when given, receives the shared "attack.*" instruments
  /// (several sessions' auditors may share one registry; the counters
  /// aggregate). The registry must outlive the auditor.
  explicit QueryAuditor(AuditorConfig config,
                        obs::MetricsRegistry* metrics = nullptr);

  /// Observe one evaluated input image (every port the query drives).
  /// `now_us` feeds the rate detector; pass 0 when it is disabled.
  Verdict observe(const std::map<std::string, BitVector>& inputs,
                  std::uint64_t now_us = 0);

  /// True while a trip's throttle cooldown is active.
  bool tripped() const { return throttle_left_ > 0; }
  /// Total trips so far (drives the Park escalation).
  std::size_t trips() const { return trips_; }
  /// Observations accepted / refused.
  std::uint64_t observed() const { return observed_; }
  std::uint64_t throttled() const { return throttled_total_; }

  /// Current detector readings (window may be partial).
  double coverage() const;
  double window_flip_rate() const;

  /// Admin reset: clears detector state, the hard-budget observation
  /// count and any active cooldown. Trip and throttle totals are
  /// preserved (they are history, not state - a reset does not launder
  /// the session's record, so Park escalation still applies).
  void clear();

  const AuditorConfig& config() const { return config_; }

 private:
  void trip();
  Verdict refuse();

  AuditorConfig config_;
  std::uint64_t observed_ = 0;
  std::uint64_t throttled_total_ = 0;
  std::size_t trips_ = 0;
  std::size_t throttle_left_ = 0;

  /// Cumulative distinct input vectors (hashes; collisions only ever
  /// under-count, i.e. favour the attacker, never false-trip).
  std::unordered_set<std::uint64_t> seen_;
  /// Total input bits of the widest image observed (coverage denominator).
  std::size_t input_bits_ = 0;
  /// Previous packed image + ring of normalized consecutive distances.
  std::vector<std::uint64_t> prev_bits_;
  std::size_t prev_width_ = 0;
  bool have_prev_ = false;
  std::deque<double> flips_;
  double flip_sum_ = 0.0;
  /// Arrival stamps for the rate detector.
  std::deque<std::uint64_t> stamps_;

  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_throttled_ = nullptr;
  obs::Counter* m_trips_ = nullptr;
  obs::Counter* m_parks_ = nullptr;
  obs::Gauge* m_suspicion_ = nullptr;
};

}  // namespace jhdl::attack
