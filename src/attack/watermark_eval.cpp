#include "attack/watermark_eval.h"

#include <memory>

#include "core/protect.h"
#include "hdl/hwsystem.h"
#include "hdl/visitor.h"
#include "modgen/kcm.h"
#include "tech/memory.h"
#include "util/rng.h"

namespace jhdl::attack {
namespace {

/// A watermarked unsigned KCM instance (top-digit ROMs of a narrow top
/// digit leave unreachable entries - the watermark carriers).
struct MarkedKcm {
  std::unique_ptr<HWSystem> hw;
  modgen::VirtexKCMMultiplier* kcm = nullptr;
  std::size_t carriers = 0;
};

MarkedKcm build_marked(std::size_t width, core::Watermarker& marker) {
  MarkedKcm m;
  m.hw = std::make_unique<HWSystem>("wm_eval");
  Wire* in = new Wire(m.hw.get(), width, "m");
  Wire* out = new Wire(m.hw.get(), width + 8, "p");
  m.kcm = new modgen::VirtexKCMMultiplier(m.hw.get(), in, out, false, false,
                                          201);
  m.carriers = marker.embed(*m.kcm, {});
  return m;
}

std::vector<tech::Rom16*> carrier_roms(Cell& root) {
  std::vector<tech::Rom16*> roms;
  for (Primitive* prim : collect_primitives(root)) {
    if (auto* rom = dynamic_cast<tech::Rom16*>(prim)) {
      if (rom->property("UNUSED_ABOVE") != nullptr) roms.push_back(rom);
    }
  }
  return roms;
}

}  // namespace

Json SurvivalReport::to_json() const {
  Json j = Json::object();
  j.set("circuit", circuit);
  j.set("carriers", carriers);
  j.set("survives_obfuscation", survives_obfuscation);
  Json points = Json::array();
  for (const SurvivalPoint& p : tamper_points) {
    Json row = Json::object();
    row.set("tampered_entries", p.tampered_entries);
    row.set("trials", p.trials);
    row.set("fully_verified", p.fully_verified);
    row.set("survival_rate", p.survival_rate());
    row.set("mean_carrier_match", p.mean_carrier_match);
    points.push(row);
  }
  j.set("tamper_points", points);
  return j;
}

SurvivalReport evaluate_watermark_survival(
    std::size_t input_width, const std::string& owner_tag,
    const std::vector<std::size_t>& tamper_levels, std::size_t trials,
    std::uint64_t seed) {
  core::Watermarker marker(owner_tag);
  SurvivalReport report;
  report.circuit = "kcm-" + std::to_string(input_width) + "-unsigned";

  // Obfuscation must preserve the mark: it renames identifiers but never
  // rewrites table contents.
  {
    MarkedKcm m = build_marked(input_width, marker);
    report.carriers = m.carriers;
    core::obfuscate(*m.kcm, seed ^ 0x0BF5CA7E);
    report.survives_obfuscation = marker.extract(*m.kcm, {}).verified();
  }

  for (std::size_t level : tamper_levels) {
    SurvivalPoint point;
    point.tampered_entries = level;
    point.trials = trials;
    double match_sum = 0.0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      MarkedKcm m = build_marked(input_width, marker);
      Rng rng(seed ^ (level * 0x9E3779B9u) ^ trial);
      std::vector<tech::Rom16*> roms = carrier_roms(*m.kcm);
      for (std::size_t k = 0; k < level && !roms.empty(); ++k) {
        tech::Rom16* rom = roms[rng.below(roms.size())];
        const unsigned first = static_cast<unsigned>(
            std::stoul(*rom->property("UNUSED_ABOVE")));
        const unsigned addr =
            first + static_cast<unsigned>(rng.below(16 - first));
        rom->set_entry(addr, rng.next() & 0xFFF);
      }
      core::Watermarker::Extraction ex = marker.extract(*m.kcm, {});
      if (ex.verified()) ++point.fully_verified;
      match_sum += ex.carriers > 0 ? static_cast<double>(ex.matching) /
                                         static_cast<double>(ex.carriers)
                                   : 0.0;
    }
    point.mean_carrier_match =
        trials > 0 ? match_sum / static_cast<double>(trials) : 0.0;
    report.tamper_points.push_back(point);
  }
  return report;
}

}  // namespace jhdl::attack
