#include <map>
#include <set>
#include <sstream>

#include "netlist/netlist.h"

namespace jhdl::netlist {
namespace {

/// EDIF rendering of one scope-net key.
struct NetKey {
  std::string base;
  int index;  // -1 for scalar
  bool operator<(const NetKey& rhs) const {
    return std::tie(base, index) < std::tie(rhs.base, rhs.index);
  }
};

struct PortTouch {
  std::string instance;  // empty = the definition's own port
  std::string port;
  int member;  // -1 scalar
};

void emit_port_decl(std::ostream& os, const PortDecl& p,
                    const std::string& indent) {
  const char* dir = p.dir == PortDir::In    ? "INPUT"
                    : p.dir == PortDir::Out ? "OUTPUT"
                                            : "INOUT";
  if (p.width == 1) {
    os << indent << "(port " << p.name << " (direction " << dir << "))\n";
  } else {
    os << indent << "(port (array (rename " << p.name << " \"" << p.name
       << "\") " << p.width << ") (direction " << dir << "))\n";
  }
}

void emit_port_ref(std::ostream& os, const PortTouch& t) {
  os << "(portRef ";
  if (t.member >= 0) {
    os << "(member " << t.port << " " << t.member << ")";
  } else {
    os << t.port;
  }
  if (!t.instance.empty()) {
    os << " (instanceRef " << t.instance << ")";
  }
  os << ")";
}

void emit_cell(std::ostream& os, const DefInfo& def, const std::string& lib) {
  os << "  (cell " << def.name << " (cellType GENERIC)\n";
  os << "   (view netlist (viewType NETLIST)\n";
  os << "    (interface\n";
  for (const PortDecl& p : def.ports) {
    emit_port_decl(os, p, "     ");
  }
  os << "    )\n";
  if (!def.is_leaf) {
    os << "    (contents\n";
    // Instances.
    for (const InstanceInfo& inst : def.instances) {
      os << "     (instance " << inst.inst_name << " (viewRef netlist (cellRef "
         << inst.def_name << " (libraryRef "
         << (inst.is_primitive ? "virtex" : lib) << ")))";
      for (const auto& [key, value] : inst.cell->properties()) {
        os << "\n      (property " << key << " (string \"" << value << "\"))";
      }
      os << ")\n";
    }
    // Connectivity: group every port touch by scope net.
    std::map<NetKey, std::vector<PortTouch>> joins;
    for (const PortDecl& p : def.ports) {
      for (std::size_t i = 0; i < p.width; ++i) {
        NetKey key{p.name, p.width == 1 ? -1 : static_cast<int>(i)};
        joins[key].push_back(
            PortTouch{"", p.name, p.width == 1 ? -1 : static_cast<int>(i)});
      }
    }
    for (const std::string& n : def.internal_nets) {
      joins[NetKey{n, -1}];  // ensure the net exists even if untouched
    }
    for (const InstanceInfo& inst : def.instances) {
      for (const PortConn& conn : inst.conns) {
        for (std::size_t i = 0; i < conn.bits.size(); ++i) {
          const BitRef& b = conn.bits[i];
          NetKey key{b.base, b.width == 1 ? -1 : b.index};
          int member =
              conn.bits.size() == 1 ? -1 : static_cast<int>(i);
          joins[key].push_back(PortTouch{inst.inst_name, conn.name, member});
        }
      }
    }
    std::set<std::string> net_names;
    for (const auto& [key, touches] : joins) {
      std::string net_name =
          key.index < 0 ? key.base : key.base + "_" + std::to_string(key.index);
      int n = 1;
      while (!net_names.insert(net_name).second) {
        net_name = key.base + "_" + std::to_string(key.index) + "_" +
                   std::to_string(n++);
      }
      os << "     (net " << net_name << " (joined";
      for (const PortTouch& t : touches) {
        os << " ";
        emit_port_ref(os, t);
      }
      os << "))\n";
    }
    os << "    )\n";
  }
  os << "   )\n  )\n";
}

}  // namespace

std::string write_edif(const Cell& top, const NetlistOptions& options) {
  return write_edif(Design(top, options));
}

std::string write_edif(const Design& design) {
  std::ostringstream os;
  const std::string& top_name = design.top_def().name;
  os << "(edif " << top_name << "\n";
  os << " (edifVersion 2 0 0)\n (edifLevel 0)\n";
  os << " (keywordMap (keywordLevel 0))\n";
  os << " (status (written (timeStamp 2002 6 10 0 0 0) (program \"jhdlpp\" "
        "(version \"1.0\"))))\n";

  os << " (library virtex\n  (edifLevel 0)\n  (technology (numberDefinition))\n";
  for (const auto& def : design.defs()) {
    if (def->is_leaf) emit_cell(os, *def, "work");
  }
  os << " )\n";

  os << " (library work\n  (edifLevel 0)\n  (technology (numberDefinition))\n";
  for (const auto& def : design.defs()) {
    if (!def->is_leaf) emit_cell(os, *def, "work");
  }
  os << " )\n";

  os << " (design " << top_name << " (cellRef " << top_name
     << " (libraryRef work)))\n";
  os << ")\n";
  return os.str();
}

}  // namespace jhdl::netlist
