// EDIF importer: reconstructs a live, simulatable circuit from an EDIF
// netlist produced by write_edif() - flat or hierarchical - the
// customer-side "re-import delivered IP into my flow" path, and the basis
// of the netlist-equivalence tests (original vs re-imported circuit must
// behave identically).
//
// Leaf instances must reference known Virtex technology cells; LUT/ROM
// INIT and constant VALUE properties are honoured (block-RAM contents are
// not carried by EDIF and import zeroed). Composite cells are elaborated
// recursively, rebuilding the hierarchy.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "hdl/hwsystem.h"
#include "netlist/edif_reader.h"

namespace jhdl::netlist {

/// The reconstructed circuit: a fresh HWSystem whose top cell mirrors the
/// EDIF top definition; `ports` maps the top's port names to wires.
struct ImportedCircuit {
  std::unique_ptr<HWSystem> system;
  Cell* top = nullptr;
  std::map<std::string, Wire*> ports;
};

/// Rebuild a circuit from EDIF text. Throws std::runtime_error on
/// unknown leaf cells, missing connections, or recursive hierarchies.
ImportedCircuit import_edif(const std::string& edif_text);

}  // namespace jhdl::netlist
