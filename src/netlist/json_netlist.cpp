#include "netlist/json_netlist.h"

#include <stdexcept>

#include "netlist/netlist.h"
#include "util/json.h"

namespace jhdl::netlist {

std::string write_json(const Cell& top, const NetlistOptions& options) {
  return write_json(Design(top, options));
}

std::string write_json(const Design& design) {
  Json root = Json::object();
  root.set("format", "jhdl-netlist");
  root.set("version", 1);
  root.set("top", design.top_def().name);

  Json defs = Json::array();
  for (const auto& def : design.defs()) {
    Json jd = Json::object();
    jd.set("name", def->name);
    jd.set("leaf", def->is_leaf);

    Json ports = Json::array();
    for (const PortDecl& p : def->ports) {
      Json jp = Json::object();
      jp.set("name", p.name);
      jp.set("dir", std::string(port_dir_name(p.dir)));
      jp.set("width", p.width);
      ports.push(std::move(jp));
    }
    jd.set("ports", std::move(ports));

    Json nets = Json::array();
    for (const std::string& n : def->internal_nets) nets.push(n);
    jd.set("nets", std::move(nets));

    Json insts = Json::array();
    for (const InstanceInfo& inst : def->instances) {
      Json ji = Json::object();
      ji.set("name", inst.inst_name);
      ji.set("def", inst.def_name);
      ji.set("leaf", inst.is_primitive);
      if (!inst.cell->properties().empty()) {
        Json props = Json::object();
        for (const auto& [k, v] : inst.cell->properties()) props.set(k, v);
        ji.set("properties", std::move(props));
      }
      Json conns = Json::array();
      for (const PortConn& conn : inst.conns) {
        Json jc = Json::object();
        jc.set("port", conn.name);
        Json bits = Json::array();
        for (const BitRef& b : conn.bits) {
          Json jb = Json::object();
          jb.set("base", b.base);
          if (b.width > 1) jb.set("index", b.index);
          bits.push(std::move(jb));
        }
        jc.set("bits", std::move(bits));
        conns.push(std::move(jc));
      }
      ji.set("conns", std::move(conns));
      insts.push(std::move(ji));
    }
    jd.set("instances", std::move(insts));
    defs.push(std::move(jd));
  }
  root.set("definitions", std::move(defs));
  return root.dump(1);
}

const JsonDef* JsonNetlist::find_def(const std::string& name) const {
  for (const JsonDef& d : definitions) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

JsonNetlist read_json(const std::string& text) {
  Json root = Json::parse(text);
  if (!root.has("format") || root.at("format").as_string() != "jhdl-netlist") {
    throw std::runtime_error("not a jhdl-netlist document");
  }
  JsonNetlist doc;
  doc.top = root.at("top").as_string();
  for (const Json& jd : root.at("definitions").items()) {
    JsonDef def;
    def.name = jd.at("name").as_string();
    def.leaf = jd.at("leaf").as_bool();
    for (const Json& jp : jd.at("ports").items()) {
      JsonPort p;
      p.name = jp.at("name").as_string();
      p.dir = jp.at("dir").as_string();
      p.width = static_cast<std::size_t>(jp.at("width").as_int());
      def.ports.push_back(std::move(p));
    }
    for (const Json& jn : jd.at("nets").items()) {
      def.nets.push_back(jn.as_string());
    }
    for (const Json& ji : jd.at("instances").items()) {
      JsonInstance inst;
      inst.name = ji.at("name").as_string();
      inst.def = ji.at("def").as_string();
      inst.leaf = ji.at("leaf").as_bool();
      if (ji.has("properties")) {
        for (const auto& [k, v] : ji.at("properties").fields()) {
          inst.properties[k] = v.as_string();
        }
      }
      for (const Json& jc : ji.at("conns").items()) {
        JsonConn conn;
        conn.port = jc.at("port").as_string();
        for (const Json& jb : jc.at("bits").items()) {
          JsonBitRef b;
          b.base = jb.at("base").as_string();
          b.index = jb.has("index")
                        ? static_cast<int>(jb.at("index").as_int())
                        : -1;
          conn.bits.push_back(std::move(b));
        }
        inst.conns.push_back(std::move(conn));
      }
      def.instances.push_back(std::move(inst));
    }
    doc.definitions.push_back(std::move(def));
  }
  return doc;
}

}  // namespace jhdl::netlist
