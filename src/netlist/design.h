// Netlist scoping: converts the live circuit object graph into a
// format-neutral Design description (definitions, instances, scoped net
// names) that each writer (EDIF / VHDL / Verilog / JSON) renders.
//
// This is the C++ equivalent of JHDL's netlister API: "the structure,
// interconnect, hierarchy and properties of a circuit described in JHDL is
// exposed and can be regenerated in one of many possible formats" (paper,
// Section 2.2).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hdl/cell.h"
#include "hdl/hwsystem.h"

namespace jhdl::netlist {

/// Options shared by all netlist writers.
struct NetlistOptions {
  /// Emit a single definition containing every primitive (hierarchical
  /// instance names) instead of one definition per composite cell.
  bool flatten = false;
  /// Override the top definition's name (default: the top cell's type or
  /// instance name).
  std::string top_name;
};

/// Reference to one bit of a net within a definition's scope: either a
/// port bit (base + index into a vector port) or a scalar internal net.
struct BitRef {
  std::string base;  ///< port name or internal net name
  int index = -1;    ///< bit index for vector ports; -1 for scalars
  int width = 1;     ///< declared width of the base (1 => render as scalar)
};

/// A declared port of a definition.
struct PortDecl {
  std::string name;
  PortDir dir;
  std::size_t width;
};

/// Connection of one instance port: the port's bits (LSB first) resolved
/// into the enclosing definition's scope.
struct PortConn {
  std::string name;
  PortDir dir;
  std::vector<BitRef> bits;
};

/// One child instance inside a definition.
struct InstanceInfo {
  const Cell* cell = nullptr;
  std::string inst_name;  ///< sanitized, unique within the definition
  std::string def_name;   ///< resolved definition name
  bool is_primitive = false;
  std::vector<PortConn> conns;
};

/// A definition: interface + contents of one cell (or, for primitives,
/// interface only - their contents live in the technology library).
struct DefInfo {
  const Cell* exemplar = nullptr;
  std::string name;
  bool is_leaf = false;
  std::vector<PortDecl> ports;
  std::vector<std::string> internal_nets;  ///< scalar net names
  std::vector<InstanceInfo> instances;
};

/// Summary counters reported by viewers and the applet UI.
struct DesignStats {
  std::size_t definitions = 0;
  std::size_t leaf_definitions = 0;
  std::size_t instances = 0;
  std::size_t nets = 0;  ///< internal nets summed over definitions
};

/// The scoped design: definitions in dependency order (children before the
/// definitions that instance them; the top definition is last).
class Design {
 public:
  /// Builds the scoped design for `top`. Throws HdlError when a wire
  /// crosses a cell boundary without a declared port (ill-formed
  /// hierarchy), since that cannot be represented in any netlist.
  Design(const Cell& top, const NetlistOptions& options);

  const std::vector<std::unique_ptr<DefInfo>>& defs() const { return defs_; }
  const DefInfo& top_def() const { return *defs_.back(); }
  DesignStats stats() const;

 private:
  DefInfo* build_leaf_def(const Cell& prim);
  DefInfo* build_composite_def(const Cell& cell);
  DefInfo* build_flat_def(const Cell& top);
  DefInfo* def_for(const Cell& cell);
  std::string unique_def_name(const std::string& base);

  NetlistOptions options_;
  std::vector<std::unique_ptr<DefInfo>> defs_;
  std::map<const Cell*, DefInfo*> cell_def_;       // composite cells
  std::map<std::string, DefInfo*> leaf_defs_;      // primitives by type
  std::map<std::string, int> def_name_counts_;
  std::map<const Net*, DefInfo*> internal_owner_;  // hierarchy check
};

}  // namespace jhdl::netlist
