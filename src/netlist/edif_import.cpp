#include "netlist/edif_import.h"

#include <array>
#include <functional>
#include <set>
#include <stdexcept>
#include <tuple>

#include "tech/virtex.h"
#include "util/strings.h"

namespace jhdl::netlist {
namespace {

/// Key for one pin of one instance within a definition scope.
struct PinKey {
  std::string instance;
  std::string port;
  int member;  // -1 scalar
  bool operator<(const PinKey& rhs) const {
    return std::tie(instance, port, member) <
           std::tie(rhs.instance, rhs.port, rhs.member);
  }
};

std::uint16_t parse_init16(const std::string& hex) {
  return static_cast<std::uint16_t>(std::stoul(hex, nullptr, 16));
}

std::uint16_t init_of(const EdifInstance& inst) {
  auto it = inst.properties.find("INIT");
  if (it == inst.properties.end()) return 0;
  return parse_init16(it->second);
}

bool init_is_one(const EdifInstance& inst) {
  auto it = inst.properties.find("INIT");
  return it != inst.properties.end() && it->second == "1";
}

/// A reconstructed composite cell: its ports bind the wires the parent
/// scope resolved for the instance.
class ImportedCell : public Cell {
 public:
  ImportedCell(Node* parent, const std::string& inst_name,
               const EdifCell& def,
               const std::map<std::string, Wire*>& bound)
      : Cell(parent, inst_name) {
    set_type_name(def.name);
    for (const EdifPort& p : def.ports) {
      Wire* w = bound.at(p.name);
      if (p.direction == "INPUT") {
        port_in(p.name, w);
      } else if (p.direction == "OUTPUT") {
        port_out(p.name, w);
      } else {
        port_inout(p.name, w);
      }
    }
  }
};

class Importer {
 public:
  explicit Importer(const EdifDoc& doc) : doc_(doc) {}

  /// Elaborate `def`'s contents into `container`, whose ports are bound
  /// to `port_wires` (name -> full-width wire).
  void elaborate(const EdifCell& def, Cell* container,
                 const std::map<std::string, Wire*>& port_wires) {
    if (!stack_.insert(def.name).second) {
      throw std::runtime_error("EDIF import: recursive cell '" + def.name +
                               "'");
    }

    // Resolve every net to a single-bit wire in this scope.
    std::map<PinKey, Wire*> pin_wire;
    for (const EdifNet& net : def.nets) {
      Wire* wire = nullptr;
      for (const EdifPortRef& ref : net.joined) {
        if (!ref.instance.empty()) continue;
        auto it = port_wires.find(ref.port);
        if (it == port_wires.end()) {
          throw std::runtime_error("EDIF import: net '" + net.name +
                                   "' references unknown port '" + ref.port +
                                   "' of cell '" + def.name + "'");
        }
        wire = it->second->gw(
            static_cast<std::size_t>(ref.member < 0 ? 0 : ref.member));
        break;
      }
      if (wire == nullptr) {
        wire = new Wire(container, 1, sanitize_identifier(net.name));
      }
      for (const EdifPortRef& ref : net.joined) {
        if (ref.instance.empty()) continue;
        pin_wire[PinKey{ref.instance, ref.port, ref.member}] = wire;
      }
    }

    for (const EdifInstance& inst : def.instances) {
      const EdifCell* child = doc_.find_cell(inst.cell_ref);
      if (child == nullptr) {
        throw std::runtime_error("EDIF import: unknown cell '" +
                                 inst.cell_ref + "'");
      }
      auto pin = [&](const std::string& port) -> Wire* {
        auto it = pin_wire.find(PinKey{inst.name, port, -1});
        if (it == pin_wire.end()) {
          throw std::runtime_error("EDIF import: instance '" + inst.name +
                                   "' pin '" + port + "' unconnected");
        }
        return it->second;
      };
      auto bus = [&](const std::string& port, int width) -> Wire* {
        if (width == 1) return pin(port);
        Wire* acc = nullptr;
        for (int i = 0; i < width; ++i) {
          auto it = pin_wire.find(PinKey{inst.name, port, i});
          if (it == pin_wire.end()) {
            throw std::runtime_error(format(
                "EDIF import: instance '%s' pin '%s[%d]' unconnected",
                inst.name.c_str(), port.c_str(), i));
          }
          acc = (acc == nullptr) ? it->second : it->second->concat(acc);
        }
        return acc;
      };

      if (child->has_contents) {
        // Composite: bind its ports, recurse.
        std::map<std::string, Wire*> bound;
        for (const EdifPort& p : child->ports) {
          bound[p.name] = bus(p.name, p.width);
        }
        auto* sub = new ImportedCell(
            container, sanitize_identifier(inst.name), *child, bound);
        elaborate(*child, sub, bound);
      } else {
        build_leaf(*child, inst, container, pin, bus);
      }
    }

    stack_.erase(def.name);
  }

 private:
  using PinFn = std::function<Wire*(const std::string&)>;
  using BusFn = std::function<Wire*(const std::string&, int)>;

  void build_leaf(const EdifCell& def, const EdifInstance& inst, Cell* top,
                  const PinFn& pin, const BusFn& bus) {
    (void)def;
    const std::string& type = inst.cell_ref;
    Cell* built = nullptr;
    if (type == "and2") {
      built = new tech::And2(top, pin("i0"), pin("i1"), pin("o"));
    } else if (type == "and3") {
      built = new tech::And3(top, pin("i0"), pin("i1"), pin("i2"), pin("o"));
    } else if (type == "and4") {
      built = new tech::And4(top, pin("i0"), pin("i1"), pin("i2"), pin("i3"),
                             pin("o"));
    } else if (type == "or2") {
      built = new tech::Or2(top, pin("i0"), pin("i1"), pin("o"));
    } else if (type == "or3") {
      built = new tech::Or3(top, pin("i0"), pin("i1"), pin("i2"), pin("o"));
    } else if (type == "or4") {
      built = new tech::Or4(top, pin("i0"), pin("i1"), pin("i2"), pin("i3"),
                            pin("o"));
    } else if (type == "xor2") {
      built = new tech::Xor2(top, pin("i0"), pin("i1"), pin("o"));
    } else if (type == "xor3") {
      built = new tech::Xor3(top, pin("i0"), pin("i1"), pin("i2"), pin("o"));
    } else if (type == "nand2") {
      built = new tech::Nand2(top, pin("i0"), pin("i1"), pin("o"));
    } else if (type == "nor2") {
      built = new tech::Nor2(top, pin("i0"), pin("i1"), pin("o"));
    } else if (type == "inv") {
      built = new tech::Inv(top, pin("i0"), pin("o"));
    } else if (type == "buf") {
      built = new tech::Buf(top, pin("i0"), pin("o"));
    } else if (type == "mux2") {
      built = new tech::Mux2(top, pin("i0"), pin("i1"), pin("sel"), pin("o"));
    } else if (type == "lut1") {
      built = new tech::Lut1(top, pin("i0"), pin("o"), init_of(inst));
    } else if (type == "lut2") {
      built = new tech::Lut2(top, pin("i0"), pin("i1"), pin("o"),
                             init_of(inst));
    } else if (type == "lut3") {
      built = new tech::Lut3(top, pin("i0"), pin("i1"), pin("i2"), pin("o"),
                             init_of(inst));
    } else if (type == "lut4") {
      built = new tech::Lut4(top, pin("i0"), pin("i1"), pin("i2"), pin("i3"),
                             pin("o"), init_of(inst));
    } else if (type == "muxcy") {
      built = new tech::MuxCY(top, pin("di"), pin("ci"), pin("s"), pin("o"));
    } else if (type == "xorcy") {
      built = new tech::XorCY(top, pin("li"), pin("ci"), pin("o"));
    } else if (type == "muxf5") {
      built = new tech::MuxF5(top, pin("i0"), pin("i1"), pin("s"), pin("o"));
    } else if (type == "fd") {
      built = new tech::FD(top, pin("d"), pin("q"), init_is_one(inst));
    } else if (type == "fdc") {
      built = new tech::FDC(top, pin("d"), pin("q"), pin("clr"),
                            init_is_one(inst));
    } else if (type == "fdce") {
      built = new tech::FDCE(top, pin("d"), pin("q"), pin("ce"), pin("clr"),
                             init_is_one(inst));
    } else if (type == "fdre") {
      built = new tech::FDRE(top, pin("d"), pin("q"), pin("ce"), pin("r"),
                             init_is_one(inst));
    } else if (type == "gnd") {
      built = new tech::Gnd(top, pin("o"));
    } else if (type == "vcc") {
      built = new tech::Vcc(top, pin("o"));
    } else if (starts_with(type, "const")) {
      const int width = std::stoi(type.substr(5));
      std::uint64_t value = 0;
      auto it = inst.properties.find("VALUE");
      if (it != inst.properties.end()) value = std::stoull(it->second);
      built = new tech::Constant(top, bus("o", width), value);
    } else if (starts_with(type, "rom16x")) {
      const int width = std::stoi(type.substr(6));
      std::array<std::uint64_t, 16> contents{};
      for (int bit = 0; bit < width; ++bit) {
        auto it = inst.properties.find("INIT_" + std::to_string(bit));
        if (it == inst.properties.end()) continue;
        std::uint16_t table = parse_init16(it->second);
        for (unsigned a = 0; a < 16; ++a) {
          if ((table >> a) & 1) contents[a] |= std::uint64_t{1} << bit;
        }
      }
      built = new tech::Rom16(top, bus("a", 4), bus("d", width), contents);
    } else if (type == "ram16x1s") {
      built = new tech::Ram16x1s(top, bus("a", 4), pin("d"), pin("we"),
                                 pin("o"), init_of(inst));
    } else if (type == "srl16" || type == "srl16e") {
      built = new tech::Srl16(top, pin("d"), bus("a", 4), pin("q"),
                              type == "srl16e" ? pin("ce") : nullptr,
                              init_of(inst));
    } else if (type == "ibuf") {
      built = new tech::Ibuf(top, pin("pad"), pin("o"));
    } else if (type == "obuf") {
      built = new tech::Obuf(top, pin("i"), pin("pad"));
    } else if (type == "ramb4_s8") {
      // Block RAM contents are not carried as EDIF properties (they live
      // in the bitstream in real flows); imported BRAMs start zeroed.
      built = new tech::RamB4S8(top, bus("a", 9), bus("d", 8), pin("we"),
                                pin("en"), bus("o", 8));
    } else {
      throw std::runtime_error("EDIF import: unsupported leaf cell '" + type +
                               "'");
    }
    built->rename(sanitize_identifier(inst.name));
  }

  const EdifDoc& doc_;
  std::set<std::string> stack_;
};

}  // namespace

ImportedCircuit import_edif(const std::string& edif_text) {
  EdifDoc doc = read_edif(edif_text);
  const EdifCell* top_def = doc.find_cell(doc.top_cell);
  if (top_def == nullptr || !top_def->has_contents) {
    throw std::runtime_error("EDIF import: top cell missing or empty");
  }

  ImportedCircuit out;
  out.system = std::make_unique<HWSystem>("imported");

  // Top-level port wires live in the fresh system's root.
  class ImportedTop : public Cell {
   public:
    ImportedTop(Node* parent, const EdifCell& def,
                std::map<std::string, Wire*>& ports)
        : Cell(parent, def.name) {
      set_type_name(def.name);
      for (const EdifPort& p : def.ports) {
        Wire* w = new Wire(this, static_cast<std::size_t>(p.width), p.name);
        ports[p.name] = w;
        if (p.direction == "INPUT") {
          port_in(p.name, w);
        } else if (p.direction == "OUTPUT") {
          port_out(p.name, w);
        } else {
          port_inout(p.name, w);
        }
      }
    }
  };
  auto* top = new ImportedTop(out.system.get(), *top_def, out.ports);
  out.top = top;

  Importer importer(doc);
  importer.elaborate(*top_def, top, out.ports);
  return out;
}

}  // namespace jhdl::netlist
