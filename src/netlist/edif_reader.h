// EDIF 2.0.0 reader: parses the netlists produced by write_edif() (and
// EDIF from other tools with the same NETLIST-view structure) back into a
// document model. Used by round-trip tests and by customers' tool flows
// that want to re-import delivered IP.
//
// The reader is a generic s-expression parser plus an extractor for the
// subset of EDIF that carries structure: libraries, cells, interfaces
// (scalar and array ports), instances (with properties), and joined nets.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jhdl::netlist {

/// A parsed s-expression: an atom or a list.
struct Sexp {
  bool is_atom = false;
  std::string atom;                         // valid when is_atom
  std::vector<std::unique_ptr<Sexp>> items;  // valid when !is_atom

  /// First atom of a list (the keyword), or "" for atoms/empty lists.
  const std::string& keyword() const;
  /// All sub-lists whose keyword is `kw`.
  std::vector<const Sexp*> find_all(const std::string& kw) const;
  /// First sub-list with keyword `kw`, or nullptr.
  const Sexp* find(const std::string& kw) const;
};

/// Parse one s-expression from text. Throws std::runtime_error with an
/// offset on malformed input (unbalanced parens, bad tokens).
std::unique_ptr<Sexp> parse_sexp(const std::string& text);

// --- extracted EDIF document ---

struct EdifPortRef {
  std::string port;
  int member = -1;        // -1 = scalar reference
  std::string instance;   // "" = the cell's own port
};

struct EdifNet {
  std::string name;
  std::vector<EdifPortRef> joined;
};

struct EdifInstance {
  std::string name;
  std::string cell_ref;
  std::string library_ref;
  std::map<std::string, std::string> properties;
};

struct EdifPort {
  std::string name;
  std::string direction;  // "INPUT" / "OUTPUT" / "INOUT"
  int width = 1;          // >1 for array ports
};

struct EdifCell {
  std::string name;
  std::vector<EdifPort> ports;
  std::vector<EdifInstance> instances;
  std::vector<EdifNet> nets;
  bool has_contents = false;  // leaf library cells have interface only
};

struct EdifLibrary {
  std::string name;
  std::vector<EdifCell> cells;
};

struct EdifDoc {
  std::string design_name;
  std::string top_cell;
  std::vector<EdifLibrary> libraries;

  const EdifCell* find_cell(const std::string& name) const;
};

/// Parse EDIF text into the document model. Throws std::runtime_error on
/// structural problems (missing design, malformed cells).
EdifDoc read_edif(const std::string& text);

}  // namespace jhdl::netlist
