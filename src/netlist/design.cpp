#include "netlist/design.h"

#include <set>

#include "hdl/error.h"
#include "hdl/net.h"
#include "hdl/primitive.h"
#include "hdl/visitor.h"
#include "util/strings.h"

namespace jhdl::netlist {
namespace {

std::vector<PortDecl> declare_ports(const Cell& cell) {
  std::vector<PortDecl> out;
  for (const Port& p : cell.ports()) {
    out.push_back(PortDecl{sanitize_identifier(p.name), p.dir,
                           p.wire->width()});
  }
  return out;
}

/// Allocates names unique within one definition scope.
class NameScope {
 public:
  std::string claim(const std::string& base) {
    std::string candidate = base;
    int suffix = 1;
    while (!used_.insert(candidate).second) {
      candidate = base + "_" + std::to_string(suffix++);
    }
    return candidate;
  }

 private:
  std::set<std::string> used_;
};

}  // namespace

Design::Design(const Cell& top, const NetlistOptions& options)
    : options_(options) {
  if (options_.flatten) {
    // Leaf definitions are created on demand while walking primitives.
    build_flat_def(top);
  } else {
    def_for(top);
  }
  if (!options_.top_name.empty()) {
    defs_.back()->name = sanitize_identifier(options_.top_name);
  }
}

std::string Design::unique_def_name(const std::string& base) {
  std::string b = sanitize_identifier(base);
  int& count = def_name_counts_[b];
  std::string name = count == 0 ? b : b + "_d" + std::to_string(count);
  ++count;
  return name;
}

DefInfo* Design::build_leaf_def(const Cell& prim) {
  std::string type = prim.type_name().empty()
                         ? sanitize_identifier(prim.name())
                         : prim.type_name();
  // Leaf definitions are shared per type AND port signature: the same
  // library cell instanced with optional pins omitted must not alias a
  // fully pinned definition.
  std::string key = type;
  for (const Port& p : prim.ports()) {
    key += "/" + p.name + ":" + std::to_string(p.wire->width());
  }
  auto it = leaf_defs_.find(key);
  if (it != leaf_defs_.end()) return it->second;

  auto def = std::make_unique<DefInfo>();
  def->exemplar = &prim;
  def->name = unique_def_name(type);
  def->is_leaf = true;
  def->ports = declare_ports(prim);
  DefInfo* raw = def.get();
  // Leaf definitions go to the front half of the list naturally because
  // they are created before the composite defs that instance them.
  defs_.push_back(std::move(def));
  leaf_defs_.emplace(key, raw);
  return raw;
}

DefInfo* Design::def_for(const Cell& cell) {
  if (cell.is_primitive()) return build_leaf_def(cell);
  auto it = cell_def_.find(&cell);
  if (it != cell_def_.end()) return it->second;
  // Children first so definitions appear before their uses.
  for (const Cell* child : cell.children()) {
    def_for(*child);
  }
  return build_composite_def(cell);
}

DefInfo* Design::build_composite_def(const Cell& cell) {
  auto def = std::make_unique<DefInfo>();
  def->exemplar = &cell;
  def->name = unique_def_name(cell.type_name().empty() ? cell.name()
                                                       : cell.type_name());
  def->ports = declare_ports(cell);

  // Scope map: net -> name in this definition.
  std::map<const Net*, BitRef> net_map;
  NameScope names;
  for (std::size_t pi = 0; pi < cell.ports().size(); ++pi) {
    const Port& p = cell.ports()[pi];
    const PortDecl& decl = def->ports[pi];
    names.claim(decl.name);
    for (std::size_t i = 0; i < p.wire->width(); ++i) {
      net_map.emplace(p.wire->net(i),
                      BitRef{decl.name, static_cast<int>(i),
                             static_cast<int>(p.wire->width())});
    }
  }

  auto resolve = [&](const Net* net) -> BitRef {
    auto found = net_map.find(net);
    if (found != net_map.end()) return found->second;
    // Not a port net: becomes an internal scalar net of this definition.
    // A net may be internal to exactly one definition; seeing it again in
    // another definition means a wire crossed a cell boundary without a
    // port, which no hierarchical netlist can represent.
    std::string base = names.claim(sanitize_identifier(net->name()));
    BitRef ref{base, -1, 1};
    net_map.emplace(net, ref);
    def->internal_nets.push_back(base);
    auto claimed = internal_owner_.emplace(net, def.get());
    if (!claimed.second) {
      throw HdlError(
          "net '" + net->name() + "' is used inside both '" +
          claimed.first->second->name + "' and '" + def->name +
          "' but is not exposed through ports; add ports along the path");
    }
    return ref;
  };

  NameScope inst_names;
  for (const Cell* child : cell.children()) {
    InstanceInfo inst;
    inst.cell = child;
    inst.inst_name = inst_names.claim(sanitize_identifier(child->name()));
    inst.is_primitive = child->is_primitive();
    DefInfo* child_def = child->is_primitive()
                             ? build_leaf_def(*child)
                             : cell_def_.at(child);
    inst.def_name = child_def->name;
    for (const Port& cp : child->ports()) {
      PortConn conn;
      conn.name = sanitize_identifier(cp.name);
      conn.dir = cp.dir;
      for (std::size_t i = 0; i < cp.wire->width(); ++i) {
        conn.bits.push_back(resolve(cp.wire->net(i)));
      }
      inst.conns.push_back(std::move(conn));
    }
    def->instances.push_back(std::move(inst));
  }

  DefInfo* raw = def.get();
  defs_.push_back(std::move(def));
  cell_def_.emplace(&cell, raw);
  return raw;
}

DefInfo* Design::build_flat_def(const Cell& top) {
  auto def = std::make_unique<DefInfo>();
  def->exemplar = &top;
  def->ports = declare_ports(top);

  std::map<const Net*, BitRef> net_map;
  NameScope names;
  for (std::size_t pi = 0; pi < top.ports().size(); ++pi) {
    const Port& p = top.ports()[pi];
    const PortDecl& decl = def->ports[pi];
    names.claim(decl.name);
    for (std::size_t i = 0; i < p.wire->width(); ++i) {
      net_map.emplace(p.wire->net(i),
                      BitRef{decl.name, static_cast<int>(i),
                             static_cast<int>(p.wire->width())});
    }
  }

  auto resolve = [&](const Net* net) -> BitRef {
    auto found = net_map.find(net);
    if (found != net_map.end()) return found->second;
    std::string base = names.claim(sanitize_identifier(net->name()));
    BitRef ref{base, -1, 1};
    net_map.emplace(net, ref);
    def->internal_nets.push_back(base);
    return ref;
  };

  const std::string top_path = top.full_name();
  auto prims = collect_primitives(const_cast<Cell&>(top));
  NameScope inst_names;
  for (const Primitive* prim : prims) {
    InstanceInfo inst;
    inst.cell = prim;
    std::string rel = prim->full_name();
    if (starts_with(rel, top_path)) rel = rel.substr(top_path.size());
    inst.inst_name = inst_names.claim(sanitize_identifier(rel));
    inst.is_primitive = true;
    inst.def_name = build_leaf_def(*prim)->name;
    for (const Port& cp : prim->ports()) {
      PortConn conn;
      conn.name = sanitize_identifier(cp.name);
      conn.dir = cp.dir;
      for (std::size_t i = 0; i < cp.wire->width(); ++i) {
        conn.bits.push_back(resolve(cp.wire->net(i)));
      }
      inst.conns.push_back(std::move(conn));
    }
    def->instances.push_back(std::move(inst));
  }

  def->name = unique_def_name(top.type_name().empty() ? top.name()
                                                      : top.type_name());
  DefInfo* raw = def.get();
  defs_.push_back(std::move(def));
  return raw;
}

DesignStats Design::stats() const {
  DesignStats s;
  for (const auto& def : defs_) {
    ++s.definitions;
    if (def->is_leaf) ++s.leaf_definitions;
    s.instances += def->instances.size();
    s.nets += def->internal_nets.size();
  }
  return s;
}

}  // namespace jhdl::netlist
