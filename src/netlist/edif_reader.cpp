#include "netlist/edif_reader.h"

#include <cctype>
#include <stdexcept>

namespace jhdl::netlist {
namespace {

class SexpParser {
 public:
  explicit SexpParser(const std::string& text) : text_(text) {}

  std::unique_ptr<Sexp> parse() {
    skip_ws();
    auto root = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("sexp parse error at offset " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::unique_ptr<Sexp> value() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    if (text_[pos_] == '(') return list();
    return atom();
  }

  std::unique_ptr<Sexp> list() {
    ++pos_;  // consume '('
    auto node = std::make_unique<Sexp>();
    while (true) {
      skip_ws();
      if (pos_ >= text_.size()) fail("unbalanced '('");
      if (text_[pos_] == ')') {
        ++pos_;
        return node;
      }
      node->items.push_back(value());
    }
  }

  std::unique_ptr<Sexp> atom() {
    auto node = std::make_unique<Sexp>();
    node->is_atom = true;
    if (text_[pos_] == '"') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        node->atom.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) fail("unterminated string");
      ++pos_;  // closing quote
      return node;
    }
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      node->atom.push_back(text_[pos_++]);
    }
    if (node->atom.empty()) fail("empty token");
    return node;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Name of an EDIF object that may be plain or (rename <id> "<name>").
std::string object_name(const Sexp& list, std::size_t index) {
  if (index >= list.items.size()) return "";
  const Sexp& item = *list.items[index];
  if (item.is_atom) return item.atom;
  if (item.keyword() == "rename" && item.items.size() >= 2 &&
      item.items[1]->is_atom) {
    return item.items[1]->atom;
  }
  return "";
}

EdifPort extract_port(const Sexp& port_sexp) {
  EdifPort port;
  if (port_sexp.items.size() < 2) {
    throw std::runtime_error("EDIF: malformed (port ...)");
  }
  // (port NAME (direction D)) or (port (array (rename N "N") W) (dir ...))
  const Sexp& name_item = *port_sexp.items[1];
  if (name_item.is_atom) {
    port.name = name_item.atom;
  } else if (name_item.keyword() == "array") {
    port.name = object_name(name_item, 1);
    if (name_item.items.size() >= 3 && name_item.items[2]->is_atom) {
      port.width = std::stoi(name_item.items[2]->atom);
    }
  } else if (name_item.keyword() == "rename") {
    port.name = object_name(port_sexp, 1);
  }
  if (const Sexp* dir = port_sexp.find("direction")) {
    if (dir->items.size() >= 2 && dir->items[1]->is_atom) {
      port.direction = dir->items[1]->atom;
    }
  }
  return port;
}

EdifPortRef extract_port_ref(const Sexp& ref_sexp) {
  EdifPortRef ref;
  if (ref_sexp.items.size() < 2) {
    throw std::runtime_error("EDIF: malformed (portRef ...)");
  }
  const Sexp& target = *ref_sexp.items[1];
  if (target.is_atom) {
    ref.port = target.atom;
  } else if (target.keyword() == "member") {
    ref.port = object_name(target, 1);
    if (target.items.size() >= 3 && target.items[2]->is_atom) {
      ref.member = std::stoi(target.items[2]->atom);
    }
  }
  if (const Sexp* inst = ref_sexp.find("instanceRef")) {
    ref.instance = object_name(*inst, 1);
  }
  return ref;
}

EdifInstance extract_instance(const Sexp& inst_sexp) {
  EdifInstance inst;
  inst.name = object_name(inst_sexp, 1);
  if (const Sexp* view_ref = inst_sexp.find("viewRef")) {
    if (const Sexp* cell_ref = view_ref->find("cellRef")) {
      inst.cell_ref = object_name(*cell_ref, 1);
      if (const Sexp* lib_ref = cell_ref->find("libraryRef")) {
        inst.library_ref = object_name(*lib_ref, 1);
      }
    }
  }
  for (const Sexp* prop : inst_sexp.find_all("property")) {
    std::string key = object_name(*prop, 1);
    if (const Sexp* str = prop->find("string")) {
      if (str->items.size() >= 2 && str->items[1]->is_atom) {
        inst.properties[key] = str->items[1]->atom;
      }
    }
  }
  return inst;
}

EdifCell extract_cell(const Sexp& cell_sexp) {
  EdifCell cell;
  cell.name = object_name(cell_sexp, 1);
  const Sexp* view = cell_sexp.find("view");
  if (view == nullptr) return cell;
  if (const Sexp* iface = view->find("interface")) {
    for (const Sexp* port : iface->find_all("port")) {
      cell.ports.push_back(extract_port(*port));
    }
  }
  if (const Sexp* contents = view->find("contents")) {
    cell.has_contents = true;
    for (const Sexp* inst : contents->find_all("instance")) {
      cell.instances.push_back(extract_instance(*inst));
    }
    for (const Sexp* net_sexp : contents->find_all("net")) {
      EdifNet net;
      net.name = object_name(*net_sexp, 1);
      if (const Sexp* joined = net_sexp->find("joined")) {
        for (const Sexp* ref : joined->find_all("portRef")) {
          net.joined.push_back(extract_port_ref(*ref));
        }
      }
      cell.nets.push_back(std::move(net));
    }
  }
  return cell;
}

}  // namespace

const std::string& Sexp::keyword() const {
  static const std::string empty;
  if (is_atom || items.empty() || !items[0]->is_atom) return empty;
  return items[0]->atom;
}

std::vector<const Sexp*> Sexp::find_all(const std::string& kw) const {
  std::vector<const Sexp*> out;
  for (const auto& item : items) {
    if (!item->is_atom && item->keyword() == kw) out.push_back(item.get());
  }
  return out;
}

const Sexp* Sexp::find(const std::string& kw) const {
  for (const auto& item : items) {
    if (!item->is_atom && item->keyword() == kw) return item.get();
  }
  return nullptr;
}

std::unique_ptr<Sexp> parse_sexp(const std::string& text) {
  return SexpParser(text).parse();
}

const EdifCell* EdifDoc::find_cell(const std::string& name) const {
  for (const EdifLibrary& lib : libraries) {
    for (const EdifCell& cell : lib.cells) {
      if (cell.name == name) return &cell;
    }
  }
  return nullptr;
}

EdifDoc read_edif(const std::string& text) {
  std::unique_ptr<Sexp> root = parse_sexp(text);
  if (root->keyword() != "edif") {
    throw std::runtime_error("not an EDIF document");
  }
  EdifDoc doc;
  doc.design_name = object_name(*root, 1);
  for (const Sexp* lib_sexp : root->find_all("library")) {
    EdifLibrary lib;
    lib.name = object_name(*lib_sexp, 1);
    for (const Sexp* cell_sexp : lib_sexp->find_all("cell")) {
      lib.cells.push_back(extract_cell(*cell_sexp));
    }
    doc.libraries.push_back(std::move(lib));
  }
  if (const Sexp* design = root->find("design")) {
    if (const Sexp* cell_ref = design->find("cellRef")) {
      doc.top_cell = object_name(*cell_ref, 1);
    }
  }
  if (doc.top_cell.empty()) {
    throw std::runtime_error("EDIF document has no (design ... (cellRef ...))");
  }
  return doc;
}

}  // namespace jhdl::netlist
