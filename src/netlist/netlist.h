// Netlist generation - the paper's "Circuit Netlister" (Section 2.2).
//
// JHDL exposes circuit structure through an API and regenerates it in one
// of several interchange formats; this module provides the same four
// outputs the paper names or implies:
//   EDIF 2.0.0        write_edif()
//   structural VHDL   write_vhdl()
//   structural Verilog write_verilog()
//   user-defined text  write_json() / read_json() (the "user-defined
//                      textual interchange format" path, round-trippable)
//
// Instance properties (LUT INIT values, constants) are carried as real
// properties in EDIF and JSON; the VHDL and Verilog writers emit them as
// trailing comments to stay tool-agnostic.
#pragma once

#include <string>

#include "netlist/design.h"
#include "netlist/json_netlist.h"

namespace jhdl::netlist {

// Each writer comes in two forms: the Cell& entry point scopes the
// circuit itself (one Design per call, the historical behaviour), and the
// Design& entry point renders a caller-held snapshot - the IP artifact
// pipeline builds the Design ONCE and feeds the same snapshot to every
// format, so EDIF/VHDL/Verilog/JSON all describe one scoping pass.

/// EDIF 2.0.0 netlist text for `top` and everything below it.
std::string write_edif(const Cell& top, const NetlistOptions& options = {});
std::string write_edif(const Design& design);

/// Structural VHDL (one entity/architecture per definition, component
/// declarations for library primitives).
std::string write_vhdl(const Cell& top, const NetlistOptions& options = {});
std::string write_vhdl(const Design& design);

/// Structural Verilog (one module per definition; leaf primitives are
/// emitted as empty port-list stubs so the output is self-contained).
std::string write_verilog(const Cell& top, const NetlistOptions& options = {});
std::string write_verilog(const Design& design);

/// JSON interchange netlist (full fidelity, machine-readable; see
/// json_netlist.h for the reader).
std::string write_json(const Cell& top, const NetlistOptions& options = {});
std::string write_json(const Design& design);

}  // namespace jhdl::netlist
