// Netlist generation - the paper's "Circuit Netlister" (Section 2.2).
//
// JHDL exposes circuit structure through an API and regenerates it in one
// of several interchange formats; this module provides the same four
// outputs the paper names or implies:
//   EDIF 2.0.0        write_edif()
//   structural VHDL   write_vhdl()
//   structural Verilog write_verilog()
//   user-defined text  write_json() / read_json() (the "user-defined
//                      textual interchange format" path, round-trippable)
//
// Instance properties (LUT INIT values, constants) are carried as real
// properties in EDIF and JSON; the VHDL and Verilog writers emit them as
// trailing comments to stay tool-agnostic.
#pragma once

#include <string>

#include "netlist/design.h"
#include "netlist/json_netlist.h"

namespace jhdl::netlist {

/// EDIF 2.0.0 netlist text for `top` and everything below it.
std::string write_edif(const Cell& top, const NetlistOptions& options = {});

/// Structural VHDL (one entity/architecture per definition, component
/// declarations for library primitives).
std::string write_vhdl(const Cell& top, const NetlistOptions& options = {});

/// Structural Verilog (one module per definition; leaf primitives are
/// emitted as empty port-list stubs so the output is self-contained).
std::string write_verilog(const Cell& top, const NetlistOptions& options = {});

/// JSON interchange netlist (full fidelity, machine-readable; see
/// json_netlist.h for the reader).
std::string write_json(const Cell& top, const NetlistOptions& options = {});

}  // namespace jhdl::netlist
