// JSON interchange netlist: writer plus a reader that parses the format
// back into a document model. This exercises the paper's claim that the
// netlister API supports "user-defined textual or binary interchange
// formats", and gives the test suite an exact round-trip check.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/design.h"

namespace jhdl::netlist {

/// Parsed form of one instance connection bit.
struct JsonBitRef {
  std::string base;
  int index = -1;  // -1 = scalar
};

struct JsonConn {
  std::string port;
  std::vector<JsonBitRef> bits;
};

struct JsonInstance {
  std::string name;
  std::string def;
  bool leaf = false;
  std::map<std::string, std::string> properties;
  std::vector<JsonConn> conns;
};

struct JsonPort {
  std::string name;
  std::string dir;  // "in" / "out" / "inout"
  std::size_t width = 1;
};

struct JsonDef {
  std::string name;
  bool leaf = false;
  std::vector<JsonPort> ports;
  std::vector<std::string> nets;
  std::vector<JsonInstance> instances;
};

/// A parsed JSON netlist document.
struct JsonNetlist {
  std::string top;
  std::vector<JsonDef> definitions;

  const JsonDef* find_def(const std::string& name) const;
};

/// Parse text produced by write_json(). Throws std::runtime_error on
/// malformed input.
JsonNetlist read_json(const std::string& text);

}  // namespace jhdl::netlist
