// Counter and comparator module generators.
#pragma once

#include <cstdint>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// Free-running binary up-counter: q increments every enabled cycle,
/// wrapping at 2^width. Optional ce and synchronous clear.
class Counter : public Cell {
 public:
  Counter(Node* parent, Wire* q, Wire* ce = nullptr, Wire* clr = nullptr);
};

/// eq = (a == b), one xor per bit plus an AND reduction tree.
class EqComparator : public Cell {
 public:
  EqComparator(Node* parent, Wire* a, Wire* b, Wire* eq);
};

/// eq = (a == constant), LUT-friendly: inverters fold into the reduction.
class ConstComparator : public Cell {
 public:
  ConstComparator(Node* parent, Wire* a, std::uint64_t constant, Wire* eq);
};

}  // namespace jhdl::modgen
