// Wiring helpers shared by the module generators: constants, zero/sign
// extension views, and buffered connections.
#pragma once

#include <cstdint>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// A `width`-bit wire driven to `value` (one Constant primitive).
Wire* constant_wire(Cell* parent, std::size_t width, std::uint64_t value);

/// Zero-extension to `width`: a view whose upper bits are a shared
/// constant-0 net (no logic beyond one Gnd per call when padding is
/// needed). Returns `w` unchanged when already wide enough.
Wire* zero_extend(Cell* parent, Wire* w, std::size_t width);

/// Sign-extension to `width`: a view whose upper bits replicate the MSB
/// net (pure routing, no logic). Returns `w` unchanged when wide enough.
Wire* sign_extend(Cell* parent, Wire* w, std::size_t width);

/// Extend according to `is_signed`.
Wire* extend(Cell* parent, Wire* w, std::size_t width, bool is_signed);

/// Drive `dst` from `src` bit-by-bit with route-through buffers
/// (widths must match).
void connect(Cell* parent, Wire* src, Wire* dst);

}  // namespace jhdl::modgen
