#include "modgen/wires.h"

#include <vector>

#include "hdl/error.h"
#include "tech/constants.h"
#include "tech/gates.h"

namespace jhdl::modgen {

Wire* constant_wire(Cell* parent, std::size_t width, std::uint64_t value) {
  Wire* w = new Wire(parent, width);
  new tech::Constant(parent, w, value);
  return w;
}

Wire* zero_extend(Cell* parent, Wire* w, std::size_t width) {
  if (w->width() >= width) return w;
  Wire* zero = constant_wire(parent, 1, 0);
  // Build a view: original bits, then the shared zero net repeated.
  Wire* ext = w;
  for (std::size_t i = w->width(); i < width; ++i) {
    ext = zero->concat(ext);
  }
  return ext;
}

Wire* sign_extend(Cell* parent, Wire* w, std::size_t width) {
  (void)parent;
  if (w->width() >= width) return w;
  Wire* msb = w->gw(w->width() - 1);
  Wire* ext = w;
  for (std::size_t i = w->width(); i < width; ++i) {
    ext = msb->concat(ext);
  }
  return ext;
}

Wire* extend(Cell* parent, Wire* w, std::size_t width, bool is_signed) {
  return is_signed ? sign_extend(parent, w, width)
                   : zero_extend(parent, w, width);
}

void connect(Cell* parent, Wire* src, Wire* dst) {
  if (src->width() != dst->width()) {
    throw HdlError("connect width mismatch: " + src->name() + "(" +
                   std::to_string(src->width()) + ") -> " + dst->name() + "(" +
                   std::to_string(dst->width()) + ")");
  }
  for (std::size_t i = 0; i < src->width(); ++i) {
    new tech::Buf(parent, src->gw(i), dst->gw(i));
  }
}

}  // namespace jhdl::modgen
