#include "modgen/adder.h"

#include "hdl/error.h"
#include "modgen/wires.h"
#include "tech/carry.h"
#include "tech/constants.h"
#include "tech/gates.h"

namespace jhdl::modgen {
namespace {
void check_widths(const Cell& c, Wire* a, Wire* b, Wire* s) {
  if (a->width() != b->width() || a->width() != s->width()) {
    throw HdlError("adder width mismatch in " + c.full_name());
  }
  if (a->width() == 0) throw HdlError("adder width must be >= 1");
}
}  // namespace

CarryChainAdder::CarryChainAdder(Node* parent, Wire* a, Wire* b, Wire* s,
                                 Wire* cin, Wire* cout)
    : Cell(parent, "add" + std::to_string(a->width())) {
  check_widths(*this, a, b, s);
  set_type_name("add" + std::to_string(a->width()));
  port_in("a", a);
  port_in("b", b);
  port_out("s", s);
  if (cin != nullptr) port_in("cin", cin);
  if (cout != nullptr) port_out("cout", cout);

  Wire* carry = cin != nullptr ? cin : constant_wire(this, 1, 0);
  const std::size_t n = a->width();
  for (std::size_t i = 0; i < n; ++i) {
    // Half-sum LUT drives both the sum xor and the carry-select input.
    Wire* p = new Wire(this, 1);
    auto* lut = new tech::Xor2(this, a->gw(i), b->gw(i), p);
    auto* sum = new tech::XorCY(this, p, carry, s->gw(i));
    // Two bits per slice, stacked vertically.
    lut->set_rloc({static_cast<int>(i / 2), 0});
    sum->set_rloc({static_cast<int>(i / 2), 0});
    const bool last = (i + 1 == n);
    Wire* next = last && cout != nullptr ? cout
               : last                    ? nullptr
                                         : new Wire(this, 1);
    if (next != nullptr) {
      auto* mux = new tech::MuxCY(this, a->gw(i), carry, p, next);
      mux->set_rloc({static_cast<int>(i / 2), 0});
      carry = next;
    }
  }
}

namespace {
/// One gate-level full adder: s = a^b^ci, co = ab + aci + bci.
void full_adder(Cell* parent, Wire* a, Wire* b, Wire* ci, Wire* s, Wire* co) {
  Wire* t1 = new Wire(parent, 1);
  Wire* t2 = new Wire(parent, 1);
  Wire* t3 = new Wire(parent, 1);
  new tech::And2(parent, a, b, t1);
  new tech::And2(parent, a, ci, t2);
  new tech::And2(parent, b, ci, t3);
  new tech::Or3(parent, t1, t2, t3, co);
  new tech::Xor3(parent, a, b, ci, s);
}
}  // namespace

RippleAdder::RippleAdder(Node* parent, Wire* a, Wire* b, Wire* s, Wire* cin,
                         Wire* cout)
    : Cell(parent, "radd" + std::to_string(a->width())) {
  check_widths(*this, a, b, s);
  set_type_name("radd" + std::to_string(a->width()));
  port_in("a", a);
  port_in("b", b);
  port_out("s", s);
  if (cin != nullptr) port_in("cin", cin);
  if (cout != nullptr) port_out("cout", cout);

  Wire* carry = cin != nullptr ? cin : constant_wire(this, 1, 0);
  const std::size_t n = a->width();
  for (std::size_t i = 0; i < n; ++i) {
    const bool last = (i + 1 == n);
    Wire* next = last && cout != nullptr ? cout : new Wire(this, 1);
    full_adder(this, a->gw(i), b->gw(i), carry, s->gw(i), next);
    carry = next;
  }
}

Subtractor::Subtractor(Node* parent, Wire* a, Wire* b, Wire* s)
    : Cell(parent, "sub" + std::to_string(a->width())) {
  check_widths(*this, a, b, s);
  set_type_name("sub" + std::to_string(a->width()));
  port_in("a", a);
  port_in("b", b);
  port_out("s", s);

  // a - b = a + ~b + 1.
  Wire* nb = new Wire(this, b->width());
  for (std::size_t i = 0; i < b->width(); ++i) {
    new tech::Inv(this, b->gw(i), nb->gw(i));
  }
  Wire* one = constant_wire(this, 1, 1);
  new CarryChainAdder(this, a, nb, s, one, nullptr);
}

}  // namespace jhdl::modgen
