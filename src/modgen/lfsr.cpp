#include "modgen/lfsr.h"

#include "hdl/error.h"
#include "modgen/wires.h"
#include "tech/ff.h"
#include "tech/gates.h"
#include "util/strings.h"

namespace jhdl::modgen {

std::uint64_t Lfsr::next_state(std::uint64_t state, std::size_t width,
                               const std::vector<std::size_t>& taps) {
  std::uint64_t fb = 0;
  for (std::size_t t : taps) fb ^= (state >> t) & 1;
  std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  return ((state << 1) | fb) & mask;
}

Lfsr::Lfsr(Node* parent, Wire* q, std::vector<std::size_t> taps,
           std::uint64_t seed, Wire* ce)
    : Cell(parent, format("lfsr%zu", q->width())), taps_(std::move(taps)) {
  const std::size_t n = q->width();
  if (taps_.empty()) throw HdlError("LFSR needs at least one tap");
  for (std::size_t t : taps_) {
    if (t >= n) throw HdlError("LFSR tap out of range: " + full_name());
  }
  const std::uint64_t mask =
      n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  if ((seed & mask) == 0) {
    throw HdlError("LFSR seed must be non-zero: " + full_name());
  }
  set_type_name(format("lfsr%zu", n));
  port_out("q", q);
  if (ce != nullptr) port_in("ce", ce);

  // Feedback: XOR tree over the tap bits.
  Wire* fb = q->gw(taps_[0]);
  for (std::size_t i = 1; i < taps_.size(); ++i) {
    Wire* next = new Wire(this, 1);
    new tech::Xor2(this, fb, q->gw(taps_[i]), next);
    fb = next;
  }

  // Shift register with per-bit INIT from the seed.
  Wire* r_low = ce != nullptr ? constant_wire(this, 1, 0) : nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    Wire* d = (i == 0) ? fb : q->gw(i - 1);
    const bool init_one = ((seed >> i) & 1) != 0;
    if (ce != nullptr) {
      new tech::FDRE(this, d, q->gw(i), ce, r_low, init_one);
    } else {
      new tech::FD(this, d, q->gw(i), init_one);
    }
  }
}

}  // namespace jhdl::modgen
