// Encoder/decoder module generators: priority encoder, one-hot decoder,
// and binary<->Gray conversion with a Gray counter.
#pragma once

#include "hdl/cell.h"

namespace jhdl::modgen {

/// Priority encoder: idx = index of the highest set input bit; valid = 0
/// when no input bit is set (idx is then 0). idx must be wide enough for
/// width-1.
class PriorityEncoder : public Cell {
 public:
  PriorityEncoder(Node* parent, Wire* in, Wire* idx, Wire* valid);
};

/// One-hot decoder: out bit i = (in == i) [& en].
class OneHotDecoder : public Cell {
 public:
  /// out must be exactly 2^in.width bits; en may be null.
  OneHotDecoder(Node* parent, Wire* in, Wire* out, Wire* en = nullptr);
};

/// Combinational binary-to-Gray: g = b ^ (b >> 1).
class BinaryToGray : public Cell {
 public:
  BinaryToGray(Node* parent, Wire* b, Wire* g);
};

/// Combinational Gray-to-binary (prefix XOR from the MSB down).
class GrayToBinary : public Cell {
 public:
  GrayToBinary(Node* parent, Wire* g, Wire* b);
};

/// Gray-coded counter: q advances through the Gray sequence each enabled
/// cycle (binary counter core + output conversion), so q changes exactly
/// one bit per step - the classic clock-domain-crossing counter.
class GrayCounter : public Cell {
 public:
  GrayCounter(Node* parent, Wire* q, Wire* ce = nullptr);
};

}  // namespace jhdl::modgen
