// Multiply-accumulate module generator: acc <= clr ? 0 : acc + c * x.
// Built from delivered KCM IP plus a carry-chain adder and a clearable
// register bank - the inner loop of the DSP workloads the paper's
// introduction motivates.
#pragma once

#include <cstdint>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// Constant-coefficient multiply-accumulator (signed).
class MacUnit : public Cell {
 public:
  /// `x` is the signed input; `acc` (the registered accumulator output)
  /// must be `acc_width()` bits; `clr` synchronously clears.
  MacUnit(Node* parent, Wire* x, Wire* acc, Wire* clr, int constant,
          std::size_t extra_bits = 8);

  /// Accumulator width for an input width: product width plus guard bits.
  static std::size_t acc_width(std::size_t input_width, int constant,
                               std::size_t extra_bits = 8);

  std::int64_t constant() const { return constant_; }

 private:
  std::int64_t constant_;
};

}  // namespace jhdl::modgen
