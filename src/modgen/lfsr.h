// LFSR module generator: Fibonacci linear-feedback shift register, the
// stock pseudo-random stimulus source of FPGA testbenches.
#pragma once

#include <cstdint>
#include <vector>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// Fibonacci LFSR: q shifts left each enabled cycle; bit 0 receives the
/// XOR of the tap bits. Seeded non-zero via flip-flop INIT.
class Lfsr : public Cell {
 public:
  /// `taps` are bit indices into q (at least one; all < q->width()).
  /// `seed` must be non-zero in the low width bits.
  Lfsr(Node* parent, Wire* q, std::vector<std::size_t> taps,
       std::uint64_t seed = 1, Wire* ce = nullptr);

  /// Software reference: the next state after `state` for given taps.
  static std::uint64_t next_state(std::uint64_t state, std::size_t width,
                                  const std::vector<std::size_t>& taps);

  const std::vector<std::size_t>& taps() const { return taps_; }

 private:
  std::vector<std::size_t> taps_;
};

}  // namespace jhdl::modgen
