#include "modgen/kcm.h"

#include <array>
#include <vector>

#include "hdl/error.h"
#include "modgen/adder.h"
#include "modgen/register.h"
#include "modgen/wires.h"
#include "tech/gates.h"
#include "tech/memory.h"
#include "util/strings.h"

namespace jhdl::modgen {
namespace {

/// A partial value in the adder tree: a wire holding bits
/// [offset, offset + width) of the product, signed or unsigned.
struct Val {
  Wire* w;
  std::size_t offset;
  bool sig;
};

std::uint64_t mask_bits(std::size_t w) {
  return w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
}

}  // namespace

std::size_t VirtexKCMMultiplier::width_of_constant(std::int64_t c) {
  if (c >= 0) {
    std::size_t w = 1;
    while ((c >> w) != 0) ++w;
    return w;
  }
  // Smallest w with c >= -2^(w-1).
  std::size_t w = 1;
  while (c < -(std::int64_t{1} << (w - 1))) ++w;
  return w;
}

VirtexKCMMultiplier::VirtexKCMMultiplier(Node* parent, Wire* multiplicand,
                                         Wire* product, bool signed_mode,
                                         bool pipelined_mode, int constant)
    : Cell(parent, format("kcm_%zux%zu", multiplicand->width(),
                          width_of_constant(constant))),
      constant_(constant),
      constant_width_(width_of_constant(constant)),
      multiplicand_width_(multiplicand->width()),
      product_width_(product->width()),
      full_width_(multiplicand->width() + width_of_constant(constant)),
      signed_(signed_mode),
      pipelined_(pipelined_mode) {
  set_type_name(format("kcm_%zux%zu_c%lld%s%s", multiplicand_width_,
                       constant_width_, static_cast<long long>(constant_),
                       signed_ ? "_s" : "", pipelined_ ? "_p" : ""));
  port_in("multiplicand", multiplicand);
  port_out("product", product);
  if (product_width_ == 0 || product_width_ > full_width_) {
    throw HdlError(format(
        "KCM product width %zu out of range (full product is %zu bits)",
        product_width_, full_width_));
  }

  const std::size_t n = multiplicand_width_;
  const std::size_t wc = constant_width_;
  const std::size_t digits = (n + 3) / 4;
  const std::size_t ppw = wc + 4;  // partial product width

  // Pad the multiplicand to a whole number of digits; pure routing.
  Wire* m_ext = extend(this, multiplicand, 4 * digits, signed_);

  // Stage 1: partial-product ROMs, one per digit.
  std::vector<Val> vals;
  for (std::size_t i = 0; i < digits; ++i) {
    const bool top = (i + 1 == digits);
    const bool digit_signed = signed_ && top;
    std::array<std::uint64_t, 16> table{};
    for (std::uint32_t a = 0; a < 16; ++a) {
      std::int64_t dv = digit_signed && a >= 8 ? static_cast<std::int64_t>(a) - 16
                                               : static_cast<std::int64_t>(a);
      std::int64_t pp = constant_ * dv;
      table[a] = static_cast<std::uint64_t>(pp) & mask_bits(ppw);
    }
    Wire* addr = m_ext->range(4 * i + 3, 4 * i);
    Wire* pp = new Wire(this, ppw);
    auto* rom = new tech::Rom16(this, addr, pp, table);
    rom->set_rloc({0, static_cast<int>(2 * i)});
    // An unsigned top digit narrower than 4 bits never addresses the upper
    // table entries; mark them as free watermark carriers (core/protect.h).
    const std::size_t top_bits = n - 4 * (digits - 1);
    if (top && !signed_ && top_bits < 4) {
      rom->set_property("UNUSED_ABOVE",
                        std::to_string(std::uint64_t{1} << top_bits));
    }
    vals.push_back(Val{pp, 4 * i, constant_ < 0 || digit_signed});
  }

  // Optional pipeline register after the ROMs.
  if (pipelined_) {
    for (Val& v : vals) {
      Wire* q = new Wire(this, v.w->width());
      new RegisterBank(this, v.w, q);
      v.w = q;
    }
    latency_ = 1;
  }

  // Adder tree: combine adjacent pairs until one value remains.
  int level = 0;
  while (vals.size() > 1) {
    ++level;
    std::vector<Val> next;
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
      const Val& lo = vals[i];
      const Val& hi = vals[i + 1];
      const std::size_t shift = hi.offset - lo.offset;
      // Bits below the overlap pass straight through.
      Wire* lo_pass = shift > 0 ? lo.w->range(shift - 1, 0) : nullptr;
      Wire* lo_hi = lo.w->range(lo.w->width() - 1, shift);
      const std::size_t w = std::max(lo_hi->width(), hi.w->width()) + 1;
      Wire* a = extend(this, lo_hi, w, lo.sig);
      Wire* b = extend(this, hi.w, w, hi.sig);
      Wire* sum = new Wire(this, w);
      auto* add = new CarryChainAdder(this, a, b, sum);
      add->set_rloc({0, static_cast<int>(2 * digits + 2 * (i / 2) + level)});
      Wire* combined = lo_pass != nullptr ? sum->concat(lo_pass) : sum;
      next.push_back(Val{combined, lo.offset, lo.sig || hi.sig});
    }
    if (vals.size() % 2 == 1) next.push_back(vals.back());
    vals = std::move(next);
    if (pipelined_) {
      for (Val& v : vals) {
        Wire* q = new Wire(this, v.w->width());
        new RegisterBank(this, v.w, q);
        v.w = q;
      }
      ++latency_;
    }
  }

  // Deliver the top product bits, as the paper specifies.
  Val full = vals.front();
  if (full.offset != 0) {
    throw HdlError("KCM internal error: final offset nonzero");
  }
  Wire* fw = extend(this, full.w, full_width_, full.sig);
  Wire* top_bits = fw->range(full_width_ - 1, full_width_ - product_width_);
  connect(this, top_bits, product);
}

std::uint64_t VirtexKCMMultiplier::expected_product(std::uint64_t m_raw) const {
  m_raw &= mask_bits(multiplicand_width_);
  std::int64_t m;
  if (signed_ && multiplicand_width_ > 0 &&
      ((m_raw >> (multiplicand_width_ - 1)) & 1) != 0) {
    m = static_cast<std::int64_t>(m_raw | ~mask_bits(multiplicand_width_));
  } else {
    m = static_cast<std::int64_t>(m_raw);
  }
  std::uint64_t full =
      static_cast<std::uint64_t>(constant_ * m) & mask_bits(full_width_);
  return full >> (full_width_ - product_width_);
}

}  // namespace jhdl::modgen
