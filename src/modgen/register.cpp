#include "modgen/register.h"

#include "hdl/error.h"
#include "modgen/wires.h"
#include "tech/ff.h"
#include "tech/srl.h"

namespace jhdl::modgen {

RegisterBank::RegisterBank(Node* parent, Wire* d, Wire* q, Wire* ce,
                           Wire* clr)
    : Cell(parent, "reg" + std::to_string(d->width())) {
  if (d->width() != q->width()) {
    throw HdlError("register width mismatch in " + full_name());
  }
  set_type_name("reg" + std::to_string(d->width()));
  port_in("d", d);
  port_out("q", q);
  if (ce != nullptr) port_in("ce", ce);
  if (clr != nullptr) port_in("clr", clr);

  // Library FDRE always has its R pin; tie it low for ce-only banks so
  // netlists carry the full primitive interface.
  Wire* r_low = ce != nullptr && clr == nullptr ? constant_wire(this, 1, 0)
                                                : nullptr;
  for (std::size_t i = 0; i < d->width(); ++i) {
    if (ce != nullptr && clr != nullptr) {
      new tech::FDCE(this, d->gw(i), q->gw(i), ce, clr);
    } else if (ce != nullptr) {
      new tech::FDRE(this, d->gw(i), q->gw(i), ce, r_low);
    } else if (clr != nullptr) {
      new tech::FDC(this, d->gw(i), q->gw(i), clr);
    } else {
      new tech::FD(this, d->gw(i), q->gw(i));
    }
  }
}

ShiftRegister::ShiftRegister(Node* parent, Wire* in, Wire* out,
                             std::size_t depth, Style style)
    : Cell(parent, "srl" + std::to_string(depth)) {
  if (in->width() != out->width()) {
    throw HdlError("shift register width mismatch in " + full_name());
  }
  if (depth == 0) {
    throw HdlError("shift register depth must be >= 1: " + full_name());
  }
  set_type_name("srl" + std::to_string(in->width()) + "x" +
                std::to_string(depth) +
                (style == Style::SRL16 ? "l" : ""));
  port_in("in", in);
  port_out("out", out);

  if (style == Style::FF) {
    Wire* stage = in;
    for (std::size_t k = 0; k < depth; ++k) {
      Wire* next = (k + 1 == depth) ? out : new Wire(this, in->width());
      new RegisterBank(this, stage, next);
      stage = next;
    }
    return;
  }

  // SRL16 style: per bit, a chain of shift-register LUTs. Full segments
  // tap stage 15; the last segment taps (remaining-1).
  for (std::size_t bit = 0; bit < in->width(); ++bit) {
    Wire* d = in->gw(bit);
    std::size_t remaining = depth;
    while (remaining > 0) {
      const std::size_t seg = remaining > 16 ? 16 : remaining;
      Wire* tap = constant_wire(this, 4, seg - 1);
      Wire* q = (remaining == seg) ? out->gw(bit) : new Wire(this, 1);
      new tech::Srl16(this, d, tap, q);
      d = q;
      remaining -= seg;
    }
  }
}

}  // namespace jhdl::modgen
