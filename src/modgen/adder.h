// Adder / subtractor module generators.
//
// CarryChainAdder is the Virtex-idiomatic form the JHDL module library
// uses: one LUT per bit computes the half-sum (a XOR b), the dedicated
// carry chain (MUXCY) propagates the carry, and XORCY forms the sum.
// Relative placement stacks two bits per slice in a vertical column.
//
// RippleAdder is a carry-chain-free baseline built from discrete full
// adders (gates only), used by the ablation benchmarks.
#pragma once

#include "hdl/cell.h"

namespace jhdl::modgen {

/// s = a + b (+ cin). Widths of a, b and s must match; cout is optional.
class CarryChainAdder : public Cell {
 public:
  /// `cin`/`cout` may be null (carry-in 0 / carry-out unused).
  CarryChainAdder(Node* parent, Wire* a, Wire* b, Wire* s,
                  Wire* cin = nullptr, Wire* cout = nullptr);
};

/// Same function built from discrete gates (2 LUT-mapped gates deep per
/// bit, no carry chain). Baseline for the carry-chain ablation.
class RippleAdder : public Cell {
 public:
  RippleAdder(Node* parent, Wire* a, Wire* b, Wire* s, Wire* cin = nullptr,
              Wire* cout = nullptr);
};

/// s = a - b, two's complement (carry chain with inverted b, carry-in 1).
class Subtractor : public Cell {
 public:
  Subtractor(Node* parent, Wire* a, Wire* b, Wire* s);
};

}  // namespace jhdl::modgen
