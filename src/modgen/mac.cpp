#include "modgen/mac.h"

#include "hdl/error.h"
#include "modgen/adder.h"
#include "modgen/kcm.h"
#include "modgen/register.h"
#include "modgen/wires.h"
#include "util/strings.h"

namespace jhdl::modgen {

std::size_t MacUnit::acc_width(std::size_t input_width, int constant,
                               std::size_t extra_bits) {
  return input_width + VirtexKCMMultiplier::width_of_constant(constant) +
         extra_bits;
}

MacUnit::MacUnit(Node* parent, Wire* x, Wire* acc, Wire* clr, int constant,
                 std::size_t extra_bits)
    : Cell(parent, format("mac_%zu", x->width())), constant_(constant) {
  const std::size_t aw = acc_width(x->width(), constant, extra_bits);
  if (acc->width() != aw) {
    throw HdlError(format("MAC accumulator must be %zu bits, got %zu", aw,
                          acc->width()));
  }
  if (clr == nullptr || clr->width() != 1) {
    throw HdlError("MAC clear must be a 1-bit wire: " + full_name());
  }
  set_type_name(format("mac_%zux%lld", x->width(),
                       static_cast<long long>(constant)));
  port_in("x", x);
  port_in("clr", clr);
  port_out("acc", acc);

  // Product (full precision, signed).
  const std::size_t pw =
      x->width() + VirtexKCMMultiplier::width_of_constant(constant);
  Wire* product = new Wire(this, pw);
  new VirtexKCMMultiplier(this, x, product, /*signed_mode=*/true,
                          /*pipelined_mode=*/false, constant);

  // acc + product, truncated back to the accumulator width (wrap-around
  // semantics; the guard bits delay overflow).
  Wire* sum = new Wire(this, aw + 1);
  new CarryChainAdder(this, sign_extend(this, acc, aw + 1),
                      sign_extend(this, product, aw + 1), sum);
  Wire* next = sum->range(aw - 1, 0);

  // Registered accumulator with synchronous clear.
  new RegisterBank(this, next, acc, /*ce=*/nullptr, clr);
}

}  // namespace jhdl::modgen
