// VirtexKCMMultiplier: the paper's flagship IP - an optimized constant
// coefficient multiplier for Virtex built from partial-product lookup
// tables (Wirthlin & McMurtrey, FPL 2001 [9]).
//
// Algorithm: the multiplicand is split into 4-bit digits; each digit
// indexes a 16-entry LUT ROM holding constant*digit; the shifted partial
// products are summed with a carry-chain adder tree. Signed mode treats
// the multiplicand's top digit as two's complement; negative constants are
// handled by signed partial products. Pipelined mode inserts a register
// after the ROMs and after every adder-tree level.
//
// The constructor signature mirrors the paper (Section 3.1):
//
//   public VirtexKCMMultiplier(Node parent, Wire multiplicand, Wire product,
//                              boolean signed_mode, boolean pipelined_mode,
//                              int constant);
//
// As in the paper, the product wire may be narrower than the full product;
// the generator then delivers the TOP `product->width()` bits (e.g. an
// 8x8 multiply with a 12-bit product wire yields the top 12 of 16 bits).
#pragma once

#include <cstdint>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// Optimized constant-coefficient multiplier (see file comment).
class VirtexKCMMultiplier : public Cell {
 public:
  /// Throws HdlError if product is wider than the full product
  /// (multiplicand width + constant width).
  VirtexKCMMultiplier(Node* parent, Wire* multiplicand, Wire* product,
                      bool signed_mode, bool pipelined_mode, int constant);

  /// Pipeline latency in cycles (0 when not pipelined).
  std::size_t latency() const { return latency_; }
  /// The constant baked into the partial-product tables.
  std::int64_t constant() const { return constant_; }
  /// Bits used to represent the constant (two's complement if negative).
  std::size_t constant_width() const { return constant_width_; }
  /// Width of the untruncated product (multiplicand + constant widths).
  std::size_t full_width() const { return full_width_; }
  bool is_signed() const { return signed_; }
  bool is_pipelined() const { return pipelined_; }

  /// Reference model: the value the hardware must produce for input `m`
  /// (interpreted per signed mode), including the top-bits truncation.
  std::uint64_t expected_product(std::uint64_t m_raw) const;

  /// Minimal two's-complement width of a constant.
  static std::size_t width_of_constant(std::int64_t c);

 private:
  std::int64_t constant_;
  std::size_t constant_width_;
  std::size_t multiplicand_width_;
  std::size_t product_width_;
  std::size_t full_width_;
  bool signed_;
  bool pipelined_;
  std::size_t latency_ = 0;
};

}  // namespace jhdl::modgen
