// Hamming(7,4) ECC module generators: encoder and single-error-correcting
// decoder - the error-protection IP block of communication workloads.
//
// Code layout (LSB first): c = {d0,d1,d2,d3,p0,p1,p2} with
//   p0 = d0^d1^d3, p1 = d0^d2^d3, p2 = d1^d2^d3.
// The decoder recomputes the parities, forms the syndrome, corrects the
// indicated bit, and reports whether a correction happened.
#pragma once

#include <cstdint>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// 4-bit data in, 7-bit codeword out.
class HammingEncoder : public Cell {
 public:
  HammingEncoder(Node* parent, Wire* data, Wire* code);

  /// Software reference.
  static std::uint32_t encode(std::uint32_t data4);
};

/// 7-bit (possibly corrupted) codeword in; corrected 4-bit data out plus
/// a corrected-flag.
class HammingDecoder : public Cell {
 public:
  HammingDecoder(Node* parent, Wire* code, Wire* data, Wire* corrected);

  /// Software reference: returns corrected data; sets *corrected.
  static std::uint32_t decode(std::uint32_t code7, bool* corrected);
};

}  // namespace jhdl::modgen
