#include "modgen/shifter.h"

#include "hdl/error.h"
#include "modgen/wires.h"
#include "tech/gates.h"
#include "util/strings.h"

namespace jhdl::modgen {

BarrelShifter::BarrelShifter(Node* parent, Wire* in, Wire* amount, Wire* out,
                             Direction direction)
    : Cell(parent, format("bshift%zu", in->width())) {
  const std::size_t n = in->width();
  if (out->width() != n) {
    throw HdlError("barrel shifter width mismatch in " + full_name());
  }
  if (amount->width() == 0) {
    throw HdlError("barrel shifter needs a shift amount: " + full_name());
  }
  set_type_name(format("bshift%zu_%s", n,
                       direction == Direction::Left ? "l" : "r"));
  port_in("in", in);
  port_in("amount", amount);
  port_out("out", out);

  Wire* zero = constant_wire(this, 1, 0);
  Wire* stage = in;
  for (std::size_t layer = 0; layer < amount->width(); ++layer) {
    const std::size_t dist = std::size_t{1} << layer;
    Wire* sel = amount->gw(layer);
    const bool last = (layer + 1 == amount->width());
    Wire* next = last ? out : new Wire(this, n);
    for (std::size_t i = 0; i < n; ++i) {
      // Shifted source for this output bit, zero when out of range.
      Wire* shifted;
      if (direction == Direction::Left) {
        shifted = (i >= dist) ? stage->gw(i - dist) : zero;
      } else {
        shifted = (i + dist < n) ? stage->gw(i + dist) : zero;
      }
      new tech::Mux2(this, stage->gw(i), shifted, sel, next->gw(i));
    }
    stage = next;
  }
}

}  // namespace jhdl::modgen
