#include "modgen/counter.h"

#include <vector>

#include "hdl/error.h"
#include "modgen/adder.h"
#include "modgen/register.h"
#include "modgen/wires.h"
#include "tech/gates.h"

namespace jhdl::modgen {

Counter::Counter(Node* parent, Wire* q, Wire* ce, Wire* clr)
    : Cell(parent, "count" + std::to_string(q->width())) {
  set_type_name("count" + std::to_string(q->width()));
  port_out("q", q);
  if (ce != nullptr) port_in("ce", ce);
  if (clr != nullptr) port_in("clr", clr);

  Wire* next = new Wire(this, q->width());
  Wire* one = constant_wire(this, q->width(), 1);
  new CarryChainAdder(this, q, one, next);
  new RegisterBank(this, next, q, ce, clr);
}

EqComparator::EqComparator(Node* parent, Wire* a, Wire* b, Wire* eq)
    : Cell(parent, "eq" + std::to_string(a->width())) {
  if (a->width() != b->width() || eq->width() != 1) {
    throw HdlError("comparator width mismatch in " + full_name());
  }
  set_type_name("eq" + std::to_string(a->width()));
  port_in("a", a);
  port_in("b", b);
  port_out("eq", eq);

  // Per-bit XNOR, then an AND reduction tree (4-ary to match LUT4s).
  std::vector<Wire*> terms;
  for (std::size_t i = 0; i < a->width(); ++i) {
    Wire* x = new Wire(this, 1);
    Wire* nx = new Wire(this, 1);
    new tech::Xor2(this, a->gw(i), b->gw(i), x);
    new tech::Inv(this, x, nx);
    terms.push_back(nx);
  }
  while (terms.size() > 1) {
    std::vector<Wire*> next_terms;
    std::size_t i = 0;
    while (i < terms.size()) {
      std::size_t take = std::min<std::size_t>(4, terms.size() - i);
      if (take == 1) {
        next_terms.push_back(terms[i]);
        ++i;
        continue;
      }
      Wire* o = new Wire(this, 1);
      switch (take) {
        case 2:
          new tech::And2(this, terms[i], terms[i + 1], o);
          break;
        case 3:
          new tech::And3(this, terms[i], terms[i + 1], terms[i + 2], o);
          break;
        default:
          new tech::And4(this, terms[i], terms[i + 1], terms[i + 2],
                         terms[i + 3], o);
          break;
      }
      next_terms.push_back(o);
      i += take;
    }
    terms = std::move(next_terms);
  }
  new tech::Buf(this, terms[0], eq);
}

ConstComparator::ConstComparator(Node* parent, Wire* a, std::uint64_t constant,
                                 Wire* eq)
    : Cell(parent, "eqc" + std::to_string(a->width())) {
  if (eq->width() != 1) {
    throw HdlError("comparator output must be 1 bit in " + full_name());
  }
  set_type_name("eqc" + std::to_string(a->width()));
  port_in("a", a);
  port_out("eq", eq);

  Wire* cref = constant_wire(this, a->width(), constant);
  new EqComparator(this, a, cref, eq);
}

}  // namespace jhdl::modgen
