#include "modgen/mult.h"

#include <vector>

#include "hdl/error.h"
#include "modgen/adder.h"
#include "modgen/register.h"
#include "modgen/wires.h"
#include "tech/constants.h"
#include "tech/gates.h"
#include "util/strings.h"

namespace jhdl::modgen {

ArrayMultiplier::ArrayMultiplier(Node* parent, Wire* a, Wire* b, Wire* p,
                                 bool pipelined)
    : Cell(parent, format("mult_%zux%zu", a->width(), b->width())) {
  set_type_name(format("mult_%zux%zu%s", a->width(), b->width(),
                       pipelined ? "_p" : ""));
  port_in("a", a);
  port_in("b", b);
  port_out("p", p);
  if (p->width() != a->width() + b->width()) {
    throw HdlError(
        format("array multiplier product must be %zu bits, got %zu",
               a->width() + b->width(), p->width()));
  }

  const std::size_t na = a->width();
  const std::size_t nb = b->width();

  // Row 0: a AND b[0], aligned at product bit 0.
  Wire* acc = new Wire(this, na);
  for (std::size_t j = 0; j < na; ++j) {
    new tech::And2(this, a->gw(j), b->gw(0), acc->gw(j));
  }

  // Each subsequent row retires one low product bit and adds the shifted
  // row into the running accumulator. The sum needs one growth bit: the
  // accumulator's upper part (<= na bits) plus a fresh na-bit row fits in
  // na+1 bits.
  std::vector<Wire*> done;  // retired low product bits, LSB first
  for (std::size_t i = 1; i < nb; ++i) {
    Wire* row = new Wire(this, na);
    for (std::size_t j = 0; j < na; ++j) {
      new tech::And2(this, a->gw(j), b->gw(i), row->gw(j));
    }
    done.push_back(acc->gw(0));
    // Shifted accumulator; a 1-bit accumulator has no upper part.
    Wire* acc_hi = acc->width() > 1 ? acc->range(acc->width() - 1, 1)
                                    : constant_wire(this, 1, 0);
    const std::size_t w = na + 1;
    Wire* sum = new Wire(this, w);
    new CarryChainAdder(this, zero_extend(this, acc_hi, w),
                        zero_extend(this, row, w), sum);
    acc = sum;
    if (pipelined) {
      // Register the accumulator (systolic row pipeline; operands are held
      // constant while the array computes).
      Wire* q = new Wire(this, w);
      new RegisterBank(this, acc, q);
      acc = q;
      ++latency_;
    }
  }

  // Assemble the product: retired bits, then the final accumulator, then
  // zero-fill (only reachable when b is a single bit wide).
  for (std::size_t i = 0; i < done.size(); ++i) {
    new tech::Buf(this, done[i], p->gw(i));
  }
  for (std::size_t j = 0; j < acc->width(); ++j) {
    new tech::Buf(this, acc->gw(j), p->gw(done.size() + j));
  }
  const std::size_t covered = done.size() + acc->width();
  if (covered < p->width()) {
    Wire* zero = constant_wire(this, 1, 0);
    for (std::size_t k = covered; k < p->width(); ++k) {
      new tech::Buf(this, zero, p->gw(k));
    }
  }
}

}  // namespace jhdl::modgen
