#include "modgen/dds.h"

#include <cmath>

#include "hdl/error.h"
#include "modgen/adder.h"
#include "modgen/register.h"
#include "modgen/wires.h"
#include "tech/bram.h"
#include "tech/constants.h"
#include "util/strings.h"

namespace jhdl::modgen {

std::vector<std::uint8_t> DdsGenerator::sine_table() {
  std::vector<std::uint8_t> table(512);
  for (std::size_t i = 0; i < 512; ++i) {
    double angle = 2.0 * 3.14159265358979323846 * static_cast<double>(i) / 512.0;
    double s = std::sin(angle);
    // Offset binary: 0 -> 0x80, full scale +/-127.
    table[i] = static_cast<std::uint8_t>(
        std::lround(128.0 + 127.0 * s) & 0xFF);
  }
  return table;
}

DdsGenerator::DdsGenerator(Node* parent, Wire* out, std::size_t phase_width,
                           std::uint32_t tuning, Wire* ce)
    : Cell(parent, format("dds%zu", phase_width)),
      phase_width_(phase_width),
      tuning_(tuning) {
  if (out->width() != 8) {
    throw HdlError("DDS output must be 8 bits: " + full_name());
  }
  if (phase_width < 9 || phase_width > 32) {
    throw HdlError("DDS phase width must be 9..32: " + full_name());
  }
  if (tuning == 0 ||
      (phase_width < 32 && tuning >= (std::uint32_t{1} << phase_width))) {
    throw HdlError("DDS tuning word out of range: " + full_name());
  }
  set_type_name(format("dds%zu_t%u", phase_width, tuning));
  port_out("out", out);
  if (ce != nullptr) port_in("ce", ce);

  // Phase accumulator.
  Wire* phase = new Wire(this, phase_width, "phase");
  Wire* next = new Wire(this, phase_width);
  Wire* inc = constant_wire(this, phase_width, tuning);
  new CarryChainAdder(this, phase, inc, next);
  new RegisterBank(this, next, phase, ce);

  // BRAM sine lookup on the top 9 phase bits.
  Wire* addr = phase->range(phase_width - 1, phase_width - 9);
  Wire* din = constant_wire(this, 8, 0);
  Wire* we = constant_wire(this, 1, 0);
  Wire* en = ce != nullptr ? ce : constant_wire(this, 1, 1);
  new tech::RamB4S8(this, addr, din, we, en, out, sine_table());
}

std::uint8_t DdsGenerator::expected_output(std::uint64_t cycles) const {
  // At clock edge k the BRAM samples the phase value after edge k-1,
  // which is (k-1)*tuning (phase powers on at 0).
  const std::uint64_t mask = phase_width_ >= 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << phase_width_) - 1;
  std::uint64_t phase = ((cycles - 1) * tuning_) & mask;
  return sine_table()[phase >> (phase_width_ - 9)];
}

}  // namespace jhdl::modgen
