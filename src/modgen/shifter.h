// Barrel shifter module generator: logarithmic mux stages, one layer per
// shift-amount bit.
#pragma once

#include "hdl/cell.h"

namespace jhdl::modgen {

/// out = in << amount (Left) or in >> amount (RightLogical), with zero
/// fill. amount must be ceil(log2(width)) bits or wider; shift amounts
/// >= width produce zero.
class BarrelShifter : public Cell {
 public:
  enum class Direction { Left, RightLogical };

  BarrelShifter(Node* parent, Wire* in, Wire* amount, Wire* out,
                Direction direction);
};

}  // namespace jhdl::modgen
