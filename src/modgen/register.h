// Register bank and shift register module generators.
#pragma once

#include "hdl/cell.h"

namespace jhdl::modgen {

/// q <= d each cycle; optional clock enable and clear apply to every bit.
class RegisterBank : public Cell {
 public:
  RegisterBank(Node* parent, Wire* d, Wire* q, Wire* ce = nullptr,
               Wire* clr = nullptr);
};

/// `depth`-stage single-bit-or-bus shift register: out is in delayed by
/// `depth` cycles. Two implementation styles:
///   FF    - a chain of flip-flops (1 FF per bit per stage)
///   SRL16 - shift register LUTs with a static tap (1 LUT per bit per 16
///           stages), the classic Virtex area optimization
class ShiftRegister : public Cell {
 public:
  enum class Style { FF, SRL16 };

  ShiftRegister(Node* parent, Wire* in, Wire* out, std::size_t depth,
                Style style = Style::FF);
};

}  // namespace jhdl::modgen
