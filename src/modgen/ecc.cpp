#include "modgen/ecc.h"

#include "hdl/error.h"
#include "tech/gates.h"
#include "tech/lut.h"

namespace jhdl::modgen {

std::uint32_t HammingEncoder::encode(std::uint32_t d) {
  d &= 0xF;
  std::uint32_t d0 = d & 1, d1 = (d >> 1) & 1, d2 = (d >> 2) & 1,
                d3 = (d >> 3) & 1;
  std::uint32_t p0 = d0 ^ d1 ^ d3;
  std::uint32_t p1 = d0 ^ d2 ^ d3;
  std::uint32_t p2 = d1 ^ d2 ^ d3;
  return d | (p0 << 4) | (p1 << 5) | (p2 << 6);
}

HammingEncoder::HammingEncoder(Node* parent, Wire* data, Wire* code)
    : Cell(parent, "hamenc") {
  if (data->width() != 4 || code->width() != 7) {
    throw HdlError("Hamming encoder needs 4-bit data, 7-bit code");
  }
  set_type_name("hamming74_enc");
  port_in("data", data);
  port_out("code", code);

  for (std::size_t i = 0; i < 4; ++i) {
    new tech::Buf(this, data->gw(i), code->gw(i));
  }
  new tech::Xor3(this, data->gw(0), data->gw(1), data->gw(3), code->gw(4));
  new tech::Xor3(this, data->gw(0), data->gw(2), data->gw(3), code->gw(5));
  new tech::Xor3(this, data->gw(1), data->gw(2), data->gw(3), code->gw(6));
}

std::uint32_t HammingDecoder::decode(std::uint32_t c, bool* corrected) {
  c &= 0x7F;
  std::uint32_t d0 = c & 1, d1 = (c >> 1) & 1, d2 = (c >> 2) & 1,
                d3 = (c >> 3) & 1;
  std::uint32_t s0 = ((c >> 4) & 1) ^ d0 ^ d1 ^ d3;
  std::uint32_t s1 = ((c >> 5) & 1) ^ d0 ^ d2 ^ d3;
  std::uint32_t s2 = ((c >> 6) & 1) ^ d1 ^ d2 ^ d3;
  std::uint32_t syndrome = s0 | (s1 << 1) | (s2 << 2);
  if (corrected != nullptr) *corrected = syndrome != 0;
  // Syndrome = standard Hamming position (parities at 1,2,4).
  switch (syndrome) {
    case 3:
      d0 ^= 1;
      break;
    case 5:
      d1 ^= 1;
      break;
    case 6:
      d2 ^= 1;
      break;
    case 7:
      d3 ^= 1;
      break;
    default:
      break;  // parity-bit error or clean word: data unaffected
  }
  return d0 | (d1 << 1) | (d2 << 2) | (d3 << 3);
}

HammingDecoder::HammingDecoder(Node* parent, Wire* code, Wire* data,
                               Wire* corrected)
    : Cell(parent, "hamdec") {
  if (code->width() != 7 || data->width() != 4 || corrected->width() != 1) {
    throw HdlError(
        "Hamming decoder needs 7-bit code, 4-bit data, 1-bit flag");
  }
  set_type_name("hamming74_dec");
  port_in("code", code);
  port_out("data", data);
  port_out("corrected", corrected);

  // Recomputed parity vs received parity -> syndrome bits.
  Wire* syndrome = new Wire(this, 3, "syndrome");
  auto parity = [&](std::size_t a, std::size_t b, std::size_t c,
                    std::size_t p, Wire* s) {
    Wire* recomputed = new Wire(this, 1);
    new tech::Xor3(this, code->gw(a), code->gw(b), code->gw(c), recomputed);
    new tech::Xor2(this, recomputed, code->gw(p), s);
  };
  parity(0, 1, 3, 4, syndrome->gw(0));
  parity(0, 2, 3, 5, syndrome->gw(1));
  parity(1, 2, 3, 6, syndrome->gw(2));

  // Per data bit: flip when the syndrome names its position.
  // Positions: d0=3, d1=5, d2=6, d3=7 -> LUT3 one-hot INIT masks.
  const std::uint16_t flip_init[4] = {0x08, 0x20, 0x40, 0x80};
  for (std::size_t i = 0; i < 4; ++i) {
    Wire* flip = new Wire(this, 1);
    new tech::Lut3(this, syndrome->gw(0), syndrome->gw(1), syndrome->gw(2),
                   flip, flip_init[i]);
    new tech::Xor2(this, code->gw(i), flip, data->gw(i));
  }

  // corrected = syndrome != 0.
  new tech::Or3(this, syndrome->gw(0), syndrome->gw(1), syndrome->gw(2),
                corrected);
}

}  // namespace jhdl::modgen
