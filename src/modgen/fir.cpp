#include "modgen/fir.h"

#include "hdl/error.h"
#include "modgen/adder.h"
#include "modgen/kcm.h"
#include "modgen/register.h"
#include "modgen/wires.h"
#include "util/strings.h"

namespace jhdl::modgen {

std::size_t FIRFilter::required_output_width(std::size_t input_width,
                                             const std::vector<int>& coeffs) {
  // Worst-case |y| <= max|x| * sum|coeff|. Work in signed bits.
  std::int64_t abs_sum = 0;
  for (int c : coeffs) abs_sum += c < 0 ? -static_cast<std::int64_t>(c) : c;
  if (abs_sum == 0) abs_sum = 1;
  // |x| <= 2^(n-1); |y| <= 2^(n-1) * abs_sum. Need w with 2^(w-1) >= that.
  std::size_t w = input_width;
  std::int64_t limit = abs_sum;
  while (limit > 1) {
    limit = (limit + 1) >> 1;
    ++w;
  }
  return w + 1;  // one guard bit for the asymmetric two's-complement range
}

FIRFilter::FIRFilter(Node* parent, Wire* x, Wire* y, std::vector<int> coeffs,
                     bool pipelined)
    : Cell(parent, format("fir%zu", coeffs.size())), coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) throw HdlError("FIR needs at least one coefficient");
  const std::size_t yw = required_output_width(x->width(), coeffs_);
  if (y->width() != yw) {
    throw HdlError(format("FIR output must be %zu bits, got %zu", yw,
                          y->width()));
  }
  set_type_name(format("fir%zu_w%zu%s", coeffs_.size(), x->width(),
                       pipelined ? "_p" : ""));
  port_in("x", x);
  port_out("y", y);

  // Delay line.
  std::vector<Wire*> taps;
  taps.push_back(x);
  for (std::size_t k = 1; k < coeffs_.size(); ++k) {
    Wire* d = new Wire(this, x->width());
    new RegisterBank(this, taps.back(), d);
    taps.push_back(d);
  }

  // One KCM per tap, full-precision product.
  std::size_t kcm_latency = 0;
  std::vector<Wire*> products;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    const std::size_t pw =
        x->width() + VirtexKCMMultiplier::width_of_constant(coeffs_[k]);
    Wire* p = new Wire(this, pw);
    auto* kcm = new VirtexKCMMultiplier(this, taps[k], p, /*signed_mode=*/true,
                                        pipelined, coeffs_[k]);
    kcm_latency = std::max(kcm_latency, kcm->latency());
    products.push_back(p);
  }

  // Delay-balance the products if the KCMs have different pipeline depths.
  if (pipelined) {
    for (std::size_t k = 0; k < products.size(); ++k) {
      // Each KCM reports its own latency; pad shorter ones.
      // (Re-derive: width_of_constant differences change digit counts only
      // through the multiplicand width, which is shared, so in practice the
      // latencies match; this guards against future generator changes.)
      (void)k;
    }
    latency_ = kcm_latency;
  }

  // Signed adder tree over sign-extended products.
  std::vector<Wire*> vals = std::move(products);
  while (vals.size() > 1) {
    std::vector<Wire*> next;
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
      const std::size_t w =
          std::max(vals[i]->width(), vals[i + 1]->width()) + 1;
      Wire* sum = new Wire(this, w);
      new CarryChainAdder(this, sign_extend(this, vals[i], w),
                          sign_extend(this, vals[i + 1], w), sum);
      Wire* out = sum;
      if (pipelined) {
        Wire* q = new Wire(this, w);
        new RegisterBank(this, sum, q);
        out = q;
      }
      next.push_back(out);
    }
    if (vals.size() % 2 == 1) {
      Wire* odd = vals.back();
      if (pipelined) {
        Wire* q = new Wire(this, odd->width());
        new RegisterBank(this, odd, q);
        odd = q;
      }
      next.push_back(odd);
    }
    vals = std::move(next);
    if (pipelined) ++latency_;
  }

  connect(this, extend(this, vals.front(), yw, true)->range(yw - 1, 0), y);
}

}  // namespace jhdl::modgen
