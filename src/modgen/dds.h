// Direct digital synthesizer (DDS) module generator: a phase accumulator
// sweeping a block-RAM sine table - the "more complicated IP" class the
// paper's future work targets (Section 5), and a natural consumer of the
// RAMB4 primitive.
//
//   phase <= phase + tuning            (pw-bit accumulator)
//   out   <= sine_table[phase >> (pw-9)]  (synchronous BRAM read)
//
// The output frequency is f_clk * tuning / 2^pw. The sample is an 8-bit
// offset-binary sine (0x80 = zero crossing).
#pragma once

#include <cstdint>
#include <vector>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// Sine-table DDS with a BRAM-backed waveform store.
class DdsGenerator : public Cell {
 public:
  /// `out` must be 8 bits; `phase_width` in [9, 32]; `tuning` is the
  /// phase increment per cycle (nonzero, < 2^phase_width).
  DdsGenerator(Node* parent, Wire* out, std::size_t phase_width,
               std::uint32_t tuning, Wire* ce = nullptr);

  std::size_t phase_width() const { return phase_width_; }
  std::uint32_t tuning() const { return tuning_; }

  /// The 512-entry sine table baked into the BRAM.
  static std::vector<std::uint8_t> sine_table();

  /// Software reference: output after `cycles` clocks (accounting for the
  /// synchronous-read latency; X before the first clock).
  std::uint8_t expected_output(std::uint64_t cycles) const;

 private:
  std::size_t phase_width_;
  std::uint32_t tuning_;
};

}  // namespace jhdl::modgen
