// FIR filter module generator - the kind of signal-processing IP the
// paper's introduction motivates. Built entirely from delivered KCM
// multiplier IP plus registers and carry-chain adders:
//
//   y[t] = sum_k coeff[k] * x[t - k]
//
// Each tap is a VirtexKCMMultiplier on a delayed copy of x; products are
// summed in a signed adder tree. The output is full precision:
// required_output_width() bits.
#pragma once

#include <cstdint>
#include <vector>

#include "hdl/cell.h"

namespace jhdl::modgen {

/// Direct-form FIR filter over signed inputs and integer coefficients.
class FIRFilter : public Cell {
 public:
  /// `x` is the signed input sample; `y` must be exactly
  /// required_output_width(x->width(), coeffs) bits. Pipelined mode
  /// pipelines each KCM and each adder level.
  FIRFilter(Node* parent, Wire* x, Wire* y, std::vector<int> coeffs,
            bool pipelined);

  /// Cycles from x[t] entering to its full contribution appearing on y.
  std::size_t latency() const { return latency_; }
  const std::vector<int>& coeffs() const { return coeffs_; }

  /// Bits needed for the worst-case accumulated product.
  static std::size_t required_output_width(std::size_t input_width,
                                           const std::vector<int>& coeffs);

 private:
  std::vector<int> coeffs_;
  std::size_t latency_ = 0;
};

}  // namespace jhdl::modgen
