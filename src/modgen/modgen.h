// Umbrella header for the module generator library - the parameterizable
// IP the paper's delivery applets serve (Section 3).
#pragma once

#include "modgen/adder.h"
#include "modgen/counter.h"
#include "modgen/dds.h"
#include "modgen/ecc.h"
#include "modgen/encode.h"
#include "modgen/fir.h"
#include "modgen/kcm.h"
#include "modgen/lfsr.h"
#include "modgen/mac.h"
#include "modgen/mult.h"
#include "modgen/register.h"
#include "modgen/shifter.h"
#include "modgen/wires.h"
