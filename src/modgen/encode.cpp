#include "modgen/encode.h"

#include <vector>

#include "hdl/error.h"
#include "modgen/counter.h"
#include "modgen/wires.h"
#include "tech/gates.h"
#include "util/strings.h"

namespace jhdl::modgen {
namespace {

std::size_t bits_for(std::size_t max_value) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) <= max_value) ++bits;
  return bits;
}

/// OR-reduce a list of 1-bit wires into `out` with 4-ary gates.
void or_reduce(Cell* parent, std::vector<Wire*> terms, Wire* out) {
  if (terms.empty()) {
    Wire* zero = constant_wire(parent, 1, 0);
    new tech::Buf(parent, zero, out);
    return;
  }
  while (terms.size() > 1) {
    std::vector<Wire*> next;
    std::size_t i = 0;
    while (i < terms.size()) {
      std::size_t take = std::min<std::size_t>(4, terms.size() - i);
      if (take == 1) {
        next.push_back(terms[i]);
        ++i;
        continue;
      }
      Wire* o = new Wire(parent, 1);
      switch (take) {
        case 2:
          new tech::Or2(parent, terms[i], terms[i + 1], o);
          break;
        case 3:
          new tech::Or3(parent, terms[i], terms[i + 1], terms[i + 2], o);
          break;
        default:
          new tech::Or4(parent, terms[i], terms[i + 1], terms[i + 2],
                        terms[i + 3], o);
          break;
      }
      next.push_back(o);
      i += take;
    }
    terms = std::move(next);
  }
  new tech::Buf(parent, terms[0], out);
}

}  // namespace

PriorityEncoder::PriorityEncoder(Node* parent, Wire* in, Wire* idx,
                                 Wire* valid)
    : Cell(parent, format("prienc%zu", in->width())) {
  const std::size_t n = in->width();
  const std::size_t need = bits_for(n - 1);
  if (idx->width() < need || valid->width() != 1) {
    throw HdlError(format(
        "priority encoder: idx needs >= %zu bits, valid 1 bit", need));
  }
  set_type_name(format("prienc%zu", n));
  port_in("in", in);
  port_out("idx", idx);
  port_out("valid", valid);

  // win[i] = in[i] & ~in[i+1] & ... & ~in[n-1]  (highest set bit wins).
  // Build suffix "any higher set" chain: hi[i] = OR(in[i+1..n-1]).
  std::vector<Wire*> win(n);
  Wire* any_higher = nullptr;  // OR of bits above current
  for (std::size_t i = n; i-- > 0;) {
    if (any_higher == nullptr) {
      win[i] = in->gw(i);  // top bit wins whenever set
    } else {
      Wire* not_higher = new Wire(this, 1);
      new tech::Inv(this, any_higher, not_higher);
      Wire* w = new Wire(this, 1);
      new tech::And2(this, in->gw(i), not_higher, w);
      win[i] = w;
    }
    if (i > 0) {
      if (any_higher == nullptr) {
        any_higher = in->gw(i);
      } else {
        Wire* next = new Wire(this, 1);
        new tech::Or2(this, any_higher, in->gw(i), next);
        any_higher = next;
      }
    }
  }

  // idx bit b = OR of win[i] for i with bit b set.
  for (std::size_t b = 0; b < idx->width(); ++b) {
    std::vector<Wire*> terms;
    for (std::size_t i = 0; i < n; ++i) {
      if ((i >> b) & 1) terms.push_back(win[i]);
    }
    or_reduce(this, std::move(terms), idx->gw(b));
  }

  // valid = OR of all inputs.
  std::vector<Wire*> all;
  for (std::size_t i = 0; i < n; ++i) all.push_back(in->gw(i));
  or_reduce(this, std::move(all), valid);
}

OneHotDecoder::OneHotDecoder(Node* parent, Wire* in, Wire* out, Wire* en)
    : Cell(parent, format("decode%zu", in->width())) {
  const std::size_t n = in->width();
  if (out->width() != (std::size_t{1} << n)) {
    throw HdlError(format("one-hot decoder: out must be %zu bits",
                          std::size_t{1} << n));
  }
  set_type_name(format("decode%zu", n));
  port_in("in", in);
  port_out("out", out);
  if (en != nullptr) port_in("en", en);

  // Complemented inputs, shared across outputs.
  std::vector<Wire*> ninv(n);
  for (std::size_t i = 0; i < n; ++i) {
    ninv[i] = new Wire(this, 1);
    new tech::Inv(this, in->gw(i), ninv[i]);
  }
  for (std::size_t v = 0; v < out->width(); ++v) {
    std::vector<Wire*> terms;
    for (std::size_t i = 0; i < n; ++i) {
      terms.push_back(((v >> i) & 1) ? in->gw(i) : ninv[i]);
    }
    if (en != nullptr) terms.push_back(en);
    // AND-reduce via inverted or_reduce would need De Morgan; do a small
    // AND tree directly.
    while (terms.size() > 1) {
      std::vector<Wire*> next;
      std::size_t i = 0;
      while (i < terms.size()) {
        std::size_t take = std::min<std::size_t>(4, terms.size() - i);
        if (take == 1) {
          next.push_back(terms[i]);
          ++i;
          continue;
        }
        Wire* o = new Wire(this, 1);
        switch (take) {
          case 2:
            new tech::And2(this, terms[i], terms[i + 1], o);
            break;
          case 3:
            new tech::And3(this, terms[i], terms[i + 1], terms[i + 2], o);
            break;
          default:
            new tech::And4(this, terms[i], terms[i + 1], terms[i + 2],
                           terms[i + 3], o);
            break;
        }
        next.push_back(o);
        i += take;
      }
      terms = std::move(next);
    }
    new tech::Buf(this, terms[0], out->gw(v));
  }
}

BinaryToGray::BinaryToGray(Node* parent, Wire* b, Wire* g)
    : Cell(parent, format("bin2gray%zu", b->width())) {
  const std::size_t n = b->width();
  if (g->width() != n) throw HdlError("bin2gray width mismatch");
  set_type_name(format("bin2gray%zu", n));
  port_in("b", b);
  port_out("g", g);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    new tech::Xor2(this, b->gw(i), b->gw(i + 1), g->gw(i));
  }
  new tech::Buf(this, b->gw(n - 1), g->gw(n - 1));
}

GrayToBinary::GrayToBinary(Node* parent, Wire* g, Wire* b)
    : Cell(parent, format("gray2bin%zu", g->width())) {
  const std::size_t n = g->width();
  if (b->width() != n) throw HdlError("gray2bin width mismatch");
  set_type_name(format("gray2bin%zu", n));
  port_in("g", g);
  port_out("b", b);
  // b[n-1] = g[n-1]; b[i] = g[i] ^ b[i+1] (prefix XOR from the top).
  new tech::Buf(this, g->gw(n - 1), b->gw(n - 1));
  for (std::size_t i = n - 1; i-- > 0;) {
    new tech::Xor2(this, g->gw(i), b->gw(i + 1), b->gw(i));
  }
}

GrayCounter::GrayCounter(Node* parent, Wire* q, Wire* ce)
    : Cell(parent, format("graycnt%zu", q->width())) {
  set_type_name(format("graycnt%zu", q->width()));
  port_out("q", q);
  if (ce != nullptr) port_in("ce", ce);
  // Binary counter core, Gray-converted output.
  Wire* bin = new Wire(this, q->width());
  new Counter(this, bin, ce);
  new BinaryToGray(this, bin, q);
}

}  // namespace jhdl::modgen
