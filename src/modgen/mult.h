// Generic (non-constant) multiplier baseline: an unsigned array multiplier
// built from AND-gate partial products and carry-chain adders. This is the
// comparison point for the KCM benchmarks - a constant coefficient folds
// the AND rows into LUT ROMs, which is exactly the optimization the
// paper's module generator exploits.
#pragma once

#include "hdl/cell.h"

namespace jhdl::modgen {

/// p = a * b (unsigned). p must be exactly a.width + b.width bits.
/// Pipelined mode registers after every row accumulation.
class ArrayMultiplier : public Cell {
 public:
  ArrayMultiplier(Node* parent, Wire* a, Wire* b, Wire* p,
                  bool pipelined = false);

  std::size_t latency() const { return latency_; }

 private:
  std::size_t latency_ = 0;
};

}  // namespace jhdl::modgen
