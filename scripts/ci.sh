#!/usr/bin/env bash
# CI pipeline: plain build with the full test suite plus the simulation
# kernel and observability smoke benchmarks (parity-checked, throughput
# gates off), then ASan and TSan builds running the protocol-robustness
# battery (everything labelled `net-fault`: net_test, server_test,
# fuzz_test, fault_test), the compiled-kernel battery (`sim-kernel`:
# unit tests + differential random-circuit parity), the parallel-kernel
# battery (`sim-parallel`: island-threaded + 64-lane multi-pattern
# kernels, thread-count determinism and the PatternBatch protocol path -
# the TSan run is what proves the island cut is race-free), the
# observability
# battery (`obs`: lock-free metrics/trace-ring hammers + trace
# propagation end-to-end), the artifact-pipeline battery
# (`artifact`: single-flight store races + cross-consumer determinism),
# the extraction-defense battery (`attack`: cone-extractor oracle
# loop, query-auditor detectors and the audited delivery service), and
# the corpus battery (`corpus`: interpreter/compiled/golden-model
# differential parity over the VTR-class generator corpus).
#
# Usage: scripts/ci.sh [--fast]
#   --fast  skip the sanitizer builds (plain build + full suite only)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure

echo "== simulation kernel smoke bench (bit-exactness check) =="
cmake --build build -j "${JOBS}" --target bench_sim_kernel
(cd build/bench && ./bench_sim_kernel --smoke)

echo "== observability overhead smoke bench (bit-exactness check) =="
cmake --build build -j "${JOBS}" --target bench_obs_overhead
(cd build/bench && ./bench_obs_overhead --smoke)

echo "== artifact store smoke bench (cold/warm determinism check) =="
cmake --build build -j "${JOBS}" --target bench_artifact_store
(cd build/bench && ./bench_artifact_store --smoke)

echo "== extraction harness smoke bench (auditor + workload gates) =="
cmake --build build -j "${JOBS}" --target bench_attack
(cd build/bench && ./bench_attack --smoke)

echo "== corpus sweep smoke bench (elaborate + sim + warm-hit gates) =="
cmake --build build -j "${JOBS}" --target bench_corpus
(cd build/bench && ./bench_corpus --smoke)

if [[ "${1:-}" == "--fast" ]]; then
  echo "CI OK (fast: sanitizers skipped)"
  exit 0
fi

for SAN in address thread; do
  echo "== ${SAN} sanitizer: net-fault + sim-kernel + sim-parallel + obs + artifact + attack + corpus batteries =="
  cmake -B "build-${SAN}" -S . -DJHDL_SANITIZE="${SAN}" >/dev/null
  cmake --build "build-${SAN}" -j "${JOBS}"
  ctest --test-dir "build-${SAN}" \
    -L 'net-fault|sim-kernel|sim-parallel|obs|artifact|attack|corpus' \
    --output-on-failure
done

echo "CI OK"
