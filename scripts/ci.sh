#!/usr/bin/env bash
# CI pipeline: plain build with the full test suite plus the simulation
# kernel smoke benchmark (parity-checked, throughput gate off), then ASan
# and TSan builds running the protocol-robustness battery (everything
# labelled `net-fault`: net_test, server_test, fuzz_test, fault_test)
# and the compiled-kernel battery (`sim-kernel`: unit tests +
# differential random-circuit parity).
#
# Usage: scripts/ci.sh [--fast]
#   --fast  skip the sanitizer builds (plain build + full suite only)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure

echo "== simulation kernel smoke bench (bit-exactness check) =="
cmake --build build -j "${JOBS}" --target bench_sim_kernel
(cd build/bench && ./bench_sim_kernel --smoke)

if [[ "${1:-}" == "--fast" ]]; then
  echo "CI OK (fast: sanitizers skipped)"
  exit 0
fi

for SAN in address thread; do
  echo "== ${SAN} sanitizer: net-fault + sim-kernel batteries =="
  cmake -B "build-${SAN}" -S . -DJHDL_SANITIZE="${SAN}" >/dev/null
  cmake --build "build-${SAN}" -j "${JOBS}"
  ctest --test-dir "build-${SAN}" -L 'net-fault|sim-kernel' --output-on-failure
done

echo "CI OK"
