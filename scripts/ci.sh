#!/usr/bin/env bash
# CI pipeline: plain build with the full test suite plus the simulation
# kernel and observability smoke benchmarks (parity-checked, throughput
# gates off), then ASan and TSan builds running the protocol-robustness
# battery (everything labelled `net-fault`: net_test, fuzz_test,
# fault_test), the server battery (`server`: the DeliveryService
# protocol/lifecycle contract), the reactor battery (`reactor`: poller,
# timer wheel, frame assembler, fair scheduler, admission control and
# the in-loop admin plane — the TSan run is what proves the
# loop/worker/completion seam is race-free), the compiled-kernel
# battery (`sim-kernel`:
# unit tests + differential random-circuit parity), the parallel-kernel
# battery (`sim-parallel`: island-threaded + 64-lane multi-pattern
# kernels, thread-count determinism and the PatternBatch protocol path -
# the TSan run is what proves the island cut is race-free), the
# observability
# battery (`obs`: lock-free metrics/trace-ring hammers + trace
# propagation end-to-end), the artifact-pipeline battery
# (`artifact`: single-flight store races + cross-consumer determinism),
# the extraction-defense battery (`attack`: cone-extractor oracle
# loop, query-auditor detectors and the audited delivery service), the
# corpus battery (`corpus`: interpreter/compiled/golden-model
# differential parity over the VTR-class generator corpus), and the
# operations-plane battery (`ops`: structured log rings + flight
# recorder, the SLO burn-rate engine, the admin HTTP endpoint and the
# concurrent-exposition hammer — the TSan run is what proves the
# lock-free log/exposition claims). A scrape smoke step also boots the
# delivery_service example and curls its live /metrics and /healthz,
# and a churn smoke step storms the reactor with 256 concurrent
# loopback clients (asserting /healthz 200 mid-storm and zero malformed
# frames / rejections / leaked sessions afterwards).
#
# Usage: scripts/ci.sh [--fast]
#   --fast  skip the sanitizer builds (plain build + full suite only)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure

echo "== simulation kernel smoke bench (bit-exactness check) =="
cmake --build build -j "${JOBS}" --target bench_sim_kernel
(cd build/bench && ./bench_sim_kernel --smoke)

echo "== observability overhead smoke bench (bit-exactness check) =="
cmake --build build -j "${JOBS}" --target bench_obs_overhead
(cd build/bench && ./bench_obs_overhead --smoke)

echo "== artifact store smoke bench (cold/warm determinism check) =="
cmake --build build -j "${JOBS}" --target bench_artifact_store
(cd build/bench && ./bench_artifact_store --smoke)

echo "== extraction harness smoke bench (auditor + workload gates) =="
cmake --build build -j "${JOBS}" --target bench_attack
(cd build/bench && ./bench_attack --smoke)

echo "== corpus sweep smoke bench (elaborate + sim + warm-hit gates) =="
cmake --build build -j "${JOBS}" --target bench_corpus
(cd build/bench && ./bench_corpus --smoke)

echo "== reactor churn smoke (256 concurrent clients + live /healthz) =="
cmake --build build -j "${JOBS}" --target bench_delivery_concurrency
(cd build/bench && ./bench_delivery_concurrency --churn 256)

echo "== admin HTTP scrape smoke (live /metrics + /healthz) =="
cmake --build build -j "${JOBS}" --target delivery_service
SCRAPE_LOG="$(mktemp)"
./build/examples/delivery_service --hold 8000 >"${SCRAPE_LOG}" 2>&1 &
SCRAPE_PID=$!
trap 'kill "${SCRAPE_PID}" 2>/dev/null || true' EXIT
ADMIN_PORT=""
for _ in $(seq 1 100); do
  ADMIN_PORT="$(sed -n 's/^admin http port \([0-9]*\).*/\1/p' "${SCRAPE_LOG}")"
  [[ -n "${ADMIN_PORT}" ]] && break
  sleep 0.1
done
[[ -n "${ADMIN_PORT}" ]] || { echo "FAIL: no admin port announced"; cat "${SCRAPE_LOG}"; exit 1; }
# The per-tenant acceptance shape: a labeled family line on the scrape.
# Poll — the demo traffic that creates the tenant series is still running
# when the port is announced.
SCRAPE_OK=""
for _ in $(seq 1 60); do
  if curl -fsS "http://127.0.0.1:${ADMIN_PORT}/metrics" 2>/dev/null \
      | grep 'req_count{customer='; then
    SCRAPE_OK=1
    break
  fi
  sleep 0.2
done
[[ -n "${SCRAPE_OK}" ]] || { echo "FAIL: no per-tenant family on /metrics"; exit 1; }
curl -fsS "http://127.0.0.1:${ADMIN_PORT}/healthz"
wait "${SCRAPE_PID}"
trap - EXIT
rm -f "${SCRAPE_LOG}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "CI OK (fast: sanitizers skipped)"
  exit 0
fi

for SAN in address thread; do
  echo "== ${SAN} sanitizer: net-fault + server + reactor + sim-kernel + sim-parallel + obs + artifact + attack + corpus + ops batteries =="
  cmake -B "build-${SAN}" -S . -DJHDL_SANITIZE="${SAN}" >/dev/null
  cmake --build "build-${SAN}" -j "${JOBS}"
  ctest --test-dir "build-${SAN}" \
    -L 'net-fault|server|reactor|sim-kernel|sim-parallel|obs|artifact|attack|corpus|ops' \
    --output-on-failure
done

echo "CI OK"
