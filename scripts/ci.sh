#!/usr/bin/env bash
# CI pipeline: plain build with the full test suite, then ASan and TSan
# builds running the protocol-robustness battery (everything labelled
# `net-fault`: net_test, server_test, fuzz_test, fault_test).
#
# Usage: scripts/ci.sh [--fast]
#   --fast  skip the sanitizer builds (plain build + full suite only)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure

if [[ "${1:-}" == "--fast" ]]; then
  echo "CI OK (fast: sanitizers skipped)"
  exit 0
fi

for SAN in address thread; do
  echo "== ${SAN} sanitizer: net-fault battery =="
  cmake -B "build-${SAN}" -S . -DJHDL_SANITIZE="${SAN}" >/dev/null
  cmake --build "build-${SAN}" -j "${JOBS}"
  ctest --test-dir "build-${SAN}" -L net-fault --output-on-failure
done

echo "CI OK"
