// Tests for the module generators: adders, registers, counters,
// comparators, the KCM constant multiplier (exhaustive and randomized
// property sweeps across parameters), the generic array multiplier, and
// the FIR filter.
#include <gtest/gtest.h>

#include <tuple>

#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "modgen/modgen.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using modgen::ArrayMultiplier;
using modgen::CarryChainAdder;
using modgen::ConstComparator;
using modgen::Counter;
using modgen::EqComparator;
using modgen::FIRFilter;
using modgen::RegisterBank;
using modgen::RippleAdder;
using modgen::ShiftRegister;
using modgen::Subtractor;
using modgen::VirtexKCMMultiplier;

std::uint64_t mask(std::size_t w) {
  return w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
}

// ---------------------------------------------------------------- adders

class AdderWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidthTest, CarryChainAdderRandomized) {
  const std::size_t w = GetParam();
  HWSystem hw;
  Wire* a = new Wire(&hw, w, "a");
  Wire* b = new Wire(&hw, w, "b");
  Wire* s = new Wire(&hw, w, "s");
  Wire* cin = new Wire(&hw, 1, "cin");
  Wire* cout = new Wire(&hw, 1, "cout");
  new CarryChainAdder(&hw, a, b, s, cin, cout);
  Simulator sim(hw);
  Rng rng(w * 7919);
  for (int iter = 0; iter < 200; ++iter) {
    std::uint64_t x = rng.next() & mask(w);
    std::uint64_t y = rng.next() & mask(w);
    std::uint64_t c = rng.next() & 1;
    sim.put(a, x);
    sim.put(b, y);
    sim.put(cin, c);
    unsigned __int128 full =
        static_cast<unsigned __int128>(x) + y + c;
    EXPECT_EQ(sim.get(s).to_uint(),
              static_cast<std::uint64_t>(full) & mask(w));
    EXPECT_EQ(sim.get(cout).to_uint(),
              static_cast<std::uint64_t>(full >> w) & 1);
  }
}

TEST_P(AdderWidthTest, RippleAdderMatchesCarryChain) {
  const std::size_t w = GetParam();
  HWSystem hw;
  Wire* a = new Wire(&hw, w, "a");
  Wire* b = new Wire(&hw, w, "b");
  Wire* s1 = new Wire(&hw, w, "s1");
  Wire* s2 = new Wire(&hw, w, "s2");
  new CarryChainAdder(&hw, a, b, s1);
  new RippleAdder(&hw, a, b, s2);
  Simulator sim(hw);
  Rng rng(w);
  for (int iter = 0; iter < 100; ++iter) {
    sim.put(a, rng.next() & mask(w));
    sim.put(b, rng.next() & mask(w));
    EXPECT_EQ(sim.get(s1).to_uint(), sim.get(s2).to_uint());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 13, 16, 24, 32));

TEST(AdderTest, WidthMismatchThrows) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 4, "a");
  Wire* b = new Wire(&hw, 5, "b");
  Wire* s = new Wire(&hw, 4, "s");
  EXPECT_THROW(new CarryChainAdder(&hw, a, b, s), HdlError);
}

TEST(SubtractorTest, Exhaustive4Bit) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 4, "a");
  Wire* b = new Wire(&hw, 4, "b");
  Wire* s = new Wire(&hw, 4, "s");
  new Subtractor(&hw, a, b, s);
  Simulator sim(hw);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      sim.put(a, x);
      sim.put(b, y);
      EXPECT_EQ(sim.get(s).to_uint(), (x - y) & 0xF);
    }
  }
}

// ------------------------------------------------------------- registers

TEST(RegisterTest, BankDelaysOneCycle) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 8, "d");
  Wire* q = new Wire(&hw, 8, "q");
  new RegisterBank(&hw, d, q);
  Simulator sim(hw);
  sim.put(d, 0xAB);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 0xABu);
  sim.put(d, 0x12);
  EXPECT_EQ(sim.get(q).to_uint(), 0xABu);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 0x12u);
}

TEST(RegisterTest, EnableHolds) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 4, "d");
  Wire* q = new Wire(&hw, 4, "q");
  Wire* ce = new Wire(&hw, 1, "ce");
  new RegisterBank(&hw, d, q, ce);
  Simulator sim(hw);
  sim.put(d, 7);
  sim.put(ce, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 7u);
  sim.put(d, 3);
  sim.put(ce, 0);
  sim.cycle(5);
  EXPECT_EQ(sim.get(q).to_uint(), 7u);
}

TEST(ShiftRegisterTest, DepthNDelaysN) {
  for (std::size_t depth : {1u, 2u, 5u, 9u}) {
    HWSystem hw;
    Wire* in = new Wire(&hw, 4, "in");
    Wire* out = new Wire(&hw, 4, "out");
    new ShiftRegister(&hw, in, out, depth);
    Simulator sim(hw);
    // Feed a recognizable sequence.
    // Value (t+1) is driven before cycle t+1; after k cycles the output
    // shows the value driven before cycle k-depth+1, i.e. k-depth+1.
    for (std::size_t t = 0; t < depth + 4; ++t) {
      sim.put(in, (t + 1) & 0xF);
      sim.cycle();
      if (t + 1 >= depth) {
        EXPECT_EQ(sim.get(out).to_uint(), (t + 2 - depth) & 0xF)
            << "depth=" << depth << " t=" << t;
      }
    }
  }
}

// --------------------------------------------------------------- counter

TEST(CounterTest, CountsAndWraps) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 3, "q");
  new Counter(&hw, q);
  Simulator sim(hw);
  for (std::uint64_t t = 1; t <= 20; ++t) {
    sim.cycle();
    EXPECT_EQ(sim.get(q).to_uint(), t & 0x7);
  }
}

TEST(CounterTest, EnableAndClear) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 4, "q");
  Wire* ce = new Wire(&hw, 1, "ce");
  Wire* clr = new Wire(&hw, 1, "clr");
  new Counter(&hw, q, ce, clr);
  Simulator sim(hw);
  sim.put(ce, 1);
  sim.put(clr, 0);
  sim.cycle(5);
  EXPECT_EQ(sim.get(q).to_uint(), 5u);
  sim.put(ce, 0);
  sim.cycle(3);
  EXPECT_EQ(sim.get(q).to_uint(), 5u);
  sim.put(clr, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 0u);
}

// ------------------------------------------------------------ comparators

TEST(ComparatorTest, EqExhaustive) {
  for (std::size_t w : {1u, 2u, 4u, 5u}) {
    HWSystem hw;
    Wire* a = new Wire(&hw, w, "a");
    Wire* b = new Wire(&hw, w, "b");
    Wire* eq = new Wire(&hw, 1, "eq");
    new EqComparator(&hw, a, b, eq);
    Simulator sim(hw);
    const std::uint64_t n = std::uint64_t{1} << w;
    for (std::uint64_t x = 0; x < n; ++x) {
      for (std::uint64_t y = 0; y < n; ++y) {
        sim.put(a, x);
        sim.put(b, y);
        EXPECT_EQ(sim.get(eq).to_uint(), x == y ? 1u : 0u)
            << "w=" << w << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST(ComparatorTest, ConstComparator) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 8, "a");
  Wire* eq = new Wire(&hw, 1, "eq");
  new ConstComparator(&hw, a, 0x5C, eq);
  Simulator sim(hw);
  for (std::uint64_t x = 0; x < 256; ++x) {
    sim.put(a, x);
    EXPECT_EQ(sim.get(eq).to_uint(), x == 0x5C ? 1u : 0u);
  }
}

// ------------------------------------------------------------------- KCM

TEST(KcmTest, ConstantWidths) {
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(0), 1u);
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(1), 1u);
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(2), 2u);
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(255), 8u);
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(-1), 1u);
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(-56), 7u);
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(-64), 7u);
  EXPECT_EQ(VirtexKCMMultiplier::width_of_constant(-65), 8u);
}

// The paper's running example: 8-bit input, constant -56, signed,
// pipelined, 12-bit (truncated) product.
TEST(KcmTest, PaperExample) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 12, "p");
  auto* kcm = new VirtexKCMMultiplier(&hw, m, p, /*signed_mode=*/true,
                                      /*pipelined_mode=*/true, -56);
  EXPECT_EQ(kcm->full_width(), 15u);  // 8 + 7
  EXPECT_GT(kcm->latency(), 0u);
  Simulator sim(hw);
  for (std::int64_t x = -128; x < 128; ++x) {
    sim.put_signed(m, x);
    sim.cycle(kcm->latency());
    EXPECT_EQ(sim.get(p).to_uint(),
              kcm->expected_product(static_cast<std::uint64_t>(x)))
        << "x=" << x;
  }
}

struct KcmParam {
  std::size_t width;
  int constant;
  bool sign;
  bool pipe;
};

class KcmSweepTest : public ::testing::TestWithParam<KcmParam> {};

TEST_P(KcmSweepTest, MatchesReference) {
  const KcmParam prm = GetParam();
  HWSystem hw;
  Wire* m = new Wire(&hw, prm.width, "m");
  const std::size_t full =
      prm.width + VirtexKCMMultiplier::width_of_constant(prm.constant);
  Wire* p = new Wire(&hw, full, "p");
  auto* kcm =
      new VirtexKCMMultiplier(&hw, m, p, prm.sign, prm.pipe, prm.constant);
  Simulator sim(hw);
  const std::uint64_t n = std::uint64_t{1} << std::min<std::size_t>(prm.width, 10);
  Rng rng(1234);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t x = prm.width <= 10 ? i : (rng.next() & mask(prm.width));
    sim.put(m, x);
    if (kcm->latency() > 0) {
      sim.cycle(kcm->latency());
    }
    EXPECT_EQ(sim.get(p).to_uint(), kcm->expected_product(x))
        << "w=" << prm.width << " c=" << prm.constant << " s=" << prm.sign
        << " p=" << prm.pipe << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KcmSweepTest,
    ::testing::Values(
        KcmParam{4, 5, false, false}, KcmParam{4, 5, true, false},
        KcmParam{3, 7, false, false}, KcmParam{5, -3, true, false},
        KcmParam{8, 100, false, false}, KcmParam{8, -56, true, false},
        KcmParam{8, -56, true, true}, KcmParam{8, 255, false, true},
        KcmParam{9, 73, true, false}, KcmParam{12, -2048, true, true},
        KcmParam{16, 12345, false, false}, KcmParam{16, -9876, true, true},
        KcmParam{24, 999983, true, true}, KcmParam{32, -777777, true, false},
        KcmParam{8, 0, false, false}, KcmParam{8, 0, true, true},
        KcmParam{8, 1, true, false}, KcmParam{8, -1, true, false},
        KcmParam{1, 3, false, false}, KcmParam{2, -2, true, true}));

TEST(KcmTest, TruncatedProductWidths) {
  // 8x8 unsigned with product widths from 1 to full.
  for (std::size_t pw = 1; pw <= 16; ++pw) {
    HWSystem hw;
    Wire* m = new Wire(&hw, 8, "m");
    Wire* p = new Wire(&hw, pw, "p");
    auto* kcm = new VirtexKCMMultiplier(&hw, m, p, false, false, 255);
    Simulator sim(hw);
    Rng rng(pw);
    for (int iter = 0; iter < 64; ++iter) {
      std::uint64_t x = rng.next() & 0xFF;
      sim.put(m, x);
      EXPECT_EQ(sim.get(p).to_uint(), kcm->expected_product(x))
          << "pw=" << pw << " x=" << x;
    }
  }
}

TEST(KcmTest, ProductTooWideThrows) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 17, "p");
  EXPECT_THROW(new VirtexKCMMultiplier(&hw, m, p, false, false, 255),
               HdlError);
}

TEST(KcmTest, PipelineLatencyThroughput) {
  // A pipelined KCM accepts a new input every cycle; check a streamed
  // sequence arrives shifted by the latency.
  HWSystem hw;
  Wire* m = new Wire(&hw, 16, "m");
  Wire* p = new Wire(&hw, 30, "p");
  auto* kcm = new VirtexKCMMultiplier(&hw, m, p, false, true, 12345);
  Simulator sim(hw);
  const std::size_t lat = kcm->latency();
  ASSERT_GT(lat, 1u);
  std::vector<std::uint64_t> inputs;
  Rng rng(99);
  for (int t = 0; t < 50; ++t) {
    inputs.push_back(rng.next() & 0xFFFF);
  }
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    sim.put(m, inputs[t]);
    sim.cycle();
    if (t + 1 > lat) {
      EXPECT_EQ(sim.get(p).to_uint(),
                kcm->expected_product(inputs[t + 1 - lat]))
          << "t=" << t;
    }
  }
}

// ------------------------------------------------------- array multiplier

class MultTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MultTest, MatchesReference) {
  auto [na, nb] = GetParam();
  HWSystem hw;
  Wire* a = new Wire(&hw, na, "a");
  Wire* b = new Wire(&hw, nb, "b");
  Wire* p = new Wire(&hw, na + nb, "p");
  new ArrayMultiplier(&hw, a, b, p);
  Simulator sim(hw);
  Rng rng(na * 131 + nb);
  const bool exhaustive = na + nb <= 12;
  const std::uint64_t xs = exhaustive ? (std::uint64_t{1} << na) : 64;
  const std::uint64_t ys = exhaustive ? (std::uint64_t{1} << nb) : 64;
  for (std::uint64_t i = 0; i < xs; ++i) {
    for (std::uint64_t j = 0; j < ys; ++j) {
      std::uint64_t x = exhaustive ? i : (rng.next() & mask(na));
      std::uint64_t y = exhaustive ? j : (rng.next() & mask(nb));
      sim.put(a, x);
      sim.put(b, y);
      EXPECT_EQ(sim.get(p).to_uint(), x * y)
          << na << "x" << nb << ": " << x << "*" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MultTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{4, 1},
                                           std::pair<std::size_t, std::size_t>{1, 4},
                                           std::pair<std::size_t, std::size_t>{4, 4},
                                           std::pair<std::size_t, std::size_t>{6, 6},
                                           std::pair<std::size_t, std::size_t>{8, 8},
                                           std::pair<std::size_t, std::size_t>{12, 12},
                                           std::pair<std::size_t, std::size_t>{16, 16}));

TEST(MultTest, PipelinedStream) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 8, "a");
  Wire* b = new Wire(&hw, 8, "b");
  Wire* p = new Wire(&hw, 16, "p");
  auto* mult = new ArrayMultiplier(&hw, a, b, p, /*pipelined=*/true);
  Simulator sim(hw);
  // Operands held constant while the pipeline drains (systolic model).
  sim.put(a, 123);
  sim.put(b, 231);
  sim.cycle(mult->latency());
  EXPECT_EQ(sim.get(p).to_uint(), 123u * 231u);
}

// -------------------------------------------------------------------- FIR

TEST(FirTest, ImpulseResponseIsCoefficients) {
  const std::vector<int> coeffs = {3, -5, 7, 11};
  HWSystem hw;
  Wire* x = new Wire(&hw, 8, "x");
  const std::size_t yw = FIRFilter::required_output_width(8, coeffs);
  Wire* y = new Wire(&hw, yw, "y");
  auto* fir = new FIRFilter(&hw, x, y, coeffs, /*pipelined=*/false);
  EXPECT_EQ(fir->latency(), 0u);
  Simulator sim(hw);
  // Drive an impulse: x = 1 for one cycle, then 0.
  sim.put_signed(x, 1);
  EXPECT_EQ(sim.get(y).to_int(), 3);
  sim.cycle();
  sim.put_signed(x, 0);
  EXPECT_EQ(sim.get(y).to_int(), -5);
  sim.cycle();
  EXPECT_EQ(sim.get(y).to_int(), 7);
  sim.cycle();
  EXPECT_EQ(sim.get(y).to_int(), 11);
  sim.cycle();
  EXPECT_EQ(sim.get(y).to_int(), 0);
}

TEST(FirTest, RandomSequenceMatchesReference) {
  const std::vector<int> coeffs = {-7, 13, 0, 25, -1};
  HWSystem hw;
  Wire* x = new Wire(&hw, 10, "x");
  const std::size_t yw = FIRFilter::required_output_width(10, coeffs);
  Wire* y = new Wire(&hw, yw, "y");
  new FIRFilter(&hw, x, y, coeffs, /*pipelined=*/false);
  Simulator sim(hw);
  Rng rng(5);
  std::vector<std::int64_t> history;
  for (int t = 0; t < 100; ++t) {
    std::int64_t xt = rng.range(-512, 511);
    history.push_back(xt);
    sim.put_signed(x, xt);
    std::int64_t want = 0;
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      if (history.size() > k) {
        want += coeffs[k] * history[history.size() - 1 - k];
      }
    }
    EXPECT_EQ(sim.get(y).to_int(), want) << "t=" << t;
    sim.cycle();
  }
}

TEST(FirTest, PipelinedMatchesUnpipelined) {
  const std::vector<int> coeffs = {4, -9, 2};
  HWSystem hw;
  Wire* x = new Wire(&hw, 8, "x");
  const std::size_t yw = FIRFilter::required_output_width(8, coeffs);
  Wire* y1 = new Wire(&hw, yw, "y1");
  Wire* y2 = new Wire(&hw, yw, "y2");
  new FIRFilter(&hw, x, y1, coeffs, false);
  auto* fp = new FIRFilter(&hw, x, y2, coeffs, true);
  ASSERT_GT(fp->latency(), 0u);
  Simulator sim(hw);
  Rng rng(17);
  std::vector<std::int64_t> unpiped;
  for (int t = 0; t < 60; ++t) {
    sim.put_signed(x, rng.range(-128, 127));
    unpiped.push_back(sim.get(y1).to_int());
    sim.cycle();
    if (static_cast<std::size_t>(t) + 1 > fp->latency()) {
      EXPECT_EQ(sim.get(y2).to_int(), unpiped[t + 1 - fp->latency()])
          << "t=" << t;
    }
  }
}

TEST(FirTest, OutputWidthValidation) {
  HWSystem hw;
  Wire* x = new Wire(&hw, 8, "x");
  Wire* y = new Wire(&hw, 4, "y");
  EXPECT_THROW(new FIRFilter(&hw, x, y, {1, 2, 3}, false), HdlError);
  EXPECT_THROW(new FIRFilter(&hw, x, y, {}, false), HdlError);
}

}  // namespace
}  // namespace jhdl
