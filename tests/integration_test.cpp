// Cross-module integration scenarios and X-propagation property sweeps:
// end-to-end flows that touch several subsystems at once, and checks that
// unknown values behave pessimistically-but-not-infectiously through the
// primitive library.
#include <gtest/gtest.h>

#include "core/applet.h"
#include "core/catalog.h"
#include "core/generators.h"
#include "core/secure.h"
#include "core/shell.h"
#include "hdl/hwsystem.h"
#include "modgen/modgen.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "netlist/edif_import.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "tech/virtex.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using namespace jhdl::core;

// ---------------------------------------------------------- integration

// Vendor -> customer -> tool-flow round trip: applet netlists the IP,
// the customer re-imports the EDIF and co-simulates the imported copy
// against a black-box served over a socket. Three delivery forms of the
// same instance must agree bit-for-bit.
TEST(IntegrationTest, NetlistImportVsBlackBoxVsApplet) {
  auto gen = std::make_shared<KcmGenerator>();
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{8})
                        .set("constant", std::int64_t{-77})
                        .set("signed_mode", true);
  Applet applet = AppletBuilder()
                      .generator(gen)
                      .license(LicensePolicy::make("x", LicenseTier::Licensed))
                      .build_applet();
  applet.build(params);

  // Form 1: EDIF -> import.
  std::string edif = applet.netlist(NetlistFormat::Edif);
  netlist::ImportedCircuit imported = netlist::import_edif(edif);
  Simulator import_sim(*imported.system);

  // Form 2: black box over a socket.
  net::SimServer server(applet.make_black_box());
  net::SimClient remote(server.start());

  Rng rng(88);
  for (int t = 0; t < 40; ++t) {
    std::int64_t x = rng.range(-128, 127);
    // Applet's own simulator.
    applet.sim_put_signed("multiplicand", x);
    std::uint64_t v_applet = applet.sim_get("product").to_uint();
    // Imported netlist.
    import_sim.put_signed(imported.ports["multiplicand"], x);
    std::uint64_t v_import =
        import_sim.get(imported.ports["product"]).to_uint();
    // Remote black box.
    std::map<std::string, BitVector> in;
    in["multiplicand"] = BitVector::from_int(8, x);
    std::uint64_t v_remote = remote.eval(in, 0).at("product").to_uint();

    EXPECT_EQ(v_applet, v_import) << "x=" << x;
    EXPECT_EQ(v_applet, v_remote) << "x=" << x;
  }
  remote.bye();
}

// Sealed multi-IP delivery: every archive of a bundle survives the
// vendor->customer secure channel, and the unpacked payload carries the
// generator schema the shell needs.
TEST(IntegrationTest, SealedBundleCarriesSchemas) {
  IpCatalog catalog;
  catalog.add(std::make_shared<KcmGenerator>());
  catalog.add(std::make_shared<DdsIpGenerator>());
  Packager packager;
  SecureChannel channel("bundle-license");
  std::uint64_t nonce = 1;
  for (const auto& gen : catalog.entries()) {
    Archive a = packager.applet_archive(*gen);
    Archive back = channel.open_archive(channel.seal_archive(a, nonce++));
    bool has_schema = false;
    for (const ArchiveEntry& e : back.entries()) {
      has_schema |= (e.name == "schema.txt");
    }
    EXPECT_TRUE(has_schema) << gen->name();
  }
}

// The shell drives a FIR IP through an entire filter design session.
TEST(IntegrationTest, ShellDrivesFirSession) {
  Applet applet = AppletBuilder()
                      .generator(std::make_shared<FirGenerator>())
                      .license(LicensePolicy::make("x", LicenseTier::Licensed))
                      .build_applet();
  AppletShell shell(applet);
  std::string out = shell.run_script(
      "build c0=1 c1=2 c2=2 c3=1 input_width=8\n"
      "put x 10\n"
      "get y\n"   // 1*10
      "cycle\n"
      "put x 0\n"
      "get y\n"); // 2*10
  EXPECT_NE(out.find("signed 10)"), std::string::npos) << out;
  EXPECT_NE(out.find("signed 20)"), std::string::npos) << out;
}

// ------------------------------------------------------- X-propagation

TEST(XPropTest, GatesAreOnlyAsPessimisticAsNeeded) {
  HWSystem hw;
  Wire* x = new Wire(&hw, 1, "x");  // stays undriven -> X
  Wire* zero = new Wire(&hw, 1, "zero");
  Wire* one = new Wire(&hw, 1, "one");
  Wire* and_out = new Wire(&hw, 1, "and_out");
  Wire* or_out = new Wire(&hw, 1, "or_out");
  Wire* xor_out = new Wire(&hw, 1, "xor_out");
  new tech::And2(&hw, x, zero, and_out);
  new tech::Or2(&hw, x, one, or_out);
  new tech::Xor2(&hw, x, zero, xor_out);
  Simulator sim(hw);
  sim.put(zero, 0);
  sim.put(one, 1);
  // Dominating inputs defeat the X...
  EXPECT_EQ(sim.get(and_out).to_uint(), 0u);
  EXPECT_EQ(sim.get(or_out).to_uint(), 1u);
  // ...but XOR cannot.
  EXPECT_FALSE(sim.get(xor_out).is_fully_defined());
}

TEST(XPropTest, LutHalvesAgreeDespiteUnknownSelect) {
  HWSystem hw;
  Wire* sel = new Wire(&hw, 1, "sel");  // undriven
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o1 = new Wire(&hw, 1, "o1");
  Wire* o2 = new Wire(&hw, 1, "o2");
  // LUT2 0xC: out = i1 -> i0 is a don't-care; X on i0 must not leak.
  new tech::Lut2(&hw, sel, a, o1, 0xC);
  // LUT2 0x8: out = i0 & i1 -> X on i0 with i1=1 is unknown.
  new tech::Lut2(&hw, sel, a, o2, 0x8);
  Simulator sim(hw);
  sim.put(a, 1);
  EXPECT_EQ(sim.get(o1).to_uint(), 1u) << "don't-care input must not X out";
  EXPECT_FALSE(sim.get(o2).is_fully_defined());
  sim.put(a, 0);
  EXPECT_EQ(sim.get(o2).to_uint(), 0u) << "0 & X = 0";
}

TEST(XPropTest, KcmRecoversAfterUndrivenPhase) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 16, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 201);
  Simulator sim(hw);
  EXPECT_FALSE(sim.get(p).is_fully_defined());
  sim.put(m, 17);
  EXPECT_EQ(sim.get(p).to_uint(), kcm->expected_product(17));
  // Partial X: drive only the low nibble -> the low partial product is
  // defined but the sum is not.
  HWSystem hw2;
  Wire* m2 = new Wire(&hw2, 8, "m2");
  Wire* p2 = new Wire(&hw2, 16, "p2");
  new modgen::VirtexKCMMultiplier(&hw2, m2, p2, false, false, 201);
  Simulator sim2(hw2);
  Wire* low = m2->range(3, 0);
  sim2.put(low, 5);
  EXPECT_FALSE(sim2.get(p2).is_fully_defined());
}

TEST(XPropTest, FlipFlopCapturesX) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");  // undriven
  Wire* q = new Wire(&hw, 1, "q");
  new tech::FD(&hw, d, q);
  Simulator sim(hw);
  EXPECT_EQ(sim.get(q).to_uint(), 0u) << "power-on value defined";
  sim.cycle();
  EXPECT_FALSE(sim.get(q).is_fully_defined()) << "X data captured";
  sim.put(d, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 1u) << "recovers once driven";
}

TEST(XPropTest, XSurvivesTheWireProtocol) {
  // An X produced by the IP must reach the remote co-simulation client
  // unchanged (the paper's black-box integration must not launder
  // unknowns into 0/1).
  KcmGenerator gen;
  ParamMap params =
      ParamMap().set("input_width", std::int64_t{8}).resolved(gen.params());
  net::SimServer server(
      std::make_unique<BlackBoxModel>(gen.build(params), gen.name()));
  net::SimClient client(server.start());
  BitVector half_defined(8, Logic4::X);
  for (std::size_t i = 0; i < 4; ++i) half_defined.set(i, Logic4::One);
  client.set_input("multiplicand", half_defined);
  BitVector out = client.get_output("product");
  EXPECT_FALSE(out.is_fully_defined());
  EXPECT_NE(out.to_string().find('x'), std::string::npos);
  client.bye();
}

}  // namespace
}  // namespace jhdl
