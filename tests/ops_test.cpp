// Tests for the per-tenant operations plane (PR 9): structured log rings
// and the flight recorder, the multi-window SLO burn-rate engine, the
// admin HTTP endpoint, and their integration with the DeliveryService —
// per-customer attribution in /metrics, /healthz flipping on an induced
// SLO burn, flight dumps on session park, and the concurrent-exposition
// hammer that runs under ASan/TSan via the `ops` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/generators.h"
#include "net/protocol.h"
#include "net/sim_client.h"
#include "net/socket.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "server/admin_http.h"
#include "server/delivery_service.h"
#include "util/json.h"

namespace jhdl {
namespace {

using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::obs;
using namespace jhdl::server;
using namespace std::chrono_literals;

IpCatalog make_catalog() {
  IpCatalog catalog;
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<KcmGenerator>());
  return catalog;
}

/// Spin until `pred` holds or ~2 s elapse.
bool eventually(const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// Minimal HTTP/1.0 GET against the admin plane: send the request, read
/// until the server closes (Connection: close), return the raw response.
std::string http_get(std::uint16_t port, const std::string& path) {
  TcpStream stream = TcpStream::connect(port);
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: l\r\n\r\n";
  stream.send_bytes(std::vector<std::uint8_t>(req.begin(), req.end()));
  stream.set_recv_timeout(2000);
  std::string out;
  std::uint8_t buf[4096];
  try {
    while (true) {
      const std::size_t n = stream.recv_raw(buf, sizeof buf);
      out.append(reinterpret_cast<const char*>(buf), n);
    }
  } catch (const NetError&) {
    // Orderly close ends the response.
  }
  return out;
}

/// Every line of a JSONL document must parse on its own.
std::vector<Json> parse_jsonl(const std::string& text) {
  std::vector<Json> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(Json::parse(line));
  }
  return lines;
}

// ---------------------------------------------------------------------
// Logger: leveled records, rings, JSONL
// ---------------------------------------------------------------------

TEST(LoggerTest, LevelFilterAndKeyValueCapture) {
  Logger log;
  log.set_level(LogLevel::Info);
  EXPECT_FALSE(log.enabled(LogLevel::Debug));
  log.log(LogLevel::Debug, "dropped.event");  // below level: no record
  log.log(LogLevel::Info, "session.open",
          {{"customer", "acme"}, {"module", "kcm"}}, 0xabcdu);
  log.log(LogLevel::Warn, "session.deny", {{"customer", "rogue"}});
  EXPECT_EQ(log.recorded(), 2u);

  const std::vector<LogRecord> records = log.snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Global seq merges rings in order.
  EXPECT_LT(records[0].seq, records[1].seq);
  EXPECT_STREQ(records[0].event, "session.open");
  EXPECT_EQ(records[0].level, LogLevel::Info);
  EXPECT_EQ(records[0].trace_id, 0xabcdu);

  const std::vector<Json> lines = parse_jsonl(log.to_jsonl());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].at("type").as_string(), "log");
  EXPECT_EQ(lines[0].at("level").as_string(), "info");
  EXPECT_EQ(lines[0].at("event").as_string(), "session.open");
  EXPECT_EQ(lines[0].at("fields").at("customer").as_string(), "acme");
  EXPECT_EQ(lines[0].at("fields").at("module").as_string(), "kcm");
  EXPECT_EQ(lines[0].at("trace").as_string(),
            TraceContext::hex(0xabcdu));
  EXPECT_EQ(lines[1].at("level").as_string(), "warn");
}

TEST(LoggerTest, RingRetainsOnlyLastCapacity) {
  Logger log(16);
  log.set_level(LogLevel::Debug);
  for (int i = 0; i < 50; ++i) {
    log.log(LogLevel::Info, "tick",
            {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(log.recorded(), 50u);
  const std::vector<LogRecord> records = log.snapshot();
  ASSERT_EQ(records.size(), 16u);
  // The retained window is the most recent records, in order.
  EXPECT_EQ(records.front().text, "i=34");
  EXPECT_EQ(records.back().text, "i=49");
}

TEST(LoggerTest, OversizedPayloadTruncatesNeverDrops) {
  Logger log;
  const std::string big(2 * Logger::kTextBytes, 'x');
  log.log(LogLevel::Warn, "big.event", {{"blob", big}});
  const std::vector<LogRecord> records = log.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].text.size(), Logger::kTextBytes);
  EXPECT_EQ(records[0].text.rfind("blob=", 0), 0u);
  // The truncated record still renders as valid JSON.
  EXPECT_NO_THROW(Json::parse(Logger::record_json(records[0]).dump()));
}

// TSan target: four writers race a snapshotting reader over the same
// logger. The assertions check conservation; the sanitizer checks the
// relaxed-atomic slot discipline.
TEST(LoggerTest, ConcurrentWritersAndSnapshots) {
  Logger log(256);
  log.set_level(LogLevel::Debug);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const LogRecord& r : log.snapshot()) {
        ASSERT_NE(r.event, nullptr);
      }
      (void)log.to_jsonl();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.log(LogLevel::Info, "hammer",
                {{"t", std::to_string(t)}, {"i", std::to_string(i)}});
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(log.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Each thread's ring holds its last `capacity` records.
  EXPECT_EQ(log.snapshot().size(), static_cast<std::size_t>(kThreads) * 256);
}

// ---------------------------------------------------------------------
// FlightRecorder: postmortem bundles
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, TriggerBundlesLogsMetricsAndSpans) {
  Logger log;
  MetricsRegistry metrics;
  metrics.counter("test.count").inc(5);
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(tracer, "test.span", 0x99u);
  }
  log.log(LogLevel::Warn, "bad.thing", {{"customer", "acme"}});

  FlightRecorder::Config cfg;
  cfg.keep = 2;
  FlightRecorder flight(log, metrics, &tracer, cfg);
  const std::string jsonl = flight.trigger("unit.test");

  const std::vector<Json> lines = parse_jsonl(jsonl);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("type").as_string(), "flight");
  EXPECT_EQ(lines[0].at("reason").as_string(), "unit.test");
  bool saw_log = false, saw_metrics = false, saw_span = false;
  for (const Json& line : lines) {
    const std::string& type = line.at("type").as_string();
    if (type == "log" && line.at("event").as_string() == "bad.thing") {
      saw_log = true;
    }
    if (type == "metrics") {
      saw_metrics = true;
      EXPECT_EQ(line.at("data").at("counters").at("test.count").as_int(), 5);
    }
    if (type == "span" && line.at("name").as_string() == "test.span") {
      saw_span = true;
    }
  }
  EXPECT_TRUE(saw_log);
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_span);
  // flight.dumps counts every trigger; retention is bounded by keep.
  flight.trigger("two");
  flight.trigger("three");
  EXPECT_EQ(flight.triggered(), 3u);
  EXPECT_EQ(metrics.counter("flight.dumps").value(), 3u);
  const std::vector<FlightRecorder::Dump> dumps = flight.dumps();
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(dumps[0].reason, "two");
  EXPECT_EQ(dumps[1].reason, "three");
  EXPECT_EQ(flight.latest(), dumps[1].jsonl);
}

// ---------------------------------------------------------------------
// SLO engine: burn rates over injected clocks
// ---------------------------------------------------------------------

constexpr std::uint64_t kBaseUs = 1'000'000'000'000ull;

TEST(SloEngineTest, MultiWindowBurnClassification) {
  SloEngine slo;
  slo.define({.name = "latency", .budget = 0.01});
  // 100% bad traffic at t0: burn 100x in both windows -> Critical.
  for (int i = 0; i < 50; ++i) {
    slo.record("latency", "acme", /*good=*/false, kBaseUs + i);
  }
  std::vector<SloEngine::Burn> burns = slo.evaluate(kBaseUs + 100);
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_EQ(burns[0].tenant, "acme");
  EXPECT_DOUBLE_EQ(burns[0].fast_burn, 100.0);
  EXPECT_DOUBLE_EQ(burns[0].slow_burn, 100.0);
  EXPECT_EQ(burns[0].health, SloHealth::Critical);
  EXPECT_EQ(slo.overall(kBaseUs + 100), SloHealth::Critical);

  // 7 minutes on: the fast (5 min) window has forgotten the burn, the
  // slow (1 h) window still remembers -> Warning (recovering).
  const std::uint64_t t7m = kBaseUs + 7ull * 60 * 1'000'000;
  burns = slo.evaluate(t7m);
  EXPECT_DOUBLE_EQ(burns[0].fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(burns[0].slow_burn, 100.0);
  EXPECT_EQ(burns[0].health, SloHealth::Warning);

  // 2 hours on: both windows clear -> Healthy.
  const std::uint64_t t2h = kBaseUs + 2ull * 3600 * 1'000'000;
  burns = slo.evaluate(t2h);
  EXPECT_EQ(burns[0].health, SloHealth::Healthy);
  EXPECT_EQ(slo.overall(t2h), SloHealth::Healthy);
}

TEST(SloEngineTest, WithinBudgetTrafficStaysHealthy) {
  SloEngine slo;
  slo.define({.name = "errors", .budget = 0.05});
  // 1% bad over 0.05 budget: burn 0.2, far under both thresholds.
  for (int i = 0; i < 100; ++i) {
    slo.record("errors", "acme", /*good=*/i != 0, kBaseUs + i);
  }
  const std::vector<SloEngine::Burn> burns = slo.evaluate(kBaseUs + 200);
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_NEAR(burns[0].fast_burn, 0.2, 1e-9);
  EXPECT_EQ(burns[0].health, SloHealth::Healthy);
  // Unknown objectives are ignored, not invented.
  slo.record("nonexistent", "acme", false, kBaseUs);
  EXPECT_EQ(slo.evaluate(kBaseUs + 200).size(), 1u);
}

TEST(SloEngineTest, TenantsBurnIndependentlyAndTailCollapses) {
  SloConfig cfg;
  cfg.max_tenants = 2;
  SloEngine slo(cfg);
  slo.define({.name = "latency", .budget = 0.01});
  for (int i = 0; i < 20; ++i) {
    slo.record("latency", "acme", /*good=*/false, kBaseUs + i);
    slo.record("latency", "globex", /*good=*/true, kBaseUs + i);
    // Past max_tenants, the long tail shares the overflow series.
    slo.record("latency", "tenant-" + std::to_string(i), false, kBaseUs + i);
  }
  const std::vector<SloEngine::Burn> burns = slo.evaluate(kBaseUs + 100);
  ASSERT_EQ(burns.size(), 3u);  // acme, globex, __other__
  bool saw_overflow = false;
  for (const SloEngine::Burn& b : burns) {
    if (b.tenant == "acme") {
      EXPECT_EQ(b.health, SloHealth::Critical);
    }
    if (b.tenant == "globex") {
      EXPECT_EQ(b.health, SloHealth::Healthy);
    }
    if (b.tenant == SloEngine::kOverflowTenant) {
      saw_overflow = true;
      EXPECT_EQ(b.fast_events, 20u);
    }
  }
  EXPECT_TRUE(saw_overflow);
}

TEST(SloEngineTest, EvaluatePublishesGaugesAndJson) {
  MetricsRegistry metrics;
  SloEngine slo({}, &metrics);
  slo.define({.name = "latency", .budget = 0.01});
  for (int i = 0; i < 10; ++i) {
    slo.record("latency", "acme", false, kBaseUs + i);
  }
  slo.evaluate(kBaseUs + 100);
  const std::string text = metrics.to_text();
  EXPECT_NE(
      text.find("slo_health{objective=\"latency\",customer=\"acme\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find(
                "slo_burn_fast_x100{objective=\"latency\",customer=\"acme\"} "
                "10000"),
            std::string::npos);

  const Json doc = slo.to_json(kBaseUs + 100);
  EXPECT_EQ(doc.at("overall").as_string(), "critical");
  EXPECT_EQ(doc.at("series").at(0).at("customer").as_string(), "acme");
  EXPECT_EQ(doc.at("series").at(0).at("health").as_string(), "critical");
}

// ---------------------------------------------------------------------
// Admin HTTP server: canned routes
// ---------------------------------------------------------------------

TEST(AdminHttpTest, RoutesStatusCodesAndMethodDiscipline) {
  AdminRoutes routes;
  routes.metrics_text = [] { return std::string("canned_metric 1\n"); };
  std::atomic<bool> healthy{true};
  routes.healthz = [&healthy] {
    return std::make_pair(healthy.load(), std::string("state\n"));
  };
  routes.slo_json = [] { return std::string("{\"overall\":\"healthy\"}"); };
  routes.flight_jsonl = [] {
    return std::string("{\"type\":\"flight\"}\n");
  };
  AdminHttpServer server(std::move(routes));
  ASSERT_NE(server.port(), 0);

  std::string resp = http_get(server.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 16"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  EXPECT_NE(resp.find("canned_metric 1"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  healthy.store(false);
  EXPECT_NE(http_get(server.port(), "/healthz")
                .find("503 Service Unavailable"),
            std::string::npos);

  EXPECT_NE(http_get(server.port(), "/slo").find("application/json"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/flight").find("\"flight\""),
            std::string::npos);
  // Query strings are routed on the path alone.
  EXPECT_NE(http_get(server.port(), "/metrics?x=1").find("200 OK"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/nope").find("404 Not Found"),
            std::string::npos);

  {
    TcpStream stream = TcpStream::connect(server.port());
    const std::string req = "POST /metrics HTTP/1.0\r\n\r\n";
    stream.send_bytes(std::vector<std::uint8_t>(req.begin(), req.end()));
    stream.set_recv_timeout(2000);
    std::string out;
    std::uint8_t buf[1024];
    try {
      while (true) {
        out.append(reinterpret_cast<const char*>(buf),
                   stream.recv_raw(buf, sizeof buf));
      }
    } catch (const NetError&) {
    }
    EXPECT_NE(out.find("405 Method Not Allowed"), std::string::npos);
  }
  server.stop();
}

TEST(AdminHttpTest, UnsetRoutesAnswer404) {
  AdminHttpServer server(AdminRoutes{});
  EXPECT_NE(http_get(server.port(), "/metrics").find("404"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// End to end: the operations plane on a live DeliveryService
// ---------------------------------------------------------------------

TEST(OpsEndToEndTest, MetricsEndpointServesPerTenantFamilies) {
  DeliveryConfig config;
  config.admin_http = true;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  service.add_license(LicensePolicy::make("globex", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();
  ASSERT_NE(service.admin_port(), 0);

  for (const char* customer : {"acme", "globex"}) {
    ConnectSpec spec;
    spec.customer = customer;
    spec.module = "carry-adder";
    spec.params["width"] = 8;
    SimClient client(port, spec);
    for (int i = 0; i < 5; ++i) {
      client.eval({{"a", BitVector::from_uint(8, 3)},
                   {"b", BitVector::from_uint(8, 4)}},
                  1);
    }
    client.bye();
  }
  // Sessions must be fully closed so sim.tenant.* fold-in has happened.
  ASSERT_TRUE(eventually([&] {
    return service.stats().snapshot().sessions_closed == 2;
  }));

  const std::string resp = http_get(service.admin_port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  // The acceptance shape: per-customer labeled series in Prometheus text.
  EXPECT_NE(resp.find("req_count{customer=\"acme\"} 5"), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("req_count{customer=\"globex\"} 5"),
            std::string::npos);
  EXPECT_NE(resp.find("req_latency_us_bucket{customer=\"acme\",le=\""),
            std::string::npos);
  EXPECT_NE(resp.find("session_opened{customer=\"acme\"} 1"),
            std::string::npos);
  EXPECT_NE(resp.find("net_rx_bytes{customer=\"acme\"}"), std::string::npos);
  EXPECT_NE(resp.find("sim_tenant_cycles{customer=\"acme\"} 5"),
            std::string::npos);
  // Binary identity + flat metrics ride the same scrape.
  EXPECT_NE(resp.find("build_info{version="), std::string::npos);
  EXPECT_NE(resp.find("process_uptime_seconds"), std::string::npos);
  EXPECT_NE(resp.find("server_requests 10"), std::string::npos);
  // SLO gauges are evaluated at scrape time.
  EXPECT_NE(resp.find("slo_health{objective=\"latency\",customer=\"acme\"}"),
            std::string::npos);

  // Healthy service: /healthz is 200 and /slo agrees.
  EXPECT_NE(http_get(service.admin_port(), "/healthz").find("200 OK"),
            std::string::npos);
  const std::string slo_resp = http_get(service.admin_port(), "/slo");
  const std::size_t body_at = slo_resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const Json slo = Json::parse(slo_resp.substr(body_at + 4));
  EXPECT_EQ(slo.at("overall").as_string(), "healthy");

  // The MetricsDump wire query carries the same families as JSON.
  const Json dump = query_metrics(port);
  EXPECT_TRUE(dump.has("families"));
  bool acme_found = false;
  for (const Json& row :
       dump.at("families").at("req.count").at("series").items()) {
    if (row.at("labels").at("customer").as_string() == "acme") {
      acme_found = true;
      EXPECT_EQ(row.at("value").as_int(), 5);
    }
  }
  EXPECT_TRUE(acme_found);
  service.stop();
  EXPECT_EQ(service.admin_port(), 0);
}

TEST(OpsEndToEndTest, HealthzFlipsOnInducedSloBurn) {
  DeliveryConfig config;
  config.admin_http = true;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  // Drive the error-rate SLO to a 100% bad fraction: every SetInput names
  // a port the model does not have, so every reply is an Error. Burn =
  // 1.0/0.05 = 20x in both windows -> Critical -> /healthz 503.
  TcpStream raw = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  raw.send_frame(encode(hello));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Iface);
  for (int i = 0; i < 10; ++i) {
    Message bad;
    bad.type = MsgType::SetInput;
    bad.name = "no-such-port";
    bad.value = BitVector::from_uint(8, 1);
    raw.send_frame(encode(bad));
    ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Error);
  }

  const std::string health = http_get(service.admin_port(), "/healthz");
  EXPECT_NE(health.find("503 Service Unavailable"), std::string::npos)
      << health;
  EXPECT_NE(health.find("critical"), std::string::npos);
  const std::string slo_resp = http_get(service.admin_port(), "/slo");
  EXPECT_NE(slo_resp.find("\"overall\": \"critical\""), std::string::npos)
      << slo_resp;
  // The burn is visible as a labeled gauge on the scrape too.
  EXPECT_NE(http_get(service.admin_port(), "/metrics")
                .find("slo_health{objective=\"errors\",customer=\"acme\"} 2"),
            std::string::npos);
  raw.shutdown();
  service.stop();
}

TEST(OpsEndToEndTest, FlightRecorderDumpsOnSessionPark) {
  DeliveryConfig config;
  config.admin_http = true;
  config.resume_window = 10s;  // long: the park outlives the test body
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  // Open a session, then kill the transport without Bye: the worker
  // parks the session and the flight recorder captures the postmortem.
  TcpStream raw = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  raw.send_frame(encode(hello));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Iface);
  raw.shutdown();
  raw.close();

  ASSERT_TRUE(eventually([&] { return service.flight().triggered() >= 1; }));
  const std::string jsonl = service.flight().latest();
  const std::vector<Json> lines = parse_jsonl(jsonl);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].at("type").as_string(), "flight");
  EXPECT_EQ(lines[0].at("reason").as_string(), "session.park");
  bool park_logged = false;
  for (const Json& line : lines) {
    if (line.at("type").as_string() == "log" &&
        line.at("event").as_string() == "session.park") {
      park_logged = true;
      EXPECT_EQ(line.at("fields").at("customer").as_string(), "acme");
    }
  }
  EXPECT_TRUE(park_logged) << jsonl;

  // GET /flight triggers a fresh on-demand dump over HTTP.
  const std::string resp = http_get(service.admin_port(), "/flight");
  EXPECT_NE(resp.find("application/jsonl"), std::string::npos);
  EXPECT_NE(resp.find("\"on_demand\""), std::string::npos);
  EXPECT_GE(service.flight().triggered(), 2u);
  service.stop();
}

// Satellite: concurrent-exposition hammer. Eight sessions run eval
// traffic while four threads pound MetricsDump, TraceDump, and the HTTP
// scrape endpoint. Run under ASan/TSan via `ctest -L ops` in CI; the
// assertions check nothing tears, the sanitizers check the lock-free
// claims.
TEST(OpsEndToEndTest, ConcurrentExpositionUnderEvalTraffic) {
  DeliveryConfig config;
  config.admin_http = true;
  config.workers = 8;
  config.tracing = true;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  service.add_license(LicensePolicy::make("globex", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();
  const std::uint16_t admin = service.admin_port();

  constexpr int kSessions = 8;
  constexpr int kEvalsPerSession = 25;
  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      while (!stop.load()) {
        switch (t % 3) {
          case 0: {
            const std::string resp = http_get(admin, "/metrics");
            ASSERT_NE(resp.find("200 OK"), std::string::npos);
            break;
          }
          case 1:
            ASSERT_NO_THROW((void)query_metrics(port));
            break;
          default:
            ASSERT_NO_THROW((void)query_trace(port));
            break;
        }
      }
    });
  }

  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      ConnectSpec spec;
      spec.customer = s % 2 == 0 ? "acme" : "globex";
      spec.module = "carry-adder";
      spec.params["width"] = 8;
      SimClient client(port, spec);
      for (int i = 0; i < kEvalsPerSession; ++i) {
        const auto out = client.eval(
            {{"a", BitVector::from_uint(8, static_cast<unsigned>(i))},
             {"b", BitVector::from_uint(8, 7)}},
            1);
        ASSERT_EQ(out.at("s").to_uint(), (static_cast<unsigned>(i) + 7) & 0xff);
      }
      client.bye();
    });
  }
  for (std::thread& s : sessions) s.join();
  stop.store(true);
  for (std::thread& s : scrapers) s.join();

  // Totals add up across tenants despite the concurrent exposition.
  const Json dump = query_metrics(port);
  std::int64_t total = 0;
  for (const Json& row :
       dump.at("families").at("req.count").at("series").items()) {
    total += row.at("value").as_int();
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(kSessions) * kEvalsPerSession);
  EXPECT_EQ(dump.at("counters").at("server.requests").as_int(), total);
  service.stop();
}

}  // namespace
}  // namespace jhdl
