// Tests for the extended core features: the Speck cipher and sealed
// archives (secure delivery), the IP catalog and multi-IP applets,
// license expiry, and the audit trail.
#include <gtest/gtest.h>

#include "core/applet.h"
#include "core/catalog.h"
#include "core/generators.h"
#include "core/secure.h"
#include "util/cipher.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using namespace jhdl::core;

// ---------------------------------------------------------------- cipher

TEST(SpeckTest, KnownTestVector) {
  // Speck64/128 published test vector (Beaulieu et al., appendix):
  // key = 1b1a1918 13121110 0b0a0908 03020100, pt = 3b726574 7475432d,
  // ct = 8c6fa548 454e028b.
  Speck64::Key key = {0x03020100, 0x0b0a0908, 0x13121110, 0x1b1a1918};
  Speck64 cipher(key);
  std::uint32_t x = 0x3b726574, y = 0x7475432d;
  cipher.encrypt_block(x, y);
  EXPECT_EQ(x, 0x8c6fa548u);
  EXPECT_EQ(y, 0x454e028bu);
  cipher.decrypt_block(x, y);
  EXPECT_EQ(x, 0x3b726574u);
  EXPECT_EQ(y, 0x7475432du);
}

TEST(SpeckTest, EncryptDecryptRandomBlocks) {
  Speck64::Key key = derive_key("secret", "salt");
  Speck64 cipher(key);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    std::uint32_t x = static_cast<std::uint32_t>(rng.next());
    std::uint32_t y = static_cast<std::uint32_t>(rng.next());
    std::uint32_t ex = x, ey = y;
    cipher.encrypt_block(ex, ey);
    EXPECT_TRUE(ex != x || ey != y);
    cipher.decrypt_block(ex, ey);
    EXPECT_EQ(ex, x);
    EXPECT_EQ(ey, y);
  }
}

TEST(SealTest, RoundTripAndSizes) {
  Speck64::Key key = derive_key("customer-1 license", "vendor");
  Rng rng(4);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 1000u}) {
    std::vector<std::uint8_t> plain(len);
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next());
    auto sealed = seal(plain, key, 42);
    EXPECT_EQ(sealed.size(), len + 16);
    EXPECT_EQ(open(sealed, key), plain);
  }
}

TEST(SealTest, WrongKeyRejected) {
  auto k1 = derive_key("alice", "vendor");
  auto k2 = derive_key("bob", "vendor");
  std::vector<std::uint8_t> plain = {1, 2, 3, 4, 5};
  auto sealed = seal(plain, k1, 7);
  EXPECT_THROW(open(sealed, k2), std::runtime_error);
}

TEST(SealTest, TamperDetected) {
  auto key = derive_key("alice", "vendor");
  std::vector<std::uint8_t> plain(100, 0xAA);
  auto sealed = seal(plain, key, 7);
  for (std::size_t pos :
       {std::size_t{0}, std::size_t{8}, std::size_t{16}, std::size_t{50},
        sealed.size() - 1}) {
    auto bad = sealed;
    bad[pos] ^= 0x01;
    EXPECT_THROW(open(bad, key), std::runtime_error) << "pos=" << pos;
  }
  EXPECT_THROW(open({1, 2, 3}, key), std::runtime_error);
}

TEST(SealTest, WrongKeyAndTamperedTagFailIdentically) {
  // The tag check is constant-time and deliberately does not say WHICH
  // check failed: a wrong key and a tampered tag must be
  // indistinguishable to the caller (same exception type, same message),
  // so the error path leaks nothing an attacker could use to separate
  // "my key derivation is wrong" from "my forgery was close".
  auto key = derive_key("alice", "vendor");
  std::vector<std::uint8_t> plain(32, 0x5A);
  auto sealed = seal(plain, key, 7);

  std::string wrong_key_msg;
  try {
    open(sealed, derive_key("mallory", "vendor"));
    FAIL() << "wrong key accepted";
  } catch (const std::runtime_error& e) {
    wrong_key_msg = e.what();
  }

  auto tampered = sealed;
  tampered[8] ^= 0x80;  // flip one bit of the stored tag
  std::string tampered_tag_msg;
  try {
    open(tampered, key);
    FAIL() << "tampered tag accepted";
  } catch (const std::runtime_error& e) {
    tampered_tag_msg = e.what();
  }

  EXPECT_FALSE(wrong_key_msg.empty());
  EXPECT_EQ(wrong_key_msg, tampered_tag_msg);
}

TEST(SealTest, SealedNonceReadsBackTheNonce) {
  auto key = derive_key("alice", "vendor");
  auto sealed = seal({1, 2, 3}, key, 0xDEADBEEFCAFEull);
  EXPECT_EQ(sealed_nonce(sealed), 0xDEADBEEFCAFEull);
  EXPECT_THROW(sealed_nonce({1, 2, 3}), std::runtime_error);
}

TEST(ConstantTimeEqualTest, ComparesEveryByte) {
  std::uint8_t a[4] = {1, 2, 3, 4};
  std::uint8_t b[4] = {1, 2, 3, 4};
  EXPECT_TRUE(constant_time_equal(a, b, 4));
  b[0] ^= 0xFF;  // mismatch in the first byte
  EXPECT_FALSE(constant_time_equal(a, b, 4));
  b[0] = 1;
  b[3] ^= 0x01;  // mismatch in the last byte
  EXPECT_FALSE(constant_time_equal(a, b, 4));
  EXPECT_TRUE(constant_time_equal(a, b, 3));
  EXPECT_TRUE(constant_time_equal(a, b, 0));
}

TEST(SealTest, DifferentNoncesDifferentCiphertexts) {
  auto key = derive_key("alice", "vendor");
  std::vector<std::uint8_t> plain(64, 0x55);
  auto s1 = seal(plain, key, 1);
  auto s2 = seal(plain, key, 2);
  EXPECT_NE(std::vector<std::uint8_t>(s1.begin() + 16, s1.end()),
            std::vector<std::uint8_t>(s2.begin() + 16, s2.end()));
}

// -------------------------------------------------------- secure channel

TEST(SecureChannelTest, ArchiveRoundTrip) {
  Archive a("demo");
  a.add_text("ip.txt", "the crown jewels");
  SecureChannel vendor("license-key-123");
  SealedArchive sealed = vendor.seal_archive(a, 1);
  EXPECT_EQ(sealed.name, "demo");

  SecureChannel customer("license-key-123");
  Archive back = customer.open_archive(sealed);
  ASSERT_EQ(back.entries().size(), 1u);
  EXPECT_EQ(std::string(back.entries()[0].data.begin(),
                        back.entries()[0].data.end()),
            "the crown jewels");

  SecureChannel attacker("license-key-guess");
  EXPECT_THROW(attacker.open_archive(sealed), std::runtime_error);
}

TEST(SecureChannelTest, SealedPackagingPipeline) {
  // Full vendor flow: build the applet payload, seal every archive,
  // unpack on the customer side, verify integrity end to end.
  Packager packager;
  KcmGenerator gen;
  auto archives = packager.archives_for(
      LicensePolicy::features_for(LicenseTier::Licensed), &gen);
  SecureChannel channel("acme-2002-license");
  std::uint64_t nonce = 1;
  for (const Archive& a : archives) {
    SealedArchive sealed = channel.seal_archive(a, nonce++);
    Archive back = channel.open_archive(sealed);
    EXPECT_EQ(back.name(), a.name());
    EXPECT_EQ(back.entries().size(), a.entries().size());
    EXPECT_EQ(back.raw_size(), a.raw_size());
  }
}

// ----------------------------------------------------------- IP catalog

TEST(CatalogTest, RegistrationAndListing) {
  IpCatalog catalog;
  catalog.add(std::make_shared<KcmGenerator>());
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<FirGenerator>());
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_NE(catalog.find("kcm-multiplier"), nullptr);
  EXPECT_EQ(catalog.find("nonexistent"), nullptr);
  EXPECT_THROW(catalog.add(std::make_shared<KcmGenerator>()),
               std::invalid_argument);
  std::string listing = catalog.listing();
  EXPECT_NE(listing.find("kcm-multiplier"), std::string::npos);
  EXPECT_NE(listing.find("fir4-filter"), std::string::npos);
}

TEST(CatalogTest, SingleIpAppletFromCatalog) {
  IpCatalog catalog;
  catalog.add(std::make_shared<AdderGenerator>());
  Applet applet = catalog.make_applet(
      "carry-adder", LicensePolicy::make("c", LicenseTier::Licensed));
  applet.build(ParamMap().set("width", std::int64_t{8}));
  applet.sim_put("a", 3);
  applet.sim_put("b", 4);
  EXPECT_EQ(applet.sim_get("s").to_uint(), 7u);
  EXPECT_THROW(catalog.make_applet("nope", LicensePolicy{}),
               std::out_of_range);
}

TEST(CatalogTest, MultiIpAppletSessions) {
  IpCatalog catalog;
  catalog.add(std::make_shared<KcmGenerator>());
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<FirGenerator>());

  MultiIpApplet bundle(catalog,
                       LicensePolicy::make("acme", LicenseTier::Licensed));
  EXPECT_EQ(bundle.size(), 3u);

  // Independent sessions per IP.
  Applet& kcm = bundle.select("kcm-multiplier");
  kcm.build(ParamMap()
                .set("input_width", std::int64_t{8})
                .set("constant", std::int64_t{10}));
  kcm.sim_put("multiplicand", 7);
  EXPECT_EQ(kcm.sim_get("product").to_uint(), 70u);

  Applet& adder = bundle.select("carry-adder");
  adder.build(ParamMap().set("width", std::int64_t{4}));
  adder.sim_put("a", 2);
  adder.sim_put("b", 3);
  EXPECT_EQ(adder.sim_get("s").to_uint(), 5u);

  EXPECT_THROW(bundle.select("nope"), std::out_of_range);
}

TEST(CatalogTest, MultiIpPayloadSharesFramework) {
  IpCatalog catalog;
  catalog.add(std::make_shared<KcmGenerator>());
  catalog.add(std::make_shared<AdderGenerator>());

  MultiIpApplet bundle(catalog,
                       LicensePolicy::make("acme", LicenseTier::Licensed));
  auto multi = bundle.download_report();

  Applet single =
      catalog.make_applet("kcm-multiplier",
                          LicensePolicy::make("acme", LicenseTier::Licensed));
  auto one = single.download_report();

  // The bundle ships one extra applet archive, NOT a second framework.
  EXPECT_EQ(multi.rows.size(), one.rows.size() + 1);
  EXPECT_LT(multi.total_compressed - one.total_compressed,
            one.total_compressed / 2);
}

// --------------------------------------------------- expiry & audit trail

TEST(LicenseTest, ExpiryBlocksOperations) {
  auto gen = std::make_shared<KcmGenerator>();
  LicensePolicy license =
      LicensePolicy::make("shortterm", LicenseTier::Licensed, /*expires=*/100);

  // Assembled before expiry: everything works.
  Applet fresh = AppletBuilder()
                     .generator(gen)
                     .license(license)
                     .assembled_on(99)
                     .build_applet();
  fresh.build(ParamMap().set("constant", std::int64_t{3}));
  EXPECT_NO_THROW(fresh.area());

  // Assembled after expiry: every gated operation refuses.
  Applet stale = AppletBuilder()
                     .generator(gen)
                     .license(license)
                     .assembled_on(101)
                     .build_applet();
  try {
    stale.build(ParamMap().set("constant", std::int64_t{3}));
    FAIL() << "expected AppletSecurityError";
  } catch (const AppletSecurityError& e) {
    EXPECT_NE(std::string(e.what()).find("expired"), std::string::npos);
  }
}

TEST(AuditTest, TrailRecordsGrantsAndDenials) {
  Applet applet = AppletBuilder()
                      .generator(std::make_shared<KcmGenerator>())
                      .license(LicensePolicy::make("c",
                                                   LicenseTier::Anonymous))
                      .build_applet();
  applet.build(ParamMap().set("constant", std::int64_t{5}));
  (void)applet.area();
  EXPECT_THROW((void)applet.netlist(NetlistFormat::Edif),
               AppletSecurityError);

  const auto& log = applet.audit_log();
  ASSERT_GE(log.size(), 3u);
  EXPECT_NE(log[0].find("build granted"), std::string::npos);
  bool saw_denial = false;
  for (const std::string& line : log) {
    saw_denial |= line.find("netlist export DENIED") != std::string::npos;
  }
  EXPECT_TRUE(saw_denial);
}

}  // namespace
}  // namespace jhdl
