// Tests for the event-driven delivery plane: the Poller / WakeupFd /
// TimerWheel reactor primitives, incremental FrameAssembler, per-tenant
// deficit-round-robin FairScheduler, admission control (session budget,
// per-tenant caps, typed Overloaded errors, labeled reject counters, the
// overload flight dump), connection churn over the reactor, the in-loop
// admin HTTP plane, and TcpStream::recv_raw edge cases (partial reads
// across header boundaries, peer close mid-request, oversized requests).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/generators.h"
#include "net/poller.h"
#include "net/protocol.h"
#include "net/sim_client.h"
#include "net/socket.h"
#include "net/timer_wheel.h"
#include "server/delivery_service.h"
#include "server/scheduler.h"
#include "server/session.h"

namespace jhdl {
namespace {

using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::server;
using namespace std::chrono_literals;

IpCatalog make_catalog() {
  IpCatalog catalog;
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<KcmGenerator>());
  return catalog;
}

/// Spin until `pred` holds or ~2 s elapse. Returns the final value.
bool eventually(const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// --- TimerWheel ----------------------------------------------------------

TEST(TimerWheelTest, FiresAtDeadlineNeverEarly) {
  TimerWheel wheel(0);
  int fired = 0;
  wheel.schedule(10, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(8), 0u);  // before the deadline: must not fire
  EXPECT_EQ(fired, 0);
  wheel.advance(12);  // past it (deadlines round up to the next tick)
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextAdvance) {
  TimerWheel wheel(100);
  bool fired = false;
  wheel.schedule(0, [&] { fired = true; });
  wheel.advance(100 + TimerWheel::kTickMs);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, MultiRevolutionDeadline) {
  // A deadline further out than one wheel revolution must not fire on
  // earlier visits to its slot.
  TimerWheel wheel(0);
  const std::int64_t revolution = TimerWheel::kTickMs * TimerWheel::kSlots;
  bool fired = false;
  wheel.schedule(2 * revolution, [&] { fired = true; });
  wheel.advance(revolution);
  EXPECT_FALSE(fired);
  wheel.advance(2 * revolution - TimerWheel::kTickMs);
  EXPECT_FALSE(fired);
  wheel.advance(2 * revolution + TimerWheel::kTickMs);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, CancelDisarms) {
  TimerWheel wheel(0);
  bool fired = false;
  const TimerWheel::TimerId id = wheel.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already gone
  wheel.advance(1000);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, NextDelayTracksEarliestDeadline) {
  TimerWheel wheel(0);
  EXPECT_EQ(wheel.next_delay_ms(0), -1);  // empty: sleep forever
  wheel.schedule(50, [] {});
  wheel.schedule(20, [] {});
  const std::int64_t delay = wheel.next_delay_ms(0);
  EXPECT_GE(delay, 1);
  EXPECT_LE(delay, 20 + TimerWheel::kTickMs);
  // Overdue reports 0, never negative.
  EXPECT_EQ(wheel.next_delay_ms(1000), 0);
}

TEST(TimerWheelTest, CallbackMayReArm) {
  TimerWheel wheel(0);
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 3) wheel.schedule(10, tick);
  };
  wheel.schedule(10, tick);
  for (std::int64_t now = 0; now <= 100; now += 10) wheel.advance(now);
  EXPECT_EQ(ticks, 3);
}

// --- Poller / WakeupFd ---------------------------------------------------

TEST(PollerTest, WakeupFdRoundTrip) {
  Poller poller;
  WakeupFd wakeup;
  poller.add(wakeup.fd(), true, false);
  EXPECT_EQ(poller.watched(), 1u);

  std::vector<PollEvent> events;
  EXPECT_EQ(poller.wait(events, 0), 0u);  // nothing rung yet

  wakeup.ring();
  wakeup.ring();  // coalesces
  ASSERT_EQ(poller.wait(events, 1000), 1u);
  EXPECT_EQ(events[0].fd, wakeup.fd());
  EXPECT_TRUE(events[0].readable);

  wakeup.drain();
  EXPECT_EQ(poller.wait(events, 0), 0u);  // fresh edge after drain

  poller.remove(wakeup.fd());
  EXPECT_EQ(poller.watched(), 0u);
}

TEST(PollerTest, ReadWriteInterestOnSockets) {
  TcpListener listener(4);
  TcpStream client = TcpStream::connect(listener.port());
  TcpStream server = listener.accept();
  client.set_nonblocking(true);

  Poller poller;
  // A connected socket with an empty send buffer is immediately writable.
  poller.add(client.fd(), false, true);
  std::vector<PollEvent> events;
  ASSERT_EQ(poller.wait(events, 1000), 1u);
  EXPECT_TRUE(events[0].writable);
  EXPECT_FALSE(events[0].readable);

  // Drop write interest: silence.
  poller.modify(client.fd(), true, false);
  EXPECT_EQ(poller.wait(events, 0), 0u);

  // Peer bytes make it readable.
  server.send_bytes({1, 2, 3});
  ASSERT_GE(poller.wait(events, 1000), 1u);
  EXPECT_TRUE(events[0].readable);

  std::uint8_t buf[8];
  std::size_t n = 0;
  ASSERT_EQ(client.recv_some(buf, sizeof buf, n), TcpStream::IoResult::Ok);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(client.recv_some(buf, sizeof buf, n),
            TcpStream::IoResult::WouldBlock);
  poller.remove(client.fd());
}

// --- FrameAssembler ------------------------------------------------------

TEST(FrameAssemblerTest, ByteAtATimeReassembly) {
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
  const std::vector<std::uint8_t> wire = frame_wrap(payload);
  FrameAssembler assembler;
  std::vector<std::uint8_t> raw;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(assembler.next(raw)) << "frame complete too early at " << i;
    assembler.feed(&wire[i], 1);
  }
  ASSERT_TRUE(assembler.next(raw));
  EXPECT_EQ(raw, wire);
  EXPECT_EQ(frame_unwrap(raw), payload);
  EXPECT_EQ(assembler.buffered(), 0u);
  EXPECT_FALSE(assembler.next(raw));
}

TEST(FrameAssemblerTest, ManyFramesInOneFeed) {
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 5; ++i) {
    const std::vector<std::uint8_t> one =
        frame_wrap({static_cast<std::uint8_t>(i), 42});
    wire.insert(wire.end(), one.begin(), one.end());
  }
  wire.pop_back();  // hold back the last byte of frame 4
  FrameAssembler assembler;
  assembler.feed(wire.data(), wire.size());
  std::vector<std::uint8_t> raw;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(assembler.next(raw)) << "frame " << i;
    EXPECT_EQ(frame_unwrap(raw)[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_FALSE(assembler.next(raw));
  const std::uint8_t tail = frame_wrap({4, 42}).back();
  assembler.feed(&tail, 1);
  ASSERT_TRUE(assembler.next(raw));
  EXPECT_EQ(frame_unwrap(raw)[0], 4u);
}

TEST(FrameAssemblerTest, HostileLengthPrefixThrows) {
  // A length beyond kMaxFrameBytes must be rejected from the header
  // alone, before any payload is buffered.
  const std::uint32_t evil = kMaxFrameBytes + 1;
  std::vector<std::uint8_t> header(kFrameHeaderBytes, 0);
  std::memcpy(header.data(), &evil, sizeof evil);
  FrameAssembler assembler;
  assembler.feed(header.data(), header.size());
  std::vector<std::uint8_t> raw;
  EXPECT_THROW(assembler.next(raw), NetError);
}

// --- FairScheduler -------------------------------------------------------

TEST(FairSchedulerTest, FifoWithinOneTenant) {
  FairScheduler sched(4096);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sched.push({"acme", 10, [&order, i] { order.push_back(i); }});
  }
  FairScheduler::Item item;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sched.pop(item));
    item.run();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sched.size(), 0u);
  EXPECT_EQ(sched.active_tenants(), 0u);
}

TEST(FairSchedulerTest, DeficitRoundRobinIsByteFair) {
  // Tenant A sends quantum-sized requests, tenant B quarter-quantum ones.
  // DRR must serve ~four B items per A item - byte fairness, not item
  // fairness.
  FairScheduler sched(4096);
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    sched.push({"A", 4096, [&order] { order.push_back("A"); }});
  }
  for (int i = 0; i < 8; ++i) {
    sched.push({"B", 1024, [&order] { order.push_back("B"); }});
  }
  FairScheduler::Item item;
  while (sched.size() > 0) {
    ASSERT_TRUE(sched.pop(item));
    item.run();
  }
  EXPECT_EQ(order,
            (std::vector<std::string>{"A", "B", "B", "B", "B", "A", "B", "B",
                                      "B", "B", "A"}));
}

TEST(FairSchedulerTest, EmptiedTenantForfeitsDeficitAndLeavesRing) {
  FairScheduler sched(1000);
  // One cheap item: serving it empties the tenant, which must forfeit
  // the residual deficit (no banking across idle periods).
  sched.push({"acme", 1, [] {}});
  FairScheduler::Item item;
  ASSERT_TRUE(sched.pop(item));
  EXPECT_EQ(sched.active_tenants(), 0u);
  // Re-queue an item costing more than one quantum: it needs two ring
  // visits, proving the old 999-byte residue was not retained.
  bool ran = false;
  sched.push({"acme", 1500, [&ran] { ran = true; }});
  ASSERT_TRUE(sched.pop(item));
  item.run();
  EXPECT_TRUE(ran);
}

TEST(FairSchedulerTest, CloseDrainsThenReturnsFalse) {
  FairScheduler sched;
  int ran = 0;
  sched.push({"a", 1, [&ran] { ++ran; }});
  sched.push({"b", 1, [&ran] { ++ran; }});
  sched.close();
  FairScheduler::Item item;
  while (sched.pop(item)) item.run();
  EXPECT_EQ(ran, 2);  // close() keeps the backlog poppable
}

TEST(FairSchedulerTest, PopBlocksUntilPush) {
  FairScheduler sched;
  std::atomic<int> got{0};
  std::thread worker([&] {
    FairScheduler::Item item;
    while (sched.pop(item)) {
      item.run();
    }
  });
  std::this_thread::sleep_for(10ms);
  sched.push({"acme", 1, [&got] { got.store(1); }});
  EXPECT_TRUE(eventually([&] { return got.load() == 1; }));
  sched.close();
  worker.join();
}

// --- Session state machine ----------------------------------------------

TEST(SessionStateTest, StateNamesAreStable) {
  EXPECT_STREQ(session_state_name(SessionState::Handshake), "handshake");
  EXPECT_STREQ(session_state_name(SessionState::Ready), "ready");
  EXPECT_STREQ(session_state_name(SessionState::InFlight), "inflight");
  EXPECT_STREQ(session_state_name(SessionState::Parked), "parked");
  EXPECT_STREQ(session_state_name(SessionState::Closing), "closing");
}

// --- Admission control ---------------------------------------------------

TEST(AdmissionTest, MaxSessionsHoldsManySessionsOverSmallPool) {
  // The reactor decouples live sessions from worker threads: 12 open
  // sessions over a 2-thread pool, all responsive. The old
  // thread-per-connection design would have parked 10 of them in the
  // accept queue forever.
  DeliveryConfig config;
  config.workers = 2;
  config.max_sessions = 32;
  config.queue_capacity = 4;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  constexpr int kSessions = 12;
  std::vector<std::unique_ptr<SimClient>> clients;
  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(std::make_unique<SimClient>(port, spec));
  }
  EXPECT_EQ(service.stats().snapshot().sessions_active,
            static_cast<std::uint64_t>(kSessions));
  // Every session still answers (round-robin through all of them).
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < kSessions; ++i) {
      std::map<std::string, BitVector> inputs;
      inputs["a"] = BitVector::from_uint(8, 10 + i);
      inputs["b"] = BitVector::from_uint(8, k);
      auto out = clients[i]->eval(inputs, 0);
      EXPECT_EQ(out.at("s").to_uint(), (10u + i + k) & 0xFF);
    }
  }
  for (auto& client : clients) client->bye();
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  EXPECT_EQ(service.stats().snapshot().rejections, 0u);
  service.stop();
}

TEST(AdmissionTest, OverCapacityGetsTypedOverloadedError) {
  DeliveryConfig config;
  config.workers = 2;
  config.max_sessions = 1;
  config.queue_capacity = 0;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  SimClient held(port, spec);  // occupies the single session slot

  TcpStream rejected = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  rejected.send_frame(encode(hello));
  const Message reply = decode(rejected.recv_frame());
  EXPECT_EQ(reply.type, MsgType::Error);
  EXPECT_EQ(reply.code, ErrorCode::Overloaded);
  EXPECT_TRUE(error_retryable(reply.code));
  EXPECT_NE(reply.text.find("overloaded"), std::string::npos);
  rejected.close();

  EXPECT_TRUE(
      eventually([&] { return service.stats().snapshot().rejections == 1; }));
  // The reject is attributed to the tenant whose Hello was refused.
  EXPECT_EQ(service.metrics()
                .counter_family("accept.rejected", {"customer"})
                .with({"acme"})
                .value(),
            1u);
  held.bye();
  service.stop();
}

TEST(AdmissionTest, TenantSessionCapRefusesHello) {
  DeliveryConfig config;
  config.workers = 2;
  config.max_sessions = 8;
  config.tenant_max_sessions = 1;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  service.add_license(LicensePolicy::make("zeta", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  SimClient held(port, spec);  // acme is now at its cap

  // A second acme session is refused with a retryable typed error...
  TcpStream second = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  hello.seq = 77;
  second.send_frame(encode(hello));
  const Message reply = decode(second.recv_frame());
  EXPECT_EQ(reply.type, MsgType::Error);
  EXPECT_EQ(reply.code, ErrorCode::Overloaded);
  EXPECT_EQ(reply.seq, 77u);
  EXPECT_NE(reply.text.find("session cap"), std::string::npos);
  second.close();

  // ...while another tenant still gets in: the cap is per tenant, not
  // global.
  ConnectSpec other = spec;
  other.customer = "zeta";
  SimClient fine(port, other);
  EXPECT_EQ(service.metrics()
                .counter_family("accept.rejected", {"customer"})
                .with({"acme"})
                .value(),
            1u);
  EXPECT_EQ(service.stats().snapshot().rejections, 1u);
  fine.bye();
  held.bye();
  service.stop();
}

TEST(AdmissionTest, SustainedOverloadTriggersFlightDump) {
  DeliveryConfig config;
  config.workers = 1;
  config.max_sessions = 1;
  config.queue_capacity = 0;
  config.overload_flight_threshold = 3;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  SimClient held(port, spec);

  EXPECT_EQ(service.flight().triggered(), 0u);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  for (int i = 0; i < 4; ++i) {
    TcpStream conn = TcpStream::connect(port);
    conn.send_frame(encode(hello));
    EXPECT_EQ(decode(conn.recv_frame()).code, ErrorCode::Overloaded);
  }
  // The burst crossed the threshold inside one second: exactly one
  // postmortem bundle, not one per reject.
  EXPECT_EQ(service.flight().triggered(), 1u);
  held.bye();
  service.stop();
}

// --- Connection churn over the reactor -----------------------------------

TEST(ReactorChurnTest, SequentialSessionsAndGhostConnections) {
  DeliveryConfig config;
  config.workers = 2;
  config.max_sessions = 16;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  constexpr int kRounds = 40;
  for (int i = 0; i < kRounds; ++i) {
    // Ghost connections that never speak, or hang up mid-handshake: the
    // reactor must shed them without leaking conns or slots.
    if (i % 4 == 0) {
      TcpStream ghost = TcpStream::connect(port);
      ghost.close();
    }
    if (i % 4 == 2) {
      TcpStream half = TcpStream::connect(port);
      half.send_bytes({0x01, 0x02, 0x03});  // partial frame, then gone
      half.close();
    }
    SimClient client(port, spec);
    std::map<std::string, BitVector> inputs;
    inputs["a"] = BitVector::from_uint(8, i);
    inputs["b"] = BitVector::from_uint(8, 1);
    EXPECT_EQ(client.eval(inputs, 0).at("s").to_uint(),
              (static_cast<unsigned>(i) + 1) & 0xFF);
    client.bye();
  }
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  const ServerStats::Snapshot s = service.stats().snapshot();
  EXPECT_EQ(s.sessions_opened, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(s.sessions_closed, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(s.rejections, 0u);
  service.stop();
}

// --- Admin HTTP on the reactor -------------------------------------------

namespace {

/// One blocking HTTP/1.0 exchange against the admin plane.
std::string http_get(std::uint16_t port, const std::string& path) {
  TcpStream conn = TcpStream::connect(port);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  conn.send_bytes(std::vector<std::uint8_t>(request.begin(), request.end()));
  std::string response;
  std::uint8_t buf[1024];
  try {
    while (true) {
      const std::size_t n = conn.recv_raw(buf, sizeof buf);
      response.append(reinterpret_cast<const char*>(buf), n);
    }
  } catch (const NetError&) {
    // Connection: close terminates the body.
  }
  return response;
}

}  // namespace

TEST(ReactorAdminHttpTest, ServesHealthzAndMetricsOffTheLoop) {
  DeliveryConfig config;
  config.workers = 2;
  config.admin_http = true;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  service.start();
  ASSERT_NE(service.admin_port(), 0u);

  const std::string health = http_get(service.admin_port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  const std::string metrics = http_get(service.admin_port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("server_sessions_active"), std::string::npos);
  const std::string missing = http_get(service.admin_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  service.stop();
  EXPECT_EQ(service.admin_port(), 0u);
}

TEST(ReactorAdminHttpTest, SlowHeaderArrivesInPieces) {
  DeliveryConfig config;
  config.workers = 1;
  config.admin_http = true;
  DeliveryService service(make_catalog(), config);
  service.start();

  TcpStream conn = TcpStream::connect(service.admin_port());
  const std::string part1 = "GET /hea";
  const std::string part2 = "lthz HTTP/1.0\r\n\r\n";
  conn.send_bytes(std::vector<std::uint8_t>(part1.begin(), part1.end()));
  std::this_thread::sleep_for(20ms);
  conn.send_bytes(std::vector<std::uint8_t>(part2.begin(), part2.end()));
  std::string response;
  std::uint8_t buf[512];
  try {
    while (true) {
      const std::size_t n = conn.recv_raw(buf, sizeof buf);
      response.append(reinterpret_cast<const char*>(buf), n);
    }
  } catch (const NetError&) {
  }
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  service.stop();
}

TEST(ReactorAdminHttpTest, OversizedRequestAnswered431) {
  DeliveryConfig config;
  config.workers = 1;
  config.admin_http = true;
  DeliveryService service(make_catalog(), config);
  service.start();

  TcpStream conn = TcpStream::connect(service.admin_port());
  // A header block past the cap with no terminator in sight.
  const std::string junk(AdminHttpServer::kMaxRequestBytes + 512, 'x');
  conn.send_bytes(std::vector<std::uint8_t>(junk.begin(), junk.end()));
  std::string response;
  std::uint8_t buf[512];
  try {
    while (true) {
      const std::size_t n = conn.recv_raw(buf, sizeof buf);
      response.append(reinterpret_cast<const char*>(buf), n);
    }
  } catch (const NetError&) {
  }
  EXPECT_NE(response.find("431"), std::string::npos);
  service.stop();
}

// --- TcpStream::recv_raw edge cases --------------------------------------

TEST(RecvRawTest, PartialReadsAcrossBoundariesReassemble) {
  TcpListener listener(4);
  TcpStream client = TcpStream::connect(listener.port());
  TcpStream server = listener.accept();

  const std::string full = "GET /healthz HTTP/1.0\r\n\r\n";
  std::thread sender([&] {
    // Deliver in three bursts that split the request line AND the header
    // terminator, forcing the reader to cross both boundaries.
    client.send_bytes({full.begin(), full.begin() + 5});
    std::this_thread::sleep_for(10ms);
    client.send_bytes({full.begin() + 5, full.end() - 2});
    std::this_thread::sleep_for(10ms);
    client.send_bytes({full.end() - 2, full.end()});
  });
  std::string request;
  std::uint8_t buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos) {
    const std::size_t n = server.recv_raw(buf, sizeof buf);
    ASSERT_GE(n, 1u);  // contract: returns at least one byte or throws
    request.append(reinterpret_cast<const char*>(buf), n);
  }
  sender.join();
  EXPECT_EQ(request, full);
}

TEST(RecvRawTest, PeerCloseMidRequestThrowsAfterDrain) {
  TcpListener listener(4);
  TcpStream client = TcpStream::connect(listener.port());
  TcpStream server = listener.accept();

  const std::string partial = "GET /par";  // hangs up mid-request-line
  client.send_bytes(std::vector<std::uint8_t>(partial.begin(), partial.end()));
  client.close();

  // The bytes already on the wire are still delivered...
  std::string got;
  std::uint8_t buf[64];
  const std::size_t n = server.recv_raw(buf, sizeof buf);
  got.append(reinterpret_cast<const char*>(buf), n);
  while (got.size() < partial.size()) {
    const std::size_t more = server.recv_raw(buf, sizeof buf);
    got.append(reinterpret_cast<const char*>(buf), more);
  }
  EXPECT_EQ(got, partial);
  // ...and the orderly close surfaces as NetError, not a silent 0.
  EXPECT_THROW(server.recv_raw(buf, sizeof buf), NetError);
}

TEST(RecvRawTest, TimeoutThrowsNetError) {
  TcpListener listener(4);
  TcpStream client = TcpStream::connect(listener.port());
  TcpStream server = listener.accept();
  server.set_recv_timeout(50);
  std::uint8_t buf[16];
  EXPECT_THROW(server.recv_raw(buf, sizeof buf), NetError);
  (void)client;
}

}  // namespace
}  // namespace jhdl
