// Netlist-equivalence tests: a circuit exported to flat EDIF and
// re-imported must behave identically to the original - combinational
// and sequential, across module generators and random circuits. Plus
// KCM exhaustive small-parameter cross products, SVG waveform rendering,
// and the applet web page.
#include <gtest/gtest.h>

#include "core/generators.h"
#include "core/webpage.h"
#include "hdl/hwsystem.h"
#include "hdl/visitor.h"
#include "modgen/modgen.h"
#include "netlist/edif_import.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "tech/virtex.h"
#include "util/rng.h"
#include "viewer/waveview.h"

namespace jhdl {
namespace {

using netlist::import_edif;
using netlist::ImportedCircuit;

// ------------------------------------------------- EDIF import equivalence

TEST(ImportTest, KcmCombinationalEquivalence) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 15, "p");
  new modgen::VirtexKCMMultiplier(&hw, m, p, true, false, -56);
  std::string edif =
      netlist::write_edif(*hw.children().front(), {.flatten = true});

  ImportedCircuit imported = import_edif(edif);
  ASSERT_EQ(imported.ports.count("multiplicand"), 1u);
  ASSERT_EQ(imported.ports.count("product"), 1u);

  Simulator orig(hw);
  Simulator copy(*imported.system);
  for (std::int64_t x = -128; x < 128; ++x) {
    orig.put_signed(m, x);
    copy.put_signed(imported.ports["multiplicand"], x);
    EXPECT_EQ(copy.get(imported.ports["product"]).to_uint(),
              orig.get(p).to_uint())
        << "x=" << x;
  }
}

TEST(ImportTest, SequentialEquivalencePipelinedKcm) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 12, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, true, 201);
  std::string edif = netlist::write_edif(*kcm, {.flatten = true});

  ImportedCircuit imported = import_edif(edif);
  Simulator orig(hw);
  Simulator copy(*imported.system);
  Rng rng(2);
  for (int t = 0; t < 100; ++t) {
    std::uint64_t x = rng.next() & 0xFF;
    orig.put(m, x);
    copy.put(imported.ports["multiplicand"], x);
    orig.cycle();
    copy.cycle();
    EXPECT_EQ(copy.get(imported.ports["product"]).to_string(),
              orig.get(p).to_string())
        << "t=" << t;
  }
}

TEST(ImportTest, CounterWithLutsAndFfs) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 6, "q");
  Wire* ce = new Wire(&hw, 1, "ce");
  new modgen::Counter(&hw, q, ce);
  // Netlist the counter cell itself (it owns ports).
  std::string edif =
      netlist::write_edif(*hw.children().front(), {.flatten = true});
  ImportedCircuit imported = import_edif(edif);
  Simulator orig(hw);
  Simulator copy(*imported.system);
  orig.put(ce, 1);
  copy.put(imported.ports["ce"], 1);
  for (int t = 0; t < 80; ++t) {
    orig.cycle();
    copy.cycle();
    EXPECT_EQ(copy.get(imported.ports["q"]).to_uint(),
              orig.get(q).to_uint());
  }
}

TEST(ImportTest, Srl16ShiftRegisterEquivalence) {
  HWSystem hw;
  Wire* in = new Wire(&hw, 2, "in");
  Wire* out = new Wire(&hw, 2, "out");
  new modgen::ShiftRegister(&hw, in, out, 21,
                            modgen::ShiftRegister::Style::SRL16);
  std::string edif =
      netlist::write_edif(*hw.children().front(), {.flatten = true});
  ImportedCircuit imported = import_edif(edif);
  Simulator orig(hw);
  Simulator copy(*imported.system);
  Rng rng(5);
  for (int t = 0; t < 60; ++t) {
    std::uint64_t v = rng.next() & 3;
    orig.put(in, v);
    copy.put(imported.ports["in"], v);
    orig.cycle();
    copy.cycle();
    EXPECT_EQ(copy.get(imported.ports["out"]).to_string(),
              orig.get(out).to_string());
  }
}

TEST(ImportTest, HierarchicalEquivalenceAndStructure) {
  HWSystem hw;
  // 8-bit input -> two digits -> the KCM contains composite adder cells.
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 12, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 9);
  std::string hier = netlist::write_edif(*kcm);  // NOT flattened

  ImportedCircuit imported = import_edif(hier);
  // The hierarchy survives: the imported top has composite children.
  bool has_composite = false;
  for (const Cell* child : imported.top->children()) {
    has_composite |= !child->is_primitive() && !child->children().empty();
  }
  EXPECT_TRUE(has_composite);
  // Same primitive count as the original.
  EXPECT_EQ(collect_primitives(*imported.top).size(),
            collect_primitives(*kcm).size());

  Simulator orig(hw);
  Simulator copy(*imported.system);
  for (std::uint64_t x = 0; x < 256; ++x) {
    orig.put(m, x);
    copy.put(imported.ports["multiplicand"], x);
    EXPECT_EQ(copy.get(imported.ports["product"]).to_uint(),
              orig.get(p).to_uint())
        << "x=" << x;
  }
}

TEST(ImportTest, RejectsUnknownAndEmpty) {
  EXPECT_THROW(import_edif("(edif x (design x (cellRef x)))"),
               std::runtime_error);
  EXPECT_THROW(import_edif("garbage"), std::runtime_error);
}

// ------------------------------------------ KCM exhaustive cross product

struct SmallKcm {
  std::size_t width;
  int constant;
};

class KcmExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool, bool>> {};

TEST_P(KcmExhaustiveTest, AllConstantsAllInputs) {
  auto [width, sign, pipe] = GetParam();
  for (int constant = -8; constant <= 8; ++constant) {
    HWSystem hw;
    Wire* m = new Wire(&hw, width, "m");
    const std::size_t full =
        width + modgen::VirtexKCMMultiplier::width_of_constant(constant);
    Wire* p = new Wire(&hw, full, "p");
    auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, sign, pipe,
                                                constant);
    Simulator sim(hw);
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << width); ++x) {
      sim.put(m, x);
      if (kcm->latency() > 0) sim.cycle(kcm->latency());
      ASSERT_EQ(sim.get(p).to_uint(), kcm->expected_product(x))
          << "w=" << width << " c=" << constant << " s=" << sign
          << " p=" << pipe << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CrossProduct, KcmExhaustiveTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Bool(), ::testing::Bool()));

// ------------------------------------------------------- SVG waves & page

TEST(SvgWavesTest, RendersRailsAndBuses) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 4, "q");
  new modgen::Counter(&hw, q);
  Wire* bit = new Wire(&hw, 1, "bit");
  new tech::Buf(&hw, q->gw(0), bit);
  Simulator sim(hw);
  WaveformRecorder rec(sim);
  rec.watch(q, "count");
  rec.watch(bit, "lsb");
  sim.cycle(8);
  std::string svg = viewer::svg_waves(rec);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);  // 1-bit rail
  EXPECT_NE(svg.find("<rect"), std::string::npos);      // bus lozenge
  EXPECT_NE(svg.find("count"), std::string::npos);
}

TEST(WebPageTest, LicensedPageHasAllSections) {
  using namespace jhdl::core;
  Applet applet = AppletBuilder()
                      .title("KCM page")
                      .generator(std::make_shared<KcmGenerator>())
                      .license(LicensePolicy::make("acme",
                                                   LicenseTier::Licensed))
                      .build_applet();
  applet.build(ParamMap()
                   .set("input_width", std::int64_t{6})
                   .set("constant", std::int64_t{11}));
  std::string html = render_applet_page(applet);
  EXPECT_NE(html.find("<h1>KCM page</h1>"), std::string::npos);
  EXPECT_NE(html.find("fmax"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("rom16"), std::string::npos);  // memories section
  EXPECT_NE(html.find("JHDLBase.jar"), std::string::npos);
  EXPECT_EQ(html.find("not licensed"), std::string::npos);
}

TEST(WebPageTest, AnonymousPageHidesGatedSections) {
  using namespace jhdl::core;
  Applet applet = AppletBuilder()
                      .title("teaser")
                      .generator(std::make_shared<KcmGenerator>())
                      .license(LicensePolicy::make("visitor",
                                                   LicenseTier::Anonymous))
                      .build_applet();
  applet.build(ParamMap().set("constant", std::int64_t{3}));
  std::string html = render_applet_page(applet);
  EXPECT_NE(html.find("fmax"), std::string::npos) << "estimator is granted";
  EXPECT_NE(html.find("not licensed"), std::string::npos);
  EXPECT_EQ(html.find("<svg"), std::string::npos) << "no structural views";
}

}  // namespace
}  // namespace jhdl
