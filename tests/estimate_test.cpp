// Tests for the estimator module: area aggregation and slice packing,
// critical-path timing, and RLOC layout footprints.
#include <gtest/gtest.h>

#include "estimate/area.h"
#include "estimate/layout.h"
#include "estimate/timing.h"
#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "modgen/modgen.h"
#include "tech/virtex.h"

namespace jhdl {
namespace {

using estimate::estimate_area;
using estimate::estimate_layout;
using estimate::estimate_timing;

TEST(AreaTest, GateCounts) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o1 = new Wire(&hw, 1, "o1");
  Wire* o2 = new Wire(&hw, 1, "o2");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::And2(&hw, a, b, o1);
  new tech::Or2(&hw, a, b, o2);
  new tech::FD(&hw, o1, q);
  auto est = estimate_area(hw);
  EXPECT_EQ(est.luts, 2u);
  EXPECT_EQ(est.ffs, 1u);
  EXPECT_EQ(est.primitives, 3u);
  EXPECT_EQ(est.slices, 1u);  // 2 LUTs fit one slice
}

TEST(AreaTest, AdderUsesCarryChain) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 8, "a");
  Wire* b = new Wire(&hw, 8, "b");
  Wire* s = new Wire(&hw, 8, "s");
  new modgen::CarryChainAdder(&hw, a, b, s);
  auto est = estimate_area(hw);
  EXPECT_EQ(est.luts, 8u);     // one half-sum LUT per bit
  EXPECT_EQ(est.carries, 7u);  // no final carry-out mux
  EXPECT_EQ(est.slices, 4u);
}

TEST(AreaTest, KcmGrowsWithWidth) {
  std::size_t prev = 0;
  for (std::size_t w : {4u, 8u, 16u, 32u}) {
    HWSystem hw;
    Wire* m = new Wire(&hw, w, "m");
    Wire* p = new Wire(&hw, w + 8, "p");
    new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 200);
    auto est = estimate_area(hw);
    EXPECT_GT(est.luts, prev) << "width " << w;
    prev = est.luts;
  }
}

TEST(AreaTest, KcmSmallerThanGenericMultiplier) {
  // The headline claim of the KCM module generator (paper ref [9]).
  for (std::size_t w : {8u, 16u, 24u}) {
    HWSystem hw1;
    Wire* m = new Wire(&hw1, w, "m");
    Wire* p = new Wire(&hw1, 2 * w, "p");
    new modgen::VirtexKCMMultiplier(&hw1, m, p, false, false,
                                    static_cast<int>((1u << w) - 1));
    auto kcm = estimate_area(hw1);

    HWSystem hw2;
    Wire* a = new Wire(&hw2, w, "a");
    Wire* b = new Wire(&hw2, w, "b");
    Wire* q = new Wire(&hw2, 2 * w, "q");
    new modgen::ArrayMultiplier(&hw2, a, b, q);
    auto gen = estimate_area(hw2);

    EXPECT_LT(kcm.luts, gen.luts) << "width " << w;
  }
}

TEST(TimingTest, SingleGate) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::And2(&hw, a, b, o);
  auto est = estimate_timing(hw);
  EXPECT_DOUBLE_EQ(est.comb_delay_ns, tech::timing::kLutDelayNs);
  EXPECT_EQ(est.levels, 1u);
  EXPECT_EQ(est.path.size(), 1u);
}

TEST(TimingTest, ChainAccumulates) {
  HWSystem hw;
  Wire* w0 = new Wire(&hw, 1, "w0");
  Wire* w1 = new Wire(&hw, 1, "w1");
  Wire* w2 = new Wire(&hw, 1, "w2");
  Wire* w3 = new Wire(&hw, 1, "w3");
  new tech::Inv(&hw, w0, w1);
  new tech::Inv(&hw, w1, w2);
  new tech::Inv(&hw, w2, w3);
  auto est = estimate_timing(hw);
  EXPECT_DOUBLE_EQ(est.comb_delay_ns, 3 * tech::timing::kLutDelayNs);
  EXPECT_EQ(est.levels, 3u);
}

TEST(TimingTest, CarryChainFasterThanRipple) {
  HWSystem hw1;
  {
    Wire* a = new Wire(&hw1, 16, "a");
    Wire* b = new Wire(&hw1, 16, "b");
    Wire* s = new Wire(&hw1, 16, "s");
    new modgen::CarryChainAdder(&hw1, a, b, s);
  }
  HWSystem hw2;
  {
    Wire* a = new Wire(&hw2, 16, "a");
    Wire* b = new Wire(&hw2, 16, "b");
    Wire* s = new Wire(&hw2, 16, "s");
    new modgen::RippleAdder(&hw2, a, b, s);
  }
  auto cc = estimate_timing(hw1);
  auto rp = estimate_timing(hw2);
  EXPECT_LT(cc.comb_delay_ns, rp.comb_delay_ns);
}

TEST(TimingTest, PipeliningShortensCriticalPath) {
  HWSystem hw1;
  {
    Wire* m = new Wire(&hw1, 16, "m");
    Wire* p = new Wire(&hw1, 24, "p");
    new modgen::VirtexKCMMultiplier(&hw1, m, p, false, false, 12345);
  }
  HWSystem hw2;
  {
    Wire* m = new Wire(&hw2, 16, "m");
    Wire* p = new Wire(&hw2, 24, "p");
    new modgen::VirtexKCMMultiplier(&hw2, m, p, false, true, 12345);
  }
  auto comb = estimate_timing(hw1);
  auto piped = estimate_timing(hw2);
  EXPECT_LT(piped.comb_delay_ns, comb.comb_delay_ns);
  EXPECT_GT(piped.fmax_mhz, comb.fmax_mhz);
}

TEST(TimingTest, CombCycleThrows) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  new tech::Inv(&hw, a, b);
  new tech::Inv(&hw, b, a);
  EXPECT_THROW(estimate_timing(hw), HdlError);
}

TEST(TimingTest, ReportIsReadable) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 4, "a");
  Wire* b = new Wire(&hw, 4, "b");
  Wire* s = new Wire(&hw, 4, "s");
  new modgen::CarryChainAdder(&hw, a, b, s);
  auto est = estimate_timing(hw);
  std::string report = estimate::timing_report(est);
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_NE(report.find("ns"), std::string::npos);
}

TEST(LayoutTest, UnplacedCircuit) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::Inv(&hw, a, o);
  auto est = estimate_layout(hw);
  EXPECT_FALSE(est.placed);
  EXPECT_EQ(est.width(), 0);
  EXPECT_DOUBLE_EQ(est.density(), 0.0);
}

TEST(LayoutTest, AdderColumn) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 8, "a");
  Wire* b = new Wire(&hw, 8, "b");
  Wire* s = new Wire(&hw, 8, "s");
  new modgen::CarryChainAdder(&hw, a, b, s);
  auto est = estimate_layout(hw);
  EXPECT_TRUE(est.placed);
  EXPECT_EQ(est.width(), 1);   // single column
  EXPECT_EQ(est.height(), 4);  // 8 bits, 2 per slice
  EXPECT_GT(est.density(), 0.9);
}

TEST(LayoutTest, KcmFootprint) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 16, "m");
  Wire* p = new Wire(&hw, 24, "p");
  new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 213);
  auto est = estimate_layout(hw);
  EXPECT_TRUE(est.placed);
  EXPECT_GT(est.width(), 1);
  EXPECT_GT(est.height(), 1);
  EXPECT_GT(est.placed_primitives, 10u);
}

}  // namespace
}  // namespace jhdl
