// Tests for the applet framework: parameter schemas, license gating
// (the capability matrix of Figure 2), the end-to-end applet session of
// Figure 3, black-box models, packaging (Table 1 machinery), and the
// protection measures of Section 4.3.
#include <gtest/gtest.h>

#include "core/applet.h"
#include "core/generators.h"
#include "core/packaging.h"
#include "core/protect.h"
#include "modgen/modgen.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using namespace jhdl::core;

ParamMap kcm_params() {
  return ParamMap()
      .set("input_width", std::int64_t{8})
      .set("product_width", std::int64_t{12})
      .set("constant", std::int64_t{-56})
      .set("signed_mode", true)
      .set("pipelined_mode", true);
}

Applet make_applet(LicenseTier tier) {
  return AppletBuilder()
      .title("KCM Multiplier Evaluation")
      .generator(std::make_shared<KcmGenerator>())
      .license(LicensePolicy::make("acme", tier))
      .build_applet();
}

// ------------------------------------------------------------ parameters

TEST(ParamTest, DefaultsAndValidation) {
  KcmGenerator gen;
  ParamMap empty;
  ParamMap resolved = empty.resolved(gen.params());
  EXPECT_EQ(resolved.get("input_width"), 8);
  EXPECT_EQ(resolved.get("constant"), 1);

  EXPECT_THROW(ParamMap().set("nope", std::int64_t{1}).resolved(gen.params()),
               ParamError);
  EXPECT_THROW(
      ParamMap().set("input_width", std::int64_t{99}).resolved(gen.params()),
      ParamError);
  EXPECT_THROW(
      ParamMap().set("signed_mode", std::int64_t{7}).resolved(gen.params()),
      ParamError);
}

TEST(ParamTest, SchemaDescription) {
  KcmGenerator gen;
  std::string help = describe_schema(gen.params());
  EXPECT_NE(help.find("input_width"), std::string::npos);
  EXPECT_NE(help.find("constant"), std::string::npos);
  EXPECT_NE(help.find("default"), std::string::npos);
}

// -------------------------------------------------------------- features

TEST(FeatureTest, SetOperations) {
  FeatureSet fs{Feature::Estimator};
  EXPECT_TRUE(fs.has(Feature::Estimator));
  EXPECT_FALSE(fs.has(Feature::Netlister));
  fs.add(Feature::Netlister);
  EXPECT_TRUE(fs.has(Feature::Netlister));
  fs.remove(Feature::Netlister);
  EXPECT_FALSE(fs.has(Feature::Netlister));
  EXPECT_EQ(FeatureSet::all().list().size(), 8u);
  EXPECT_NE(fs.to_string().find("estimator"), std::string::npos);
}

TEST(LicenseTest, TierGrants) {
  FeatureSet anon = LicensePolicy::features_for(LicenseTier::Anonymous);
  EXPECT_TRUE(anon.has(Feature::Estimator));
  EXPECT_FALSE(anon.has(Feature::Simulator));
  EXPECT_FALSE(anon.has(Feature::Netlister));

  FeatureSet eval = LicensePolicy::features_for(LicenseTier::Evaluation);
  EXPECT_TRUE(eval.has(Feature::Simulator));
  EXPECT_TRUE(eval.has(Feature::BlackBoxSim));
  EXPECT_FALSE(eval.has(Feature::Netlister));

  FeatureSet lic = LicensePolicy::features_for(LicenseTier::Licensed);
  EXPECT_TRUE(lic.has(Feature::Netlister));
}

// ------------------------------------------------------- applet sessions

TEST(AppletTest, Figure3LicensedSession) {
  Applet applet = make_applet(LicenseTier::Licensed);
  std::string banner = applet.describe();
  EXPECT_NE(banner.find("KCM"), std::string::npos);

  applet.build(kcm_params());
  ASSERT_TRUE(applet.built());

  auto area = applet.area();
  EXPECT_GT(area.luts, 0u);
  auto timing = applet.timing();
  EXPECT_GT(timing.fmax_mhz, 0.0);

  std::string tree = applet.hierarchy();
  EXPECT_NE(tree.find("kcm"), std::string::npos);
  EXPECT_FALSE(applet.schematic_svg().empty());
  EXPECT_NE(applet.layout_text().find("slices"), std::string::npos);

  // Simulate: -56 * 100 = -5600; top 12 of 15 bits.
  applet.sim_put_signed("multiplicand", 100);
  applet.sim_cycle(applet.latency());
  std::uint64_t expected =
      (static_cast<std::uint64_t>(-5600) & 0x7FFF) >> 3;
  EXPECT_EQ(applet.sim_get("product").to_uint(), expected);

  std::string edif = applet.netlist(NetlistFormat::Edif);
  EXPECT_NE(edif.find("(edif"), std::string::npos);
  EXPECT_EQ(applet.meter().netlists(), 1u);
  EXPECT_EQ(applet.meter().builds(), 1u);
}

TEST(AppletTest, Figure2CapabilityMatrix) {
  struct Row {
    LicenseTier tier;
    bool estimator, viewer, simulator, netlister;
  };
  const Row rows[] = {
      {LicenseTier::Anonymous, true, false, false, false},
      {LicenseTier::Evaluation, true, true, true, false},
      {LicenseTier::Licensed, true, true, true, true},
  };
  for (const Row& row : rows) {
    Applet applet = make_applet(row.tier);
    applet.build(kcm_params());
    SCOPED_TRACE(license_tier_name(row.tier));

    if (row.estimator) {
      EXPECT_NO_THROW(applet.area());
    } else {
      EXPECT_THROW(applet.area(), AppletSecurityError);
    }
    if (row.viewer) {
      EXPECT_NO_THROW(applet.hierarchy());
    } else {
      EXPECT_THROW(applet.hierarchy(), AppletSecurityError);
      EXPECT_THROW(applet.layout_text(), AppletSecurityError);
    }
    if (row.simulator) {
      EXPECT_NO_THROW(applet.sim_cycle());
    } else {
      EXPECT_THROW(applet.sim_put("multiplicand", 1), AppletSecurityError);
    }
    if (row.netlister) {
      EXPECT_NO_THROW(applet.netlist(NetlistFormat::Json));
    } else {
      EXPECT_THROW(applet.netlist(NetlistFormat::Edif), AppletSecurityError);
    }
  }
}

TEST(AppletTest, SecurityErrorNamesMissingFeature) {
  Applet applet = make_applet(LicenseTier::Anonymous);
  applet.build(kcm_params());
  try {
    applet.netlist(NetlistFormat::Edif);
    FAIL() << "expected AppletSecurityError";
  } catch (const AppletSecurityError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("netlister"), std::string::npos);
    EXPECT_NE(what.find("anonymous"), std::string::npos);
    EXPECT_NE(what.find("acme"), std::string::npos);
  }
}

TEST(AppletTest, BuildRequiredBeforeTools) {
  Applet applet = make_applet(LicenseTier::Licensed);
  EXPECT_THROW(applet.area(), std::logic_error);
  EXPECT_THROW(applet.sim_cycle(), std::logic_error);
}

TEST(AppletTest, RebuildReplacesInstance) {
  Applet applet = make_applet(LicenseTier::Licensed);
  applet.build(kcm_params());
  auto area1 = applet.area();
  applet.build(ParamMap()
                   .set("input_width", std::int64_t{16})
                   .set("constant", std::int64_t{12345}));
  auto area2 = applet.area();
  EXPECT_GT(area2.luts, area1.luts);
  EXPECT_EQ(applet.meter().builds(), 2u);
}

TEST(AppletTest, WavesAndVcd) {
  Applet applet = make_applet(LicenseTier::Evaluation);
  applet.build(kcm_params());
  applet.watch("multiplicand");
  applet.watch("product");
  applet.sim_put_signed("multiplicand", 3);
  applet.sim_cycle(4);
  std::string waves = applet.waves();
  EXPECT_NE(waves.find("product"), std::string::npos);
  std::string vcd = applet.vcd();
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

TEST(AppletTest, NetlistQuotaEnforced) {
  Applet applet = AppletBuilder()
                      .generator(std::make_shared<KcmGenerator>())
                      .license(LicensePolicy::make("evalco",
                                                   LicenseTier::Licensed))
                      .netlist_quota(2)
                      .build_applet();
  applet.build(kcm_params());
  applet.netlist(NetlistFormat::Edif);
  applet.netlist(NetlistFormat::Vhdl);
  EXPECT_THROW(applet.netlist(NetlistFormat::Verilog), std::runtime_error);
  EXPECT_EQ(applet.meter().netlists(), 2u);
}

TEST(AppletTest, AdderAndFirGenerators) {
  Applet adder = AppletBuilder()
                     .generator(std::make_shared<AdderGenerator>())
                     .license(LicensePolicy::make("x", LicenseTier::Licensed))
                     .build_applet();
  adder.build(ParamMap().set("width", std::int64_t{12}));
  adder.sim_put("a", 1000);
  adder.sim_put("b", 234);
  EXPECT_EQ(adder.sim_get("s").to_uint(), 1234u);

  Applet fir = AppletBuilder()
                   .generator(std::make_shared<FirGenerator>())
                   .license(LicensePolicy::make("x", LicenseTier::Licensed))
                   .build_applet();
  fir.build(ParamMap()
                .set("c0", std::int64_t{2})
                .set("c1", std::int64_t{-3})
                .set("c2", std::int64_t{5})
                .set("c3", std::int64_t{7}));
  fir.sim_put_signed("x", 1);  // impulse
  EXPECT_EQ(fir.sim_get("y").to_int(), 2);
  fir.sim_cycle();
  fir.sim_put_signed("x", 0);
  EXPECT_EQ(fir.sim_get("y").to_int(), -3);
}

// ------------------------------------------------------------- black box

TEST(BlackBoxTest, HidesStructureExposesBehaviour) {
  Applet applet = make_applet(LicenseTier::Evaluation);
  applet.build(kcm_params());
  auto bb = applet.make_black_box();
  ASSERT_NE(bb, nullptr);
  EXPECT_EQ(bb->ip_name(), "kcm-multiplier");
  auto ports = bb->ports();
  EXPECT_EQ(ports.size(), 2u);
  bb->set_input("multiplicand", BitVector::from_int(8, -100));
  bb->cycle(bb->latency());
  std::uint64_t expected =
      (static_cast<std::uint64_t>(std::int64_t{-56} * -100) & 0x7FFF) >> 3;
  EXPECT_EQ(bb->get_output("product").to_uint(), expected);
  // Interface descriptor.
  Json iface = bb->interface_json();
  EXPECT_EQ(iface.at("ip").as_string(), "kcm-multiplier");
  EXPECT_EQ(iface.at("ports").size(), 2u);
  EXPECT_THROW(bb->set_input("no_such", 1), std::out_of_range);
}

// ------------------------------------------------------------- packaging

TEST(PackagingTest, ArchiveRoundTripAndIntegrity) {
  Archive a("demo");
  a.add_text("readme.txt", "hello archive");
  std::vector<std::uint8_t> blob(3000);
  Rng rng(3);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next());
  a.add("data.bin", blob);

  std::vector<std::uint8_t> bytes = a.serialize();
  Archive back = Archive::deserialize(bytes);
  EXPECT_EQ(back.name(), "demo");
  ASSERT_EQ(back.entries().size(), 2u);
  EXPECT_EQ(back.entries()[1].data, blob);

  // Corrupt a byte in the middle -> integrity failure.
  bytes[bytes.size() / 2] ^= 0xFF;
  EXPECT_THROW(Archive::deserialize(bytes), std::runtime_error);
}

TEST(PackagingTest, StandardPartitionsNonEmpty) {
  Packager packager;
  Archive base = packager.base_archive();
  Archive virtex = packager.virtex_archive();
  Archive viewer = packager.viewer_archive();
  KcmGenerator gen;
  Archive applet = packager.applet_archive(gen);
  EXPECT_GT(base.entries().size(), 10u);
  EXPECT_GT(virtex.entries().size(), 5u);
  EXPECT_GT(viewer.entries().size(), 4u);
  EXPECT_GE(applet.entries().size(), 2u);
  // The Table 1 shape: Base > Virtex > Applet; Applet is the smallest.
  EXPECT_GT(base.compressed_size(), virtex.compressed_size());
  EXPECT_GT(virtex.compressed_size(), applet.compressed_size());
  EXPECT_GT(viewer.compressed_size(), applet.compressed_size());
}

TEST(PackagingTest, FeatureClosure) {
  Packager packager;
  KcmGenerator gen;
  // Estimator-only applet skips the viewer archive.
  auto minimal = packager.archives_for(
      LicensePolicy::features_for(LicenseTier::Anonymous), &gen);
  bool has_viewer = false;
  for (const Archive& a : minimal) has_viewer |= (a.name() == "Viewer");
  EXPECT_FALSE(has_viewer);

  auto full = packager.archives_for(
      LicensePolicy::features_for(LicenseTier::Licensed), &gen);
  has_viewer = false;
  for (const Archive& a : full) has_viewer |= (a.name() == "Viewer");
  EXPECT_TRUE(has_viewer);
  EXPECT_GT(full.size(), minimal.size());
}

TEST(PackagingTest, DownloadMath) {
  // 795 kB at 1 Mbps ~ 6.5 seconds.
  double secs = Packager::download_seconds(795 * 1024, 1e6);
  EXPECT_NEAR(secs, 6.51, 0.1);
}

// ------------------------------------------------------------ protection

TEST(ProtectTest, ObfuscationPreservesFunction) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 16, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 201);
  // Snapshot behaviour before.
  Simulator sim(hw);
  std::vector<std::uint64_t> before;
  for (std::uint64_t x = 0; x < 256; ++x) {
    sim.put(m, x);
    before.push_back(sim.get(p).to_uint());
  }
  ObfuscationReport report = obfuscate(*kcm, 42);
  EXPECT_GT(report.cells_renamed, 10u);
  EXPECT_GT(report.nets_renamed, 10u);
  for (std::uint64_t x = 0; x < 256; ++x) {
    sim.put(m, x);
    EXPECT_EQ(sim.get(p).to_uint(), before[x]);
  }
  // Instance names are gone from the netlist (library cell *types* remain
  // visible, as with Java obfuscation: JVM/library symbols stay).
  std::string edif = netlist::write_edif(*kcm);
  EXPECT_EQ(edif.find("(instance rom16"), std::string::npos);
  EXPECT_EQ(edif.find("(instance add"), std::string::npos);
  EXPECT_NE(edif.find("(instance u"), std::string::npos);
}

TEST(ProtectTest, ObfuscationKeepsInterface) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 15, "p");  // full product: 8 + 7 bits
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 77);
  obfuscate(*kcm, 7);
  // Port names survive.
  EXPECT_NE(kcm->find_port("multiplicand"), nullptr);
  EXPECT_NE(kcm->find_port("product"), nullptr);
}

TEST(ProtectTest, WatermarkEmbedExtract) {
  // 6-bit input: top digit has 2 bits -> ROM entries 4..15 are carriers.
  HWSystem hw;
  Wire* m = new Wire(&hw, 6, "m");
  Wire* p = new Wire(&hw, 14, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 201);

  Simulator sim(hw);
  std::vector<std::uint64_t> before;
  for (std::uint64_t x = 0; x < 64; ++x) {
    sim.put(m, x);
    before.push_back(sim.get(p).to_uint());
  }

  Watermarker marker("BYU Configurable Computing Lab");
  std::size_t carriers = marker.embed(*kcm, {});
  EXPECT_GT(carriers, 0u);

  // Function unchanged on all reachable inputs.
  for (std::uint64_t x = 0; x < 64; ++x) {
    sim.put(m, x);
    EXPECT_EQ(sim.get(p).to_uint(), before[x]);
  }

  auto extraction = marker.extract(*kcm, {});
  EXPECT_TRUE(extraction.verified());
  EXPECT_EQ(extraction.carriers, carriers);

  // A different owner's extraction fails.
  Watermarker thief("Someone Else");
  EXPECT_FALSE(thief.extract(*kcm, {}).verified());
}

TEST(ProtectTest, WatermarkSurvivesNetlist) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 6, "m");
  Wire* p = new Wire(&hw, 13, "p");  // full product: 6 + 7 bits
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 99);
  Watermarker marker("vendor-77");
  ASSERT_GT(marker.embed(*kcm, {}), 0u);
  // The watermark rides in the INIT properties of the EDIF output.
  std::string edif = netlist::write_edif(*kcm);
  auto extraction = marker.extract(*kcm, {});
  EXPECT_TRUE(extraction.verified());
  EXPECT_NE(edif.find("INIT_0"), std::string::npos);
}

TEST(ProtectTest, MeterReportAndQuota) {
  Meter meter(1);
  meter.record_build();
  meter.record_simulation_cycles(100);
  meter.record_netlist();
  EXPECT_THROW(meter.record_netlist(), std::runtime_error);
  std::string report = meter.report();
  EXPECT_NE(report.find("builds=1"), std::string::npos);
  EXPECT_NE(report.find("netlists=1/1"), std::string::npos);
}

TEST(ProtectTest, ObfuscatedAppletStillSimulates) {
  Applet applet = AppletBuilder()
                      .generator(std::make_shared<KcmGenerator>())
                      .license(LicensePolicy::make("c", LicenseTier::Licensed))
                      .obfuscated(123)
                      .watermark("vendor-1")
                      .build_applet();
  applet.build(ParamMap()
                   .set("input_width", std::int64_t{6})
                   .set("constant", std::int64_t{11}));
  applet.sim_put("multiplicand", 30);
  EXPECT_EQ(applet.sim_get("product").to_uint(), 330u);
  std::string tree = applet.hierarchy();
  // Below the root line (the IP's public name), instance and macro names
  // are opaque; only library cell types remain visible.
  std::string below_root = tree.substr(tree.find('\n') + 1);
  EXPECT_EQ(below_root.find("kcm_"), std::string::npos)
      << "obfuscated hierarchy should not leak generator naming";
  EXPECT_EQ(below_root.find(": add"), std::string::npos)
      << "macro definition names should be opaque";
}

}  // namespace
}  // namespace jhdl
