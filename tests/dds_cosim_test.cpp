// Tests for the DDS generator, the DDS applet, the memory-contents
// viewer, and the Verilog/PLI co-simulation stub generator.
#include <gtest/gtest.h>

#include <array>

#include "core/applet.h"
#include "core/generators.h"
#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "modgen/dds.h"
#include "net/cosim_stub.h"
#include "sim/simulator.h"
#include "tech/virtex.h"
#include "viewer/memview.h"

namespace jhdl {
namespace {

TEST(DdsTest, SineTableProperties) {
  auto table = modgen::DdsGenerator::sine_table();
  ASSERT_EQ(table.size(), 512u);
  EXPECT_EQ(table[0], 0x80);           // sin(0) = 0 -> midscale
  EXPECT_EQ(table[128], 0xFF);         // sin(pi/2) = +1
  EXPECT_EQ(table[384], 0x01);         // sin(3pi/2) = -1
  // Half-wave symmetry: sin(x) = -sin(x + pi).
  for (std::size_t i = 0; i < 256; ++i) {
    int a = static_cast<int>(table[i]) - 128;
    int b = static_cast<int>(table[i + 256]) - 128;
    EXPECT_NEAR(a, -b, 1) << "i=" << i;
  }
}

TEST(DdsTest, OutputMatchesReference) {
  HWSystem hw;
  Wire* out = new Wire(&hw, 8, "out");
  auto* dds = new modgen::DdsGenerator(&hw, out, 16, 2048);
  Simulator sim(hw);
  EXPECT_FALSE(sim.get(out).is_fully_defined()) << "sync read: X at power-on";
  for (std::uint64_t k = 1; k <= 200; ++k) {
    sim.cycle();
    EXPECT_EQ(sim.get(out).to_uint(), dds->expected_output(k)) << "k=" << k;
  }
}

TEST(DdsTest, ClockEnableFreezes) {
  HWSystem hw;
  Wire* out = new Wire(&hw, 8, "out");
  Wire* ce = new Wire(&hw, 1, "ce");
  new modgen::DdsGenerator(&hw, out, 16, 3000, ce);
  Simulator sim(hw);
  sim.put(ce, 1);
  sim.cycle(5);
  std::uint64_t frozen = sim.get(out).to_uint();
  sim.put(ce, 0);
  sim.cycle(10);
  EXPECT_EQ(sim.get(out).to_uint(), frozen);
  sim.put(ce, 1);
  sim.cycle();
  EXPECT_NE(sim.get(out).to_uint(), frozen);
}

TEST(DdsTest, ParameterValidation) {
  HWSystem hw;
  Wire* out = new Wire(&hw, 8, "out");
  EXPECT_THROW(new modgen::DdsGenerator(&hw, out, 8, 1), HdlError);
  Wire* out2 = new Wire(&hw, 8, "out2");
  EXPECT_THROW(new modgen::DdsGenerator(&hw, out2, 16, 0), HdlError);
  Wire* out3 = new Wire(&hw, 4, "out3");
  EXPECT_THROW(new modgen::DdsGenerator(&hw, out3, 16, 5), HdlError);
}

TEST(DdsAppletTest, DeliveredThroughApplet) {
  using namespace jhdl::core;
  Applet applet = AppletBuilder()
                      .generator(std::make_shared<DdsIpGenerator>())
                      .license(LicensePolicy::make("c", LicenseTier::Licensed))
                      .build_applet();
  applet.build(ParamMap()
                   .set("phase_width", std::int64_t{16})
                   .set("tuning", std::int64_t{1024}));
  auto area = applet.area();
  EXPECT_EQ(area.brams, 1u);
  EXPECT_GT(area.ffs, 0u);
  applet.sim_cycle(4);
  EXPECT_TRUE(applet.sim_get("out").is_fully_defined());
  // Tuning out of range rejected at the parameter interface.
  EXPECT_THROW(applet.build(ParamMap()
                                .set("phase_width", std::int64_t{10})
                                .set("tuning", std::int64_t{5000})),
               ParamError);
}

TEST(MemViewTest, DumpsAllMemoryKinds) {
  HWSystem hw;
  // A ROM.
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* data = new Wire(&hw, 8, "data");
  std::array<std::uint64_t, 16> contents{};
  contents[3] = 0xAB;
  new tech::Rom16(&hw, addr, data, contents);
  // A distributed RAM.
  Wire* a2 = new Wire(&hw, 4, "a2");
  Wire* d2 = new Wire(&hw, 1, "d2");
  Wire* we = new Wire(&hw, 1, "we");
  Wire* o2 = new Wire(&hw, 1, "o2");
  new tech::Ram16x1s(&hw, a2, d2, we, o2, 0x1234);
  // A block RAM with nonzero init.
  Wire* a3 = new Wire(&hw, 9, "a3");
  Wire* d3 = new Wire(&hw, 8, "d3");
  Wire* we3 = new Wire(&hw, 1, "we3");
  Wire* en3 = new Wire(&hw, 1, "en3");
  Wire* o3 = new Wire(&hw, 8, "o3");
  new tech::RamB4S8(&hw, a3, d3, we3, en3, o3, {0xDE, 0xAD});

  std::string dump = viewer::memory_contents(hw);
  EXPECT_NE(dump.find("rom16x8"), std::string::npos);
  EXPECT_NE(dump.find("ab"), std::string::npos);
  EXPECT_NE(dump.find("1234"), std::string::npos);
  EXPECT_NE(dump.find("ramb4_s8"), std::string::npos);
  EXPECT_NE(dump.find("de ad"), std::string::npos);
}

TEST(MemViewTest, NoMemories) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::Inv(&hw, a, o);
  EXPECT_EQ(viewer::memory_contents(hw), "(no memories)\n");
}

TEST(CosimStubTest, VerilogWrapperStructure) {
  using namespace jhdl::core;
  KcmGenerator gen;
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{8})
                        .set("constant", std::int64_t{-56})
                        .resolved(gen.params());
  BlackBoxModel model(gen.build(params), gen.name());
  std::string verilog = net::verilog_pli_wrapper(model, 9000);
  EXPECT_NE(verilog.find("module kcm_multiplier_bb"), std::string::npos);
  EXPECT_NE(verilog.find("input [7:0] multiplicand;"), std::string::npos);
  EXPECT_NE(verilog.find("output reg [14:0] product;"), std::string::npos);
  EXPECT_NE(verilog.find("$jhdl_bb_connect(\"127.0.0.1\", 9000);"),
            std::string::npos);
  EXPECT_NE(verilog.find("$jhdl_bb_set(\"multiplicand\""), std::string::npos);
  EXPECT_NE(verilog.find("$jhdl_bb_get(\"product\""), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);

  std::string c = net::pli_c_skeleton(model, 9000);
  EXPECT_NE(c.find("u32le length"), std::string::npos);
  EXPECT_NE(c.find("jhdl_bb_cycle_call"), std::string::npos);
}

}  // namespace
}  // namespace jhdl
