// VTR-class corpus: differential parity for the four corpus generators.
//
// Every test drives the SAME seeded stimulus through three implementations
// and requires bit-exact agreement on every cycle:
//
//   1. the interpreted simulator over one elaboration,
//   2. the compiled (event-driven opcode) kernel over an independent
//      elaboration of the same parameters,
//   3. the plain-C++ golden model from core/golden.h.
//
// Known-answer anchors pin the golden models themselves to published
// vectors (CRC-32 check value of "123456789", the SHA-1 digest of "abc"),
// so a bug shared by circuit and model would still be caught. The applet
// pipeline test runs each corpus IP through the full delivery flow:
// license -> package -> artifact store -> estimate -> netlist -> compiled
// simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/catalog.h"
#include "core/corpus_generators.h"
#include "core/golden.h"
#include "core/packaging.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using core::BuildResult;
using core::ParamMap;
namespace golden = core::golden;

std::uint64_t mask_of(std::size_t width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

/// Two independent elaborations of one (generator, params) point, one per
/// simulator engine, driven in lockstep. get() asserts interpreter /
/// compiled parity and returns the (agreed) value.
class DiffPair {
 public:
  DiffPair(const core::ModuleGenerator& gen, const ParamMap& params)
      : a_(gen.build(params)), b_(gen.build(params)) {
    SimOptions interp_opt;
    interp_opt.mode = SimMode::Interpreted;
    interp_ = std::make_unique<Simulator>(*a_.system, interp_opt);
    SimOptions comp_opt;
    comp_opt.mode = SimMode::Compiled;
    comp_ = std::make_unique<Simulator>(*b_.system, comp_opt);
  }

  void put(const std::string& name, std::uint64_t value) {
    Wire* w = a_.inputs.at(name);
    interp_->put(w, BitVector::from_uint(w->width(), value));
    comp_->put(b_.inputs.at(name),
               BitVector::from_uint(w->width(), value));
  }

  void cycle() {
    interp_->cycle();
    comp_->cycle();
  }

  void reset() {
    interp_->reset();
    comp_->reset();
  }

  BitVector get(const std::string& name) {
    const BitVector vi = interp_->get(a_.outputs.at(name));
    const BitVector vc = comp_->get(b_.outputs.at(name));
    EXPECT_EQ(vi.to_string(), vc.to_string())
        << "interp/compiled divergence on output '" << name << "'";
    return vi;
  }

  std::uint64_t get_uint(const std::string& name) {
    return get(name).to_uint();
  }

  const BuildResult& build() const { return a_; }

 private:
  BuildResult a_, b_;
  std::unique_ptr<Simulator> interp_, comp_;
};

// ----------------------------------------------------- systolic array

void run_systolic_case(std::int64_t rows, std::int64_t cols,
                       std::int64_t data_width, std::int64_t guard_bits,
                       int cycles, std::uint64_t seed) {
  core::SystolicArrayGenerator gen;
  const ParamMap params = ParamMap()
                              .set("rows", rows)
                              .set("cols", cols)
                              .set("data_width", data_width)
                              .set("guard_bits", guard_bits)
                              .resolved(gen.params());
  DiffPair sims(gen, params);
  golden::SystolicModel model(rows, cols, data_width, guard_bits);
  const std::size_t aw = core::SystolicArrayGenerator::acc_width(
      static_cast<std::size_t>(data_width),
      static_cast<std::size_t>(guard_bits));

  Rng rng(seed);
  for (int t = 0; t < cycles; ++t) {
    const std::uint64_t a = rng.next() & mask_of(rows * data_width);
    const std::uint64_t b = rng.next() & mask_of(cols * data_width);
    const bool clr = rng.below(8) == 0;
    sims.put("a", a);
    sims.put("b", b);
    sims.put("clr", clr ? 1 : 0);
    sims.cycle();
    model.step(a, b, clr);
    const BitVector acc = sims.get("acc");
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const std::size_t idx = static_cast<std::size_t>(r * cols + c);
        EXPECT_EQ(acc.slice(idx * aw, aw).to_uint(), model.acc(r, c))
            << "PE (" << r << "," << c << ") cycle " << t;
      }
    }
  }
}

TEST(CorpusSystolicTest, SinglePeParity) {
  run_systolic_case(1, 1, 2, 0, 48, 0x5157011C01);
}

TEST(CorpusSystolicTest, RectangularGridParity) {
  run_systolic_case(2, 3, 4, 4, 48, 0x5157011C02);
}

TEST(CorpusSystolicTest, WideDataParity) {
  run_systolic_case(4, 2, 8, 0, 32, 0x5157011C03);
}

TEST(CorpusSystolicTest, MaxGridParity) {
  run_systolic_case(4, 4, 4, 8, 24, 0x5157011C04);
}

/// A held clr drains the pipeline registers too: after rows+cols cycles of
/// clr with zero operands, every accumulator must read zero.
TEST(CorpusSystolicTest, ClearDrains) {
  core::SystolicArrayGenerator gen;
  const ParamMap params = ParamMap().resolved(gen.params());
  DiffPair sims(gen, params);
  Rng rng(0x5157011C05);
  for (int t = 0; t < 16; ++t) {
    sims.put("a", rng.next());
    sims.put("b", rng.next());
    sims.put("clr", 0);
    sims.cycle();
  }
  sims.put("a", 0);
  sims.put("b", 0);
  sims.put("clr", 1);
  for (std::size_t t = 0; t < sims.build().latency + 1; ++t) sims.cycle();
  EXPECT_EQ(sims.get_uint("acc"), 0u);
}

// ---------------------------------------------------------- hash pipe

void run_crc_case(std::int64_t data_width, std::uint32_t poly, int cycles,
                  std::uint64_t seed) {
  core::HashPipeGenerator gen;
  const ParamMap params =
      ParamMap()
          .set("algo", false)
          .set("data_width", data_width)
          .set("poly", static_cast<std::int64_t>(poly))
          .resolved(gen.params());
  DiffPair sims(gen, params);
  golden::CrcModel model(poly, static_cast<std::size_t>(data_width));

  Rng rng(seed);
  for (int t = 0; t < cycles; ++t) {
    // Exercise Simulator::reset() mid-stream once: the FD INIT attribute
    // must restore the 0xFFFFFFFF preset, not zero.
    if (t == cycles / 2) {
      sims.reset();
      model.reset();
    }
    const std::uint64_t d = rng.next() & mask_of(data_width);
    sims.put("d", d);
    sims.cycle();
    model.step(static_cast<std::uint32_t>(d));
    EXPECT_EQ(sims.get_uint("crc"), model.state())
        << "data_width=" << data_width << " poly=0x" << std::hex << poly
        << std::dec << " cycle " << t;
  }
}

TEST(CorpusCrcTest, BitSerialParity) {
  run_crc_case(1, 0xEDB88320u, 96, 0xC4C101);
}

TEST(CorpusCrcTest, ByteWideParity) {
  run_crc_case(8, 0xEDB88320u, 64, 0xC4C102);
}

TEST(CorpusCrcTest, WordWideParity) {
  run_crc_case(32, 0xEDB88320u, 48, 0xC4C103);
}

TEST(CorpusCrcTest, Crc32cPolynomialParity) {
  run_crc_case(8, 0x82F63B78u, 64, 0xC4C104);
}

/// The published CRC-32 check value: CRC32("123456789") == 0xCBF43926.
/// The register holds the pre-inversion state, so state ^ 0xFFFFFFFF is
/// the transmitted CRC.
TEST(CorpusCrcTest, KnownAnswer123456789) {
  core::HashPipeGenerator gen;
  const ParamMap params = ParamMap()
                              .set("algo", false)
                              .set("data_width", std::int64_t{8})
                              .resolved(gen.params());
  DiffPair sims(gen, params);
  for (const char ch : std::string("123456789")) {
    sims.put("d", static_cast<unsigned char>(ch));
    sims.cycle();
  }
  EXPECT_EQ(sims.get_uint("crc") ^ 0xFFFFFFFFu, 0xCBF43926u);
}

TEST(CorpusSha1Test, RandomScheduleParity) {
  core::HashPipeGenerator gen;
  const ParamMap params =
      ParamMap().set("algo", true).resolved(gen.params());
  DiffPair sims(gen, params);
  golden::Sha1Model model;

  Rng rng(0x514A1);
  for (int t = 0; t < 120; ++t) {
    if (t == 60) {
      sims.reset();
      model.reset();
    }
    const std::uint32_t w = static_cast<std::uint32_t>(rng.next());
    const unsigned stage = static_cast<unsigned>(rng.below(4));
    const bool load_w = rng.coin();
    sims.put("w", w);
    sims.put("stage", stage);
    sims.put("load_w", load_w ? 1 : 0);
    sims.cycle();
    model.step(w, stage, load_w);
    const BitVector digest = sims.get("digest");
    EXPECT_EQ(digest.slice(128, 32).to_uint(), model.a()) << "cycle " << t;
    EXPECT_EQ(digest.slice(96, 32).to_uint(), model.b()) << "cycle " << t;
    EXPECT_EQ(digest.slice(64, 32).to_uint(), model.c()) << "cycle " << t;
    EXPECT_EQ(digest.slice(32, 32).to_uint(), model.d()) << "cycle " << t;
    EXPECT_EQ(digest.slice(0, 32).to_uint(), model.e()) << "cycle " << t;
  }
}

/// FIPS 180 test vector: SHA1("abc"). One padded block, 80 rounds with the
/// external controller sequence (load_w for rounds 0..15, stage = t/20),
/// final digest words H_i + working register mod 2^32.
TEST(CorpusSha1Test, KnownAnswerAbc) {
  core::HashPipeGenerator gen;
  const ParamMap params =
      ParamMap().set("algo", true).resolved(gen.params());
  DiffPair sims(gen, params);

  std::uint32_t block[16] = {0x61626380u, 0, 0, 0, 0, 0, 0, 0,
                             0,           0, 0, 0, 0, 0, 0, 0x18u};
  for (int t = 0; t < 80; ++t) {
    sims.put("w", t < 16 ? block[t] : 0);
    sims.put("stage", static_cast<std::uint64_t>(t / 20));
    sims.put("load_w", t < 16 ? 1 : 0);
    sims.cycle();
  }
  const BitVector digest = sims.get("digest");
  const std::uint32_t h_init[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                   0x10325476u, 0xC3D2E1F0u};
  const std::uint32_t expected[5] = {0xA9993E36u, 0x4706816Au, 0xBA3E2571u,
                                     0x7850C26Cu, 0x9CD0D89Du};
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t reg = static_cast<std::uint32_t>(
        digest.slice(static_cast<std::size_t>(128 - 32 * i), 32).to_uint());
    EXPECT_EQ(h_init[i] + reg, expected[i]) << "digest word " << i;
  }
}

// ------------------------------------------------------------ CORDIC

TEST(CorpusCordicTest, CombinationalParity) {
  core::CordicGenerator gen;
  const ParamMap params = ParamMap()
                              .set("width", std::int64_t{12})
                              .set("stages", std::int64_t{8})
                              .set("pipelined", false)
                              .resolved(gen.params());
  DiffPair sims(gen, params);
  EXPECT_EQ(sims.build().latency, 0u);
  golden::CordicModel model(12, 8);

  Rng rng(0xC04D1C01ULL);
  for (int t = 0; t < 48; ++t) {
    const std::uint64_t x = rng.next() & mask_of(12);
    const std::uint64_t y = rng.next() & mask_of(12);
    const std::uint64_t z = rng.next() & mask_of(12);
    sims.put("x", x);
    sims.put("y", y);
    sims.put("z", z);
    std::uint64_t xr, yr, zr;
    model.rotate(x, y, z, xr, yr, zr);
    EXPECT_EQ(sims.get_uint("xr"), xr) << "vector " << t;
    EXPECT_EQ(sims.get_uint("yr"), yr) << "vector " << t;
    EXPECT_EQ(sims.get_uint("zr"), zr) << "vector " << t;
  }
}

TEST(CorpusCordicTest, PipelinedParity) {
  const std::size_t width = 16, stages = 6;
  core::CordicGenerator gen;
  const ParamMap params =
      ParamMap()
          .set("width", static_cast<std::int64_t>(width))
          .set("stages", static_cast<std::int64_t>(stages))
          .set("pipelined", true)
          .resolved(gen.params());
  DiffPair sims(gen, params);
  EXPECT_EQ(sims.build().latency, stages);
  golden::CordicModel model(width, stages);

  Rng rng(0xC04D1C02ULL);
  struct Vec {
    std::uint64_t x, y, z;
  };
  std::vector<Vec> history;
  for (std::size_t t = 1; t <= 64; ++t) {
    const Vec in{rng.next() & mask_of(width), rng.next() & mask_of(width),
                 rng.next() & mask_of(width)};
    history.push_back(in);
    sims.put("x", in.x);
    sims.put("y", in.y);
    sims.put("z", in.z);
    sims.cycle();
    // Interp/compiled parity every cycle (even while the pipe fills)...
    const std::uint64_t xr = sims.get_uint("xr");
    const std::uint64_t yr = sims.get_uint("yr");
    const std::uint64_t zr = sims.get_uint("zr");
    // ...golden parity once the pipeline is full: after edge t the output
    // is the rotation of the input applied at edge t - stages + 1.
    if (t >= stages) {
      const Vec& src = history[t - stages];
      std::uint64_t ex, ey, ez;
      model.rotate(src.x, src.y, src.z, ex, ey, ez);
      EXPECT_EQ(xr, ex) << "edge " << t;
      EXPECT_EQ(yr, ey) << "edge " << t;
      EXPECT_EQ(zr, ez) << "edge " << t;
    }
  }
}

/// z = 0 must rotate by (nearly) nothing: x grows by only the CORDIC gain,
/// never flips sign, for a safely small input.
TEST(CorpusCordicTest, ZeroAngleKeepsQuadrant) {
  core::CordicGenerator gen;
  const ParamMap params = ParamMap()
                              .set("width", std::int64_t{16})
                              .set("stages", std::int64_t{12})
                              .set("pipelined", false)
                              .resolved(gen.params());
  DiffPair sims(gen, params);
  sims.put("x", 1000);
  sims.put("y", 0);
  sims.put("z", 0);
  const std::int64_t xr =
      BitVector::from_uint(16, sims.get_uint("xr")).to_int();
  // CORDIC gain K ~ 1.6468; allow the rounding of 12 stages.
  EXPECT_GT(xr, 1500);
  EXPECT_LT(xr, 1800);
}

// ------------------------------------------------------------ rf-alu

void run_rf_alu_case(std::int64_t regs, std::int64_t width, int cycles,
                     std::uint64_t seed) {
  core::RfAluGenerator gen;
  const ParamMap params = ParamMap()
                              .set("regs", regs)
                              .set("width", width)
                              .resolved(gen.params());
  DiffPair sims(gen, params);
  golden::RfAluModel model(static_cast<std::size_t>(regs),
                           static_cast<std::size_t>(width));
  const std::size_t abits =
      core::RfAluGenerator::addr_width(static_cast<std::size_t>(regs));

  Rng rng(seed);
  for (int t = 0; t < cycles; ++t) {
    // Full address range on purpose: addresses >= regs must read zero and
    // drop writes, in circuit and model alike.
    const std::uint64_t ra = rng.next() & mask_of(abits);
    const std::uint64_t rb = rng.next() & mask_of(abits);
    const std::uint64_t wa = rng.next() & mask_of(abits);
    const bool we = rng.below(4) != 0;
    const unsigned op = static_cast<unsigned>(rng.below(8));
    const std::uint64_t imm = rng.next() & mask_of(width);
    const bool use_imm = rng.coin();
    sims.put("ra", ra);
    sims.put("rb", rb);
    sims.put("wa", wa);
    sims.put("we", we ? 1 : 0);
    sims.put("op", op);
    sims.put("imm", imm);
    sims.put("use_imm", use_imm ? 1 : 0);
    sims.cycle();
    const golden::RfAluModel::Out out =
        model.step(ra, rb, wa, we, op, imm, use_imm);
    EXPECT_EQ(sims.get_uint("result"), out.result)
        << "regs=" << regs << " width=" << width << " cycle " << t
        << " op=" << op;
    EXPECT_EQ(sims.get_uint("zero"), out.zero ? 1u : 0u)
        << "regs=" << regs << " width=" << width << " cycle " << t;
  }
}

TEST(CorpusRfAluTest, DefaultShapeParity) {
  run_rf_alu_case(8, 16, 96, 0x2FA101);
}

TEST(CorpusRfAluTest, NonPowerOfTwoRegsParity) {
  run_rf_alu_case(5, 8, 96, 0x2FA102);
}

TEST(CorpusRfAluTest, MinimalShapeParity) {
  run_rf_alu_case(2, 2, 96, 0x2FA103);
}

TEST(CorpusRfAluTest, MaxShapeParity) {
  run_rf_alu_case(16, 32, 64, 0x2FA104);
}

// ------------------------------------------- catalog & applet pipeline

TEST(CorpusCatalogTest, StandardCatalogRegistersEverything) {
  const core::IpCatalog catalog = core::standard_catalog();
  EXPECT_EQ(catalog.size(), 9u);
  for (const char* name :
       {"kcm-multiplier", "carry-adder", "fir4-filter", "gate-net",
        "dds-synth", "systolic-array", "hash-pipe", "cordic-rotator",
        "rf-alu"}) {
    EXPECT_NE(catalog.find(name), nullptr) << name;
  }
  const std::string listing = catalog.listing();
  EXPECT_NE(listing.find("systolic-array"), std::string::npos);
  EXPECT_NE(listing.find("cordic-rotator"), std::string::npos);
}

/// Every corpus IP through the full delivery pipeline: license ->
/// package -> artifact store -> estimate -> netlist -> compiled sim.
TEST(CorpusAppletTest, FullPipelineEveryCorpusIp) {
  const core::IpCatalog catalog = core::standard_catalog();
  auto store = std::make_shared<core::ArtifactStore>();
  const auto license =
      core::LicensePolicy::make("corpus-lab", core::LicenseTier::Licensed);

  for (const char* name :
       {"systolic-array", "hash-pipe", "cordic-rotator", "rf-alu"}) {
    SCOPED_TRACE(name);
    core::Applet applet = catalog.make_applet(name, license, store);
    applet.build(ParamMap());  // schema defaults
    ASSERT_TRUE(applet.built());
    EXPECT_NE(applet.artifact(), nullptr);

    const auto area = applet.area();
    EXPECT_GT(area.luts + area.ffs, 0u);
    EXPECT_GT(applet.timing().period_ns, 0.0);

    const std::string edif = applet.netlist(core::NetlistFormat::Edif);
    EXPECT_NE(edif.find("(edif "), std::string::npos);
    EXPECT_FALSE(applet.netlist(core::NetlistFormat::Json).empty());

    const auto report = applet.download_report();
    EXPECT_GT(report.total_compressed, 0u);
    EXPECT_LT(report.total_compressed, report.total_raw);

    // Compiled sim through the artifact's shared program.
    applet.sim_reset();
    applet.sim_cycle(4);
  }

  // A second customer over the same store elaborates nothing new.
  core::ArtifactStore::Stats before = store->stats();
  core::Applet again = catalog.make_applet(
      "cordic-rotator",
      core::LicensePolicy::make("other-lab", core::LicenseTier::Licensed),
      store);
  again.build(ParamMap());
  core::ArtifactStore::Stats after = store->stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(after.hits, before.hits);
}

}  // namespace
}  // namespace jhdl
