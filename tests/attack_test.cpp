// Tests for the adversarial IP-extraction harness and the hardened
// protection loop (src/attack): exact cone recovery over the black-box
// port oracle, query-budget accounting, QueryAuditor trip/clear
// behaviour, the delivery service's audit path (throttle and park over
// the wire, clean pass-through for licensed workloads), per-archive key
// separation in the secure channel, and watermark survival.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/auditor.h"
#include "attack/extractor.h"
#include "attack/oracle.h"
#include "attack/watermark_eval.h"
#include "core/blackbox.h"
#include "core/catalog.h"
#include "core/generators.h"
#include "core/secure.h"
#include "net/sim_client.h"
#include "obs/metrics.h"
#include "server/delivery_service.h"
#include "util/cipher.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using namespace jhdl::attack;
using namespace jhdl::core;

std::unique_ptr<BlackBoxModel> make_gate_net(std::int64_t in_w,
                                             std::int64_t out_w,
                                             std::int64_t depth,
                                             std::int64_t seed) {
  GateNetGenerator gen;
  ParamMap p = ParamMap()
                   .set("input_width", in_w)
                   .set("output_width", out_w)
                   .set("depth", depth)
                   .set("seed", seed)
                   .resolved(gen.params());
  return std::make_unique<BlackBoxModel>(gen.build(p), gen.name());
}

std::map<std::string, BitVector> image8(std::uint64_t v) {
  std::map<std::string, BitVector> image;
  image.emplace("in", BitVector::from_uint(8, v));
  return image;
}

// ------------------------------------------------------------ oracle

TEST(QueryBudgetTest, SpendRefundExhaust) {
  QueryBudget budget(10);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_TRUE(budget.try_spend(8));
  EXPECT_FALSE(budget.try_spend(3));  // would exceed; nothing spent
  EXPECT_EQ(budget.spent(), 8u);
  EXPECT_TRUE(budget.try_spend(2));
  EXPECT_TRUE(budget.exhausted());
  budget.refund(1);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.spent(), 9u);
  QueryBudget unlimited(0);
  EXPECT_TRUE(unlimited.try_spend(1u << 20));
  EXPECT_FALSE(unlimited.exhausted());
}

TEST(ModelOracleTest, CombinationalQueryCostsOneUnit) {
  auto model = make_gate_net(6, 3, 2, 11);
  ModelOracle oracle(*model);
  EXPECT_EQ(oracle.latency(), 0u);
  std::map<std::string, BitVector> out;
  std::map<std::string, BitVector> image;
  image.emplace("in", BitVector::from_uint(6, 5));
  ASSERT_TRUE(oracle.query(image, out));
  EXPECT_EQ(oracle.queries(), 1u);
  ASSERT_TRUE(out.count("out"));
  EXPECT_EQ(out.at("out").width(), 3u);
}

TEST(ModelOracleTest, SequentialQueryChargesTheReset) {
  // A pipelined KCM has nonzero latency; every deterministic query needs
  // a reset round trip, which the oracle charges as a second unit.
  KcmGenerator gen;
  ParamMap p = ParamMap()
                   .set("input_width", std::int64_t{6})
                   .set("constant", std::int64_t{9})
                   .set("pipelined_mode", std::int64_t{1})
                   .resolved(gen.params());
  BlackBoxModel model(gen.build(p), gen.name());
  ASSERT_GT(model.latency(), 0u);
  ModelOracle oracle(model);
  std::map<std::string, BitVector> out;
  std::map<std::string, BitVector> image;
  image.emplace("multiplicand", BitVector::from_uint(6, 3));
  ASSERT_TRUE(oracle.query(image, out));
  EXPECT_EQ(oracle.queries(), 2u);
  // Same image, same answer: the reset makes queries reproducible.
  std::map<std::string, BitVector> again;
  ASSERT_TRUE(oracle.query(image, again));
  EXPECT_EQ(out, again);
}

// --------------------------------------------------------- extractor

TEST(ConeExtractorTest, ExactRecoveryOfSmallGateNetwork) {
  auto model = make_gate_net(8, 4, 3, 7);
  ModelOracle oracle(*model);
  QueryBudget budget(0);
  ExtractionReport report =
      ConeExtractor().extract(oracle, budget, "gate-net");
  EXPECT_TRUE(report.exhaustive);
  EXPECT_EQ(report.queries_spent, 256u);
  ASSERT_EQ(report.cones.size(), 4u);
  for (const ConeReport& cone : report.cones) {
    EXPECT_TRUE(cone.exact) << cone.output << "[" << cone.bit << "]";
    EXPECT_DOUBLE_EQ(cone.confidence, 1.0);
  }
  EXPECT_DOUBLE_EQ(report.recovered_bits, report.total_bits);
  EXPECT_DOUBLE_EQ(report.recovered_fraction(), 1.0);

  // The learned tables must actually predict the oracle.
  auto fresh = make_gate_net(8, 4, 3, 7);
  Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = rng.below(256);
    for (std::size_t b = 0; b < 4; ++b) {
      fresh->set_input("in", BitVector::from_uint(8, v));
      const BitVector out = fresh->get_output("out");
      auto predicted =
          ConeExtractor::predict(report.cones[b], image8(v));
      ASSERT_TRUE(predicted.has_value());
      EXPECT_EQ(*predicted, out.get(report.cones[b].bit) == Logic4::One)
          << "cone " << b << " at input " << v;
    }
  }
}

TEST(ConeExtractorTest, BudgetBoundsTheAttack) {
  auto model = make_gate_net(8, 4, 3, 7);
  ModelOracle oracle(*model);
  QueryBudget budget(64);
  ExtractionReport report =
      ConeExtractor().extract(oracle, budget, "gate-net");
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_LE(report.queries_spent, 64u);
  EXPECT_LE(oracle.queries(), 64u);
  EXPECT_LT(report.recovered_bits, report.total_bits);
}

TEST(ConeExtractorTest, AuditedOracleLowersTheScore) {
  ExtractorConfig cfg;
  auto open_model = make_gate_net(8, 4, 3, 7);
  ModelOracle open_oracle(*open_model);
  QueryBudget open_budget(1024);
  ExtractionReport open_report =
      ConeExtractor(cfg).extract(open_oracle, open_budget, "open");

  auto audited_model = make_gate_net(8, 4, 3, 7);
  ModelOracle inner(*audited_model);
  AuditorConfig acfg;
  acfg.window = 32;
  QueryAuditor auditor(acfg);
  AuditedOracle audited_oracle(inner, auditor);
  QueryBudget audited_budget(1024);
  ExtractionReport audited_report =
      ConeExtractor(cfg).extract(audited_oracle, audited_budget, "audited");

  EXPECT_GT(open_report.score_per_10k(), 0.0);
  EXPECT_GT(audited_report.queries_throttled, 0u);
  EXPECT_LT(audited_report.score_per_10k(), open_report.score_per_10k());
  EXPECT_TRUE(auditor.tripped());
}

// ----------------------------------------------------------- auditor

AuditorConfig small_auditor() {
  AuditorConfig cfg;
  cfg.window = 16;
  cfg.throttle_queries = 8;
  cfg.park_after_trips = 3;
  return cfg;
}

TEST(QueryAuditorTest, ExhaustiveSweepTripsCoverageDetector) {
  QueryAuditor auditor(small_auditor());
  Verdict verdict = Verdict::Allow;
  std::uint64_t allowed = 0;
  for (std::uint64_t v = 0; v < 256; ++v) {
    verdict = auditor.observe(image8(v));
    if (verdict != Verdict::Allow) break;
    ++allowed;
  }
  EXPECT_EQ(verdict, Verdict::Throttle);
  // Coverage threshold 0.5 of the 8-bit space: trips at half the sweep.
  EXPECT_EQ(allowed, 127u);
  EXPECT_TRUE(auditor.tripped());
  EXPECT_EQ(auditor.trips(), 1u);
  // The cooldown refuses the next throttle_queries observations.
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NE(auditor.observe(image8(1)), Verdict::Allow);
  }
  EXPECT_GE(auditor.throttled(), 8u);
}

TEST(QueryAuditorTest, PersistentSweepEscalatesToPark) {
  QueryAuditor auditor(small_auditor());
  Verdict verdict = Verdict::Allow;
  // Keep sweeping through cooldowns; coverage is cumulative, so every
  // post-cooldown observation re-trips until the session is parked.
  for (std::uint64_t v = 0; v < 2048 && verdict != Verdict::Park; ++v) {
    verdict = auditor.observe(image8(v & 0xFF));
  }
  EXPECT_EQ(verdict, Verdict::Park);
  EXPECT_GE(auditor.trips(), 3u);
}

TEST(QueryAuditorTest, RandomProbingTripsFlipDetector) {
  AuditorConfig cfg = small_auditor();
  cfg.coverage_threshold = 0.0;  // isolate the probing detector
  QueryAuditor auditor(cfg);
  Rng rng(5);
  Verdict verdict = Verdict::Allow;
  std::size_t queries = 0;
  double rate_at_trip = 0.0;
  while (verdict == Verdict::Allow && queries < 512) {
    // Sample the window just before each observation: trip() re-arms
    // (clears) the probing window, so the interesting reading is the
    // one that caused the trip, not the post-trip state.
    rate_at_trip = auditor.window_flip_rate();
    verdict = auditor.observe(image8(rng.below(256)));
    ++queries;
  }
  EXPECT_EQ(verdict, Verdict::Throttle);
  EXPECT_NEAR(rate_at_trip, 0.5, 0.15);
}

TEST(QueryAuditorTest, CorrelatedWorkloadStaysAllowed) {
  QueryAuditor auditor(small_auditor());
  // Triangle wave with unit steps: a licensed customer streaming real
  // samples. Low coverage, low flip rate - never suspicious.
  std::uint64_t sample = 100;
  std::int64_t step = 1;
  for (int i = 0; i < 4000; ++i) {
    EXPECT_EQ(auditor.observe(image8(sample)), Verdict::Allow);
    if (sample >= 160) step = -1;
    if (sample <= 100) step = 1;
    sample = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(sample) + step);
  }
  EXPECT_EQ(auditor.trips(), 0u);
  EXPECT_EQ(auditor.throttled(), 0u);
}

TEST(QueryAuditorTest, HardBudgetAndClear) {
  AuditorConfig cfg = small_auditor();
  cfg.max_queries = 10;
  QueryAuditor auditor(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(auditor.observe(image8(100)), Verdict::Allow);
  }
  EXPECT_NE(auditor.observe(image8(100)), Verdict::Allow);
  EXPECT_TRUE(auditor.tripped());
  auditor.clear();
  // clear() forgives the cooldown and the detectors but not the trip
  // count - an admin reset does not launder the session's history.
  EXPECT_EQ(auditor.observe(image8(100)), Verdict::Allow);
}

TEST(QueryAuditorTest, RateDetectorUsesInjectedTimestamps) {
  AuditorConfig cfg = small_auditor();
  cfg.coverage_threshold = 0.0;
  cfg.flip_low = 0.0;
  cfg.rate_window_us = 1000;
  cfg.rate_max_queries = 4;
  QueryAuditor auditor(cfg);
  // 5 queries within one 1 ms window: the fifth trips the rate check.
  std::uint64_t t = 1;
  Verdict verdict = Verdict::Allow;
  for (int i = 0; i < 5; ++i) verdict = auditor.observe(image8(7), t += 10);
  EXPECT_EQ(verdict, Verdict::Throttle);
}

TEST(QueryAuditorTest, ExportsAttackMetrics) {
  obs::MetricsRegistry metrics;
  QueryAuditor auditor(small_auditor(), &metrics);
  for (std::uint64_t v = 0; v < 200; ++v) auditor.observe(image8(v));
  EXPECT_GE(metrics.counter("attack.queries").value(), 200u);
  EXPECT_GE(metrics.counter("attack.trips").value(), 1u);
  EXPECT_GE(metrics.counter("attack.throttled").value(), 1u);
}

// ----------------------------------------------- delivery service audit

server::DeliveryConfig audited_config() {
  server::DeliveryConfig config;
  config.workers = 2;
  config.audit = true;
  config.auditor.window = 16;
  config.auditor.throttle_queries = 4;
  config.auditor.park_after_trips = 8;
  return config;
}

IpCatalog attack_catalog() {
  IpCatalog catalog;
  catalog.add(std::make_shared<GateNetGenerator>());
  catalog.add(std::make_shared<KcmGenerator>());
  return catalog;
}

TEST(DeliveryAuditTest, SweepingSessionGetsThrottledOverTheWire) {
  server::DeliveryService service(attack_catalog(), audited_config());
  service.add_license(LicensePolicy::make("mallory", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();
  net::ConnectSpec spec;
  spec.customer = "mallory";
  spec.module = "gate-net";
  net::SimClient client(port, spec);
  std::size_t served = 0;
  bool throttled = false;
  std::string error_text;
  for (std::uint64_t v = 0; v < 256; ++v) {
    try {
      client.eval(image8(v), 0);
      ++served;
    } catch (const net::NetError& e) {
      throttled = true;
      error_text = e.what();
      EXPECT_TRUE(e.retryable());  // Throttled is retry-with-backoff
      break;
    }
  }
  EXPECT_TRUE(throttled);
  EXPECT_EQ(served, 127u);  // coverage trip at half the 8-bit space
  EXPECT_NE(error_text.find("auditor"), std::string::npos) << error_text;
  // The trip is visible to admin tooling as attack.* metrics.
  Json metrics = server::query_metrics(port);
  client.bye();
  service.stop();
  EXPECT_GE(metrics.at("counters").at("attack.trips").as_int(), 1);
  EXPECT_GE(metrics.at("counters").at("attack.throttled").as_int(), 1);
}

TEST(DeliveryAuditTest, PersistentOffenderIsParked) {
  server::DeliveryConfig config = audited_config();
  config.auditor.throttle_queries = 2;
  config.auditor.park_after_trips = 1;
  server::DeliveryService service(attack_catalog(), config);
  service.add_license(LicensePolicy::make("mallory", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();
  net::ConnectSpec spec;
  spec.customer = "mallory";
  spec.module = "gate-net";
  net::SimClient client(port, spec);
  // Sweep until parked: after the first trip every refusal answers Park,
  // the session is evicted and the stream dies under the client.
  bool parked = false;
  for (std::uint64_t v = 0; v < 1024 && !parked; ++v) {
    try {
      client.eval(image8(v & 0xFF), 0);
    } catch (const net::NetError& e) {
      parked = std::string(e.what()).find("parked") != std::string::npos ||
               !e.retryable();
      if (std::string(e.what()).find("parked") != std::string::npos) break;
    }
  }
  EXPECT_TRUE(parked);
  service.stop();
  EXPECT_GE(service.stats().to_json().at("sessions_evicted").as_int(), 1);
}

TEST(DeliveryAuditTest, LicensedWorkloadPassesUntouched) {
  server::DeliveryService service(attack_catalog(), audited_config());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();
  net::ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "kcm-multiplier";
  spec.params = {{"input_width", 8}, {"constant", 201}};
  net::SimClient client(port, spec);

  // Local golden model of the same configuration.
  KcmGenerator gen;
  ParamMap p = ParamMap()
                   .set("input_width", std::int64_t{8})
                   .set("constant", std::int64_t{201})
                   .resolved(gen.params());
  BlackBoxModel golden(gen.build(p), gen.name());

  std::uint64_t sample = 100;
  std::int64_t step = 1;
  for (int i = 0; i < 400; ++i) {
    std::map<std::string, BitVector> inputs;
    inputs.emplace("multiplicand", BitVector::from_uint(8, sample));
    std::map<std::string, BitVector> remote;
    ASSERT_NO_THROW(remote = client.eval(inputs, 0)) << "sample " << i;
    golden.set_input("multiplicand", BitVector::from_uint(8, sample));
    EXPECT_EQ(remote.at("product"), golden.get_output("product"));
    if (sample >= 160) step = -1;
    if (sample <= 100) step = 1;
    sample = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(sample) + step);
  }
  Json metrics = server::query_metrics(port);
  client.bye();
  service.stop();
  EXPECT_EQ(metrics.at("counters").at("attack.trips").as_int(), 0);
  EXPECT_EQ(metrics.at("counters").at("attack.throttled").as_int(), 0);
}

// ----------------------------------------------------- key separation

TEST(KeySeparationTest, DistinctNamesAndNoncesDeriveDistinctKeys) {
  SecureChannel channel("customer-secret");
  const Speck64::Key a = channel.archive_key("tools", 1);
  const Speck64::Key b = channel.archive_key("tools", 2);
  const Speck64::Key c = channel.archive_key("docs", 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // Deterministic: both ends derive the same key independently.
  EXPECT_EQ(a, SecureChannel("customer-secret").archive_key("tools", 1));
}

TEST(KeySeparationTest, NonceAKeyCannotOpenArchiveSealedUnderNonceB) {
  SecureChannel channel("customer-secret");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<std::uint8_t> sealed_b =
      seal(payload, channel.archive_key("tools", 2), 2);
  EXPECT_EQ(sealed_nonce(sealed_b), 2u);
  // The right key opens it; the sibling download's key does not.
  EXPECT_EQ(open(sealed_b, channel.archive_key("tools", 2)), payload);
  EXPECT_THROW(open(sealed_b, channel.archive_key("tools", 1)),
               std::runtime_error);
  EXPECT_THROW(open(sealed_b, channel.archive_key("docs", 2)),
               std::runtime_error);
}

TEST(KeySeparationTest, ChannelRoundTripStillWorks) {
  SecureChannel vendor("customer-secret");
  SecureChannel customer("customer-secret");
  Archive archive("tools");
  archive.add_text("readme.txt", "licensed material");
  SealedArchive sealed = vendor.seal_archive(archive, 42);
  Archive back = customer.open_archive(sealed);
  ASSERT_EQ(back.entries().size(), 1u);
  EXPECT_EQ(back.entries()[0].name, "readme.txt");
  // A different secret fails authentication, not just decryption.
  EXPECT_THROW(SecureChannel("wrong").open_archive(sealed),
               std::runtime_error);
}

// ---------------------------------------------------------- watermark

TEST(WatermarkSurvivalTest, SurvivesObfuscationAndVerifiesUntampered) {
  SurvivalReport report =
      evaluate_watermark_survival(6, "acme-vendor", {0, 4}, 5, 0xBEEF);
  EXPECT_GT(report.carriers, 0u);
  EXPECT_TRUE(report.survives_obfuscation);
  ASSERT_EQ(report.tamper_points.size(), 2u);
  EXPECT_DOUBLE_EQ(report.tamper_points[0].survival_rate(), 1.0);
  EXPECT_DOUBLE_EQ(report.tamper_points[0].mean_carrier_match, 1.0);
  // Tampering four carriers must cost carrier matches.
  EXPECT_LT(report.tamper_points[1].mean_carrier_match, 1.0);
}

}  // namespace
}  // namespace jhdl
