// Compiled simulation kernel: differential parity against the interpreter
// over the real catalog IP (sequential state, RAM/SRL fallbacks, carry
// chains), program sharing across identically elaborated instances, live
// ROM reads (watermarking after elaboration), and the batched cycle API.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/blackbox.h"
#include "core/generators.h"
#include "hdl/error.h"
#include "sim/compiled_kernel.h"
#include "sim/simulator.h"
#include "tech/memory.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using core::BlackBoxModel;
using core::BuildResult;
using core::ParamMap;

ParamMap kcm_params(std::int64_t constant, bool pipelined) {
  core::KcmGenerator gen;
  return ParamMap()
      .set("input_width", std::int64_t{8})
      .set("constant", constant)
      .set("signed_mode", true)
      .set("pipelined_mode", pipelined)
      .resolved(gen.params());
}

Simulator make_sim(HWSystem& hw, SimMode mode) {
  SimOptions options;
  options.mode = mode;
  return Simulator(hw, options);
}

/// Run the same clocked random stimulus through an interpreted and a
/// compiled instance of one generator build and require every output
/// bit-exact on every cycle.
void expect_clocked_parity(const core::ModuleGenerator& gen,
                           const ParamMap& params, int cycles,
                           std::uint64_t seed) {
  BuildResult a = gen.build(params);
  BuildResult b = gen.build(params);
  SimOptions interp_opt;
  interp_opt.mode = SimMode::Interpreted;
  Simulator interp(*a.system, interp_opt);
  SimOptions comp_opt;
  comp_opt.mode = SimMode::Compiled;
  Simulator comp(*b.system, comp_opt);

  Rng rng(seed);
  for (int t = 0; t < cycles; ++t) {
    for (const auto& [name, wire] : a.inputs) {
      const std::uint64_t bits = rng.next();
      interp.put(wire, BitVector::from_uint(wire->width(), bits));
      comp.put(b.inputs.at(name),
               BitVector::from_uint(wire->width(), bits));
    }
    interp.cycle();
    comp.cycle();
    for (const auto& [name, wire] : a.outputs) {
      EXPECT_EQ(interp.get(wire).to_string(),
                comp.get(b.outputs.at(name)).to_string())
          << gen.name() << " output '" << name << "' cycle " << t;
    }
  }
  // Event-driven settling never does MORE work than the full walk.
  EXPECT_LE(comp.eval_count(), interp.eval_count());
}

TEST(CompiledKernelParityTest, KcmMultiplier) {
  core::KcmGenerator gen;
  expect_clocked_parity(gen, kcm_params(-93, true), 60, 0xC0FFEE);
  expect_clocked_parity(gen, kcm_params(517, false), 60, 0xBEEF);
}

TEST(CompiledKernelParityTest, FirFilter) {
  core::FirGenerator gen;
  const ParamMap params = ParamMap()
                              .set("input_width", std::int64_t{8})
                              .set("c0", std::int64_t{-2})
                              .set("c1", std::int64_t{7})
                              .set("c2", std::int64_t{7})
                              .set("c3", std::int64_t{-2})
                              .resolved(gen.params());
  expect_clocked_parity(gen, params, 80, 0xF1A);
}

TEST(CompiledKernelParityTest, DdsSynthesizer) {
  core::DdsIpGenerator gen;
  const ParamMap params = ParamMap()
                              .set("phase_width", std::int64_t{10})
                              .set("tuning", std::int64_t{37})
                              .resolved(gen.params());
  expect_clocked_parity(gen, params, 120, 0xDD5);
}

TEST(CompiledKernelParityTest, AdderRegistered) {
  core::AdderGenerator gen;
  const ParamMap params = ParamMap()
                              .set("width", std::int64_t{16})
                              .set("registered", true)
                              .resolved(gen.params());
  expect_clocked_parity(gen, params, 60, 0xADD);
}

TEST(CompiledKernelTest, ResetMatchesInterpreter) {
  core::DdsIpGenerator gen;
  const ParamMap params = ParamMap()
                              .set("phase_width", std::int64_t{9})
                              .set("tuning", std::int64_t{11})
                              .resolved(gen.params());
  BuildResult a = gen.build(params);
  BuildResult b = gen.build(params);
  Simulator interp = make_sim(*a.system, SimMode::Interpreted);
  Simulator comp = make_sim(*b.system, SimMode::Compiled);
  interp.cycle(25);
  comp.cycle(25);
  interp.reset();
  comp.reset();
  interp.cycle(5);
  comp.cycle(5);
  for (const auto& [name, wire] : a.outputs) {
    EXPECT_EQ(interp.get(wire).to_string(),
              comp.get(b.outputs.at(name)).to_string())
        << "output '" << name << "' after reset";
  }
}

// ---------------------------------------------------------------------------
// Program sharing.
// ---------------------------------------------------------------------------

TEST(CompiledKernelTest, IdenticalBuildsShareOneProgram) {
  core::KcmGenerator gen;
  const ParamMap params = kcm_params(-56, true);
  BuildResult a = gen.build(params);
  BuildResult b = gen.build(params);

  Simulator first = make_sim(*a.system, SimMode::Compiled);
  ASSERT_NE(first.compiled_program(), nullptr);

  SimOptions opt;
  opt.mode = SimMode::Compiled;
  opt.program = first.compiled_program();
  Simulator second(*b.system, opt);
  // Deterministic elaboration: the second instance binds the FIRST
  // instance's program instead of compiling again.
  EXPECT_EQ(second.compiled_program().get(), first.compiled_program().get());

  // ... and still simulates correctly on its own nets.
  for (int x : {-80, -1, 0, 3, 77}) {
    first.put_signed(a.inputs.at("multiplicand"), x);
    second.put_signed(b.inputs.at("multiplicand"), x);
    first.cycle(3);
    second.cycle(3);
    EXPECT_EQ(first.get(a.outputs.at("product")).to_string(),
              second.get(b.outputs.at("product")).to_string());
  }
}

TEST(CompiledKernelTest, NonBindingProgramIsRecompiledNotMisused) {
  core::KcmGenerator gen;
  BuildResult small = gen.build(kcm_params(-56, false));
  BuildResult big = gen.build(kcm_params(-56, true));
  Simulator donor = make_sim(*small.system, SimMode::Compiled);
  ASSERT_NE(donor.compiled_program(), nullptr);

  SimOptions opt;
  opt.mode = SimMode::Compiled;
  opt.program = donor.compiled_program();
  Simulator fresh(*big.system, opt);  // different circuit: must not bind
  ASSERT_NE(fresh.compiled_program(), nullptr);
  EXPECT_NE(fresh.compiled_program().get(), donor.compiled_program().get());

  fresh.put_signed(big.inputs.at("multiplicand"), -21);
  fresh.cycle(4);
  const std::uint64_t want =
      static_cast<std::uint64_t>(std::int64_t{-56} * -21) & 0x7FFF;
  EXPECT_EQ(fresh.get(big.outputs.at("product")).to_uint(), want);
}

TEST(CompiledKernelTest, FingerprintsAgreeAcrossIdenticalBuilds) {
  core::FirGenerator gen;
  const ParamMap params = ParamMap()
                              .set("input_width", std::int64_t{6})
                              .set("c1", std::int64_t{9})
                              .resolved(gen.params());
  BuildResult a = gen.build(params);
  BuildResult b = gen.build(params);
  Simulator sa = make_sim(*a.system, SimMode::Compiled);
  Simulator sb = make_sim(*b.system, SimMode::Compiled);
  ASSERT_NE(sa.compiled_program(), nullptr);
  ASSERT_NE(sb.compiled_program(), nullptr);
  EXPECT_EQ(sa.compiled_program()->fingerprint,
            sb.compiled_program()->fingerprint);
}

// ---------------------------------------------------------------------------
// Live-primitive opcodes.
// ---------------------------------------------------------------------------

TEST(CompiledKernelTest, RomContentsAreReadLiveAfterElaboration) {
  // Watermarking (core/protect.h) rewrites Rom16 entries AFTER the model
  // is built - possibly after the simulator exists. The Rom opcode must
  // therefore read contents through the live primitive, never a baked
  // copy.
  HWSystem hw;
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* data = new Wire(&hw, 8, "data");
  std::array<std::uint64_t, 16> contents{};
  for (unsigned i = 0; i < 16; ++i) contents[i] = i * 3;
  auto* rom = new tech::Rom16(&hw, addr, data, contents);

  Simulator sim = make_sim(hw, SimMode::Compiled);
  rom->set_entry(5, 0xAB);  // mutate after elaboration, before first settle
  sim.put(addr, 5);
  EXPECT_EQ(sim.get(data).to_uint(), 0xABu);

  sim.put(addr, 6);
  EXPECT_EQ(sim.get(data).to_uint(), 18u);

  // Mutate an entry the simulator has already read; revisiting the
  // address must show the new value (the address nets change, so the op
  // re-evaluates and re-reads the live table).
  rom->set_entry(6, 0x5C);
  sim.put(addr, 0);
  sim.propagate();
  sim.put(addr, 6);
  EXPECT_EQ(sim.get(data).to_uint(), 0x5Cu);
}

TEST(CompiledKernelTest, RomUndefinedAddressYieldsAllX) {
  HWSystem hw;
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* data = new Wire(&hw, 4, "data");
  std::array<std::uint64_t, 16> contents{};
  contents[3] = 0xF;
  new tech::Rom16(&hw, addr, data, contents);
  Simulator sim = make_sim(hw, SimMode::Compiled);
  sim.put(addr, BitVector::from_string("00x1"));
  EXPECT_EQ(sim.get(data).to_string(), "xxxx");
  sim.put(addr, 3);
  EXPECT_EQ(sim.get(data).to_uint(), 0xFu);
}

// ---------------------------------------------------------------------------
// Batched cycles.
// ---------------------------------------------------------------------------

TEST(CycleBatchTest, MatchesPerCycleEvaluation) {
  core::KcmGenerator gen;
  const ParamMap params = kcm_params(201, true);
  BlackBoxModel batched(gen.build(params), gen.name());
  BlackBoxModel stepped(gen.build(params), gen.name());

  const std::size_t n = 32;
  std::vector<BitVector> xs;
  Rng rng(0xBA7C4);
  for (std::size_t t = 0; t < n; ++t) {
    xs.push_back(BitVector::from_uint(8, rng.next() & 0xFF));
  }

  auto batch = batched.cycle_batch(n, {{"multiplicand", xs}}, {});
  ASSERT_EQ(batch.count("product"), 1u);
  ASSERT_EQ(batch["product"].size(), n);

  for (std::size_t t = 0; t < n; ++t) {
    stepped.set_input("multiplicand", xs[t]);
    stepped.cycle(1);
    EXPECT_EQ(batch["product"][t].to_string(),
              stepped.get_output("product").to_string())
        << "cycle " << t;
  }
  EXPECT_EQ(batched.cycle_count(), n);
}

TEST(CycleBatchTest, ValidatesStreamLengthAndNames) {
  core::KcmGenerator gen;
  BlackBoxModel model(gen.build(kcm_params(7, false)), gen.name());
  std::vector<BitVector> too_short(3, BitVector::from_uint(8, 1));
  EXPECT_THROW(model.cycle_batch(4, {{"multiplicand", too_short}}, {}),
               HdlError);
  std::vector<BitVector> ok(4, BitVector::from_uint(8, 1));
  EXPECT_THROW(model.cycle_batch(4, {{"no_such_input", ok}}, {}),
               std::out_of_range);
  EXPECT_THROW(model.cycle_batch(4, {{"multiplicand", ok}}, {"no_such_out"}),
               std::out_of_range);
}

TEST(CycleBatchTest, ProbeSubsetAndInterpretedModeAgree) {
  core::FirGenerator gen;
  const ParamMap params = ParamMap()
                              .set("input_width", std::int64_t{8})
                              .set("c0", std::int64_t{3})
                              .set("c2", std::int64_t{-5})
                              .resolved(gen.params());
  BuildResult a = gen.build(params);
  BuildResult b = gen.build(params);
  SimOptions interp_opt;
  interp_opt.mode = SimMode::Interpreted;
  BlackBoxModel compiled(std::move(a), gen.name());
  // Interpreted-mode model, via env-independent construction: build a
  // simulator directly.
  Simulator interp(*b.system, interp_opt);

  const std::size_t n = 20;
  std::vector<BitVector> xs;
  Rng rng(0x515);
  for (std::size_t t = 0; t < n; ++t) {
    xs.push_back(BitVector::from_uint(8, rng.next() & 0xFF));
  }
  auto batch = compiled.cycle_batch(n, {{"x", xs}}, {"y"});
  ASSERT_EQ(batch.size(), 1u);
  for (std::size_t t = 0; t < n; ++t) {
    interp.put(b.inputs.at("x"), xs[t]);
    interp.cycle();
    EXPECT_EQ(batch["y"][t].to_string(),
              interp.get(b.outputs.at("y")).to_string())
        << "cycle " << t;
  }
}

}  // namespace
}  // namespace jhdl
