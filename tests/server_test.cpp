// Tests for the multi-tenant delivery service (src/server): concurrent
// session isolation, saturation backpressure, idle-timeout and explicit
// eviction, license gating at session open, protocol version negotiation,
// the ServerStats counters / admin query, and the SimServer farewell
// handshake on stop().
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/generators.h"
#include "net/protocol.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "server/delivery_service.h"

namespace jhdl {
namespace {

using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::server;
using namespace std::chrono_literals;

IpCatalog make_catalog() {
  IpCatalog catalog;
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<KcmGenerator>());
  return catalog;
}

/// Spin until `pred` holds or ~2 s elapse. Returns the final value.
bool eventually(const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

TEST(ProtocolV2Test, HelloCarriesVersionCustomerModuleParams) {
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "kcm-multiplier";
  hello.params["constant"] = -56;
  hello.params["input_width"] = 8;
  Message back = decode(encode(hello));
  EXPECT_EQ(back.type, MsgType::Hello);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.customer, "acme");
  EXPECT_EQ(back.name, "kcm-multiplier");
  ASSERT_EQ(back.params.size(), 2u);
  EXPECT_EQ(back.params.at("constant"), -56);
  EXPECT_EQ(back.params.at("input_width"), 8);
}

TEST(ProtocolV2Test, LegacyHelloDecodesAsVersionOne) {
  // A v1 Hello is the bare type byte; it must decode (not throw) so the
  // server can answer with a clear version-mismatch Error.
  Message legacy = decode({static_cast<std::uint8_t>(MsgType::Hello)});
  EXPECT_EQ(legacy.type, MsgType::Hello);
  EXPECT_EQ(legacy.version, 1u);
  EXPECT_EQ(protocol_version(), kProtocolVersion);
}

TEST(ProtocolV2Test, StatsRoundTrip) {
  Message query;
  query.type = MsgType::Stats;
  EXPECT_EQ(decode(encode(query)).type, MsgType::Stats);
  Message reply;
  reply.type = MsgType::StatsReply;
  reply.text = "{\"requests\": 7}";
  Message back = decode(encode(reply));
  EXPECT_EQ(back.type, MsgType::StatsReply);
  EXPECT_EQ(back.text, "{\"requests\": 7}");
}

// The acceptance-criteria workhorse: >= 8 concurrent sessions against one
// service, alternating between two catalog entries with PER-SESSION
// parameters, each asserting its own arithmetic - any cross-talk in
// port values or model state fails the expectations.
TEST(DeliveryServiceTest, ConcurrentSessionsAreIsolated) {
  constexpr int kClients = 8;
  constexpr int kEvalsPerClient = 25;
  DeliveryConfig config;
  config.workers = kClients;
  config.queue_capacity = kClients;
  DeliveryService service(make_catalog(), config);
  for (int i = 0; i < kClients; ++i) {
    service.add_license(LicensePolicy::make("cust" + std::to_string(i),
                                            LicenseTier::Evaluation));
  }
  std::uint16_t port = service.start();

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        ConnectSpec spec;
        spec.customer = "cust" + std::to_string(i);
        if (i % 2 == 0) {
          spec.module = "carry-adder";
          spec.params["width"] = 16;
        } else {
          spec.module = "kcm-multiplier";
          spec.params["input_width"] = 8;
          spec.params["constant"] = 3 + i;  // distinct per session
          spec.params["signed_mode"] = 1;
        }
        SimClient client(port, spec);
        for (int k = 0; k < kEvalsPerClient; ++k) {
          std::map<std::string, BitVector> inputs;
          if (i % 2 == 0) {
            const std::uint64_t a = 1000 + 97 * i + k;
            const std::uint64_t b = 13 * i + 7 * k;
            inputs["a"] = BitVector::from_uint(16, a);
            inputs["b"] = BitVector::from_uint(16, b);
            auto out = client.eval(inputs, 0);
            const std::uint64_t want = (a + b) & 0xFFFF;
            if (out.at("s").to_uint() != want) {
              failures[i] = "adder cross-talk at k=" + std::to_string(k);
              return;
            }
          } else {
            const std::int64_t x = -100 + 8 * k + i;
            inputs["multiplicand"] = BitVector::from_int(8, x);
            auto out = client.eval(inputs, 0);
            // Full-width signed product: exact, whatever the width the
            // session's constant produced.
            if (out.at("product").to_int() != (3 + i) * x) {
              failures[i] = "kcm cross-talk at k=" + std::to_string(k);
              return;
            }
          }
        }
        client.bye();
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(failures[i], "") << "client " << i;
  }

  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  service.stop();
  ServerStats::Snapshot s = service.stats().snapshot();
  EXPECT_EQ(s.sessions_opened, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.sessions_active, 0u);
  EXPECT_EQ(s.sessions_closed, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.sessions_evicted, 0u);
  EXPECT_EQ(s.rejections, 0u);
  EXPECT_EQ(s.requests,
            static_cast<std::uint64_t>(kClients * kEvalsPerClient));
  EXPECT_GE(s.p95_request_us, s.p50_request_us);
}

TEST(DeliveryServiceTest, SaturationRejectsWithProtocolError) {
  DeliveryConfig config;
  config.workers = 2;
  config.queue_capacity = 1;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;

  // Fill the worker pool: two live sessions.
  SimClient held1(port, spec);
  SimClient held2(port, spec);
  ASSERT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 2; }));

  // Fill the accept queue: a connection whose Hello cannot be serviced
  // while both workers are occupied.
  TcpStream queued = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  queued.send_frame(encode(hello));
  ASSERT_TRUE(
      eventually([&] { return service.stats().snapshot().queued == 1; }));

  // The (workers + queue + 1)-th simultaneous session: rejected with a
  // protocol Error, not a hang.
  try {
    SimClient rejected(port, spec);
    FAIL() << "expected saturation rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("saturated"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(service.stats().snapshot().rejections, 1u);

  // Backpressure drains: close one held session and the queued
  // connection gets its Iface.
  held1.bye();
  Message iface = decode(queued.recv_frame());
  EXPECT_EQ(iface.type, MsgType::Iface);

  held2.bye();
  service.stop();
}

TEST(DeliveryServiceTest, IdleSessionsAreEvicted) {
  DeliveryConfig config;
  config.workers = 2;
  config.idle_timeout = 40ms;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  SimClient client(port, spec);
  std::map<std::string, BitVector> inputs;
  inputs["a"] = BitVector::from_uint(8, 3);
  inputs["b"] = BitVector::from_uint(8, 4);
  EXPECT_EQ(client.eval(inputs, 0).at("s").to_uint(), 7u);

  // Stay idle past the timeout; the reaper evicts the session.
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_evicted == 1; }));
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  EXPECT_THROW(client.eval(inputs, 0), std::exception);
  service.stop();
}

TEST(DeliveryServiceTest, ExplicitEviction) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  SimClient client(port, spec);
  ASSERT_TRUE(eventually([&] { return service.sessions().active() == 1; }));

  auto live = service.sessions().list();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].customer, "acme");
  EXPECT_EQ(live[0].module, "carry-adder");

  EXPECT_TRUE(service.sessions().evict(live[0].id));
  EXPECT_TRUE(eventually([&] { return service.sessions().active() == 0; }));
  EXPECT_FALSE(service.sessions().evict(live[0].id));
  EXPECT_EQ(service.stats().snapshot().sessions_evicted, 1u);

  std::map<std::string, BitVector> inputs;
  inputs["a"] = BitVector::from_uint(16, 1);
  inputs["b"] = BitVector::from_uint(16, 2);
  EXPECT_THROW(client.eval(inputs, 0), std::exception);
  service.stop();
}

TEST(DeliveryServiceTest, LicenseGatesSessionOpen) {
  DeliveryConfig config;
  config.today = 20;
  DeliveryService service(make_catalog(), config);
  // Anonymous tier has no BlackBoxSim feature; "expired"'s license ended
  // on day 10 and the service runs on day 20.
  service.add_license(LicensePolicy::make("anon", LicenseTier::Anonymous));
  service.add_license(
      LicensePolicy::make("expired", LicenseTier::Evaluation, 10));
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  auto open_as = [&](const std::string& customer, const std::string& module) {
    ConnectSpec spec;
    spec.customer = customer;
    spec.module = module;
    return SimClient(port, spec);
  };
  auto expect_denied = [&](const std::string& customer,
                           const std::string& module,
                           const std::string& needle) {
    try {
      open_as(customer, module);
      FAIL() << customer << " should have been denied";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_denied("anon", "carry-adder", "does not grant black-box");
  expect_denied("stranger", "carry-adder", "no license");
  expect_denied("expired", "carry-adder", "expired");
  expect_denied("acme", "no-such-ip", "no IP named");
  EXPECT_EQ(service.stats().snapshot().denials, 4u);

  // The properly licensed customer sails through.
  SimClient ok = open_as("acme", "carry-adder");
  EXPECT_EQ(ok.ip_name(), "carry-adder");
  ok.bye();
  service.stop();
  EXPECT_EQ(service.stats().snapshot().sessions_opened, 1u);
}

TEST(DeliveryServiceTest, OldFormatHelloGetsVersionError) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  TcpStream legacy = TcpStream::connect(port);
  legacy.send_frame({static_cast<std::uint8_t>(MsgType::Hello)});
  Message reply = decode(legacy.recv_frame());
  EXPECT_EQ(reply.type, MsgType::Error);
  EXPECT_NE(reply.text.find("version"), std::string::npos) << reply.text;
  EXPECT_EQ(service.stats().snapshot().denials, 1u);
  service.stop();
}

TEST(DeliveryServiceTest, StatsQueryOverTheWire) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  SimClient a(port, spec);
  SimClient b(port, spec);
  std::map<std::string, BitVector> inputs;
  inputs["a"] = BitVector::from_uint(8, 1);
  inputs["b"] = BitVector::from_uint(8, 2);
  for (int k = 0; k < 3; ++k) a.eval(inputs, 0);
  for (int k = 0; k < 2; ++k) b.eval(inputs, 0);

  Json stats = query_stats(port);
  EXPECT_EQ(stats.at("sessions_opened").as_int(), 2);
  EXPECT_EQ(stats.at("sessions_active").as_int(), 2);
  EXPECT_EQ(stats.at("requests").as_int(), 5);
  EXPECT_EQ(stats.at("rejections").as_int(), 0);
  EXPECT_GE(stats.at("p95_request_us").as_number(),
            stats.at("p50_request_us").as_number());
  EXPECT_GE(stats.at("p99_request_us").as_number(),
            stats.at("p95_request_us").as_number());
  // Interpolated percentiles can land below 1 µs for sub-microsecond
  // requests (the old bucket-upper-bound readback never could).
  EXPECT_GT(stats.at("p50_request_us").as_number(), 0.0);

  a.bye();
  b.bye();
  service.stop();
}

// ---------------------------------------------------------------------
// Reconnect / Resume coverage (protocol v3): a session whose transport
// dies is parked for config.resume_window and can be reclaimed with the
// server-issued token - model state, cycle count, and the idempotent
// replay cache intact.
// ---------------------------------------------------------------------

TEST(DeliveryServiceTest, ResumeReattachesDetachedSession) {
  DeliveryConfig config;
  config.workers = 2;
  config.resume_window = 2000ms;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  // Oracle: the same three evals over one uninterrupted session.
  std::vector<std::map<std::string, BitVector>> oracle;
  {
    ConnectSpec spec;
    spec.customer = "acme";
    spec.module = "carry-adder";
    spec.params["width"] = 8;
    SimClient uninterrupted(port, spec);
    for (int k = 0; k < 3; ++k) {
      std::map<std::string, BitVector> inputs;
      inputs["a"] = BitVector::from_uint(8, 10 + k);
      inputs["b"] = BitVector::from_uint(8, 5 * k);
      oracle.push_back(uninterrupted.eval(inputs, 1));
    }
    uninterrupted.bye();
  }

  // Raw v3 session: Hello, one Eval, then the transport "dies" (no Bye).
  TcpStream first = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  hello.seq = 1;
  first.send_frame(encode(hello));
  Message iface = decode(first.recv_frame());
  ASSERT_EQ(iface.type, MsgType::Iface);
  const Json ij = Json::parse(iface.text);
  ASSERT_TRUE(ij.has("token"));
  const std::string token = ij.at("token").as_string();

  Message eval1;
  eval1.type = MsgType::Eval;
  eval1.values["a"] = BitVector::from_uint(8, 10);
  eval1.values["b"] = BitVector::from_uint(8, 0);
  eval1.count = 1;
  eval1.seq = 2;
  first.send_frame(encode(eval1));
  Message v1 = decode(first.recv_frame());
  ASSERT_EQ(v1.type, MsgType::Values);
  EXPECT_EQ(v1.values.at("s").to_uint(), oracle[0].at("s").to_uint());
  first.shutdown();
  first.close();

  // Reconnect and Resume with the token.
  TcpStream second = TcpStream::connect(port);
  Message resume;
  resume.type = MsgType::Resume;
  resume.text = token;
  resume.count = 1;  // last-acked cycles
  resume.seq = 3;
  second.send_frame(encode(resume));
  Message back = decode(second.recv_frame());
  ASSERT_EQ(back.type, MsgType::Iface) << back.text;
  const Json rj = Json::parse(back.text);
  EXPECT_TRUE(rj.at("resumed").as_bool());
  EXPECT_EQ(rj.at("cycles").as_int(), 1) << "cycle count survived";
  EXPECT_EQ(rj.at("last_seq").as_int(), 2) << "replay cache survived";

  // Replay: resending the already-executed eval must return the SAME
  // values without advancing the model.
  second.send_frame(encode(eval1));
  Message replayed = decode(second.recv_frame());
  ASSERT_EQ(replayed.type, MsgType::Values);
  EXPECT_EQ(replayed.values.at("s").to_string(),
            v1.values.at("s").to_string());

  // The session continues where it left off, bit-exact vs the oracle.
  for (int k = 1; k < 3; ++k) {
    Message evalk;
    evalk.type = MsgType::Eval;
    evalk.values["a"] = BitVector::from_uint(8, 10 + k);
    evalk.values["b"] = BitVector::from_uint(8, 5 * k);
    evalk.count = 1;
    evalk.seq = static_cast<std::uint64_t>(3 + k);
    second.send_frame(encode(evalk));
    Message vk = decode(second.recv_frame());
    ASSERT_EQ(vk.type, MsgType::Values);
    for (const auto& [name, bits] : oracle[static_cast<std::size_t>(k)]) {
      EXPECT_EQ(vk.values.at(name).to_string(), bits.to_string())
          << "output " << name << " diverged after resume, eval " << k;
    }
  }

  Message bye;
  bye.type = MsgType::Bye;
  second.send_frame(encode(bye));
  second.close();

  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  ServerStats::Snapshot s = service.stats().snapshot();
  EXPECT_EQ(s.resumes, 1u);
  EXPECT_EQ(s.retries, 1u) << "the replayed eval counts as one retry";
  service.stop();
}

TEST(DeliveryServiceTest, ResilientClientResumesThroughDeliveryService) {
  DeliveryConfig config;
  config.workers = 2;
  config.resume_window = 2000ms;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  auto plan = std::make_shared<FaultPlan>();
  // Client ops: send#0=Hello, send#1=Eval1, send#2=Eval2 <- killed here.
  plan->script_send(2, {FaultKind::Drop, 3, 0ms});
  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "kcm-multiplier";
  spec.params["input_width"] = 8;
  spec.params["constant"] = -56;
  spec.params["signed_mode"] = 1;
  spec.retry.max_attempts = 6;
  spec.retry.backoff_base = 1ms;
  spec.retry.request_timeout = 2000ms;
  spec.fault_plan = plan;
  SimClient client(port, spec);
  for (int k = 0; k < 3; ++k) {
    const std::int64_t x = -90 + 31 * k;
    std::map<std::string, BitVector> inputs;
    inputs["multiplicand"] = BitVector::from_int(8, x);
    auto out = client.eval(inputs, 0);
    EXPECT_EQ(out.at("product").to_int(), -56 * x) << "eval " << k;
  }
  EXPECT_EQ(client.reconnects(), 1u);
  client.bye();
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  ServerStats::Snapshot s = service.stats().snapshot();
  EXPECT_EQ(s.resumes, 1u);
  EXPECT_EQ(s.sessions_opened, 1u) << "resume reuses the session";
  service.stop();
}

TEST(DeliveryServiceTest, MalformedFrameGetsTypedErrorAndCountsInStats) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  TcpStream raw = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  raw.send_frame(encode(hello));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Iface);

  // Corrupt a valid frame's payload on the wire: CRC mismatch.
  Message cycle;
  cycle.type = MsgType::Cycle;
  cycle.count = 1;
  std::vector<std::uint8_t> frame = frame_wrap(encode(cycle));
  frame[8] ^= 0xFF;
  raw.send_bytes(frame);
  Message err = decode(raw.recv_frame());
  ASSERT_EQ(err.type, MsgType::Error);
  EXPECT_EQ(err.code, ErrorCode::MalformedFrame);

  // The session survived the corruption.
  Message eval;
  eval.type = MsgType::Eval;
  eval.values["a"] = BitVector::from_uint(8, 3);
  eval.values["b"] = BitVector::from_uint(8, 4);
  raw.send_frame(encode(eval));
  Message values = decode(raw.recv_frame());
  ASSERT_EQ(values.type, MsgType::Values);
  EXPECT_EQ(values.values.at("s").to_uint(), 7u);

  Json stats = query_stats(port);
  EXPECT_EQ(stats.at("malformed_frames").as_int(), 1);
  EXPECT_EQ(stats.at("resumes").as_int(), 0);
  EXPECT_EQ(stats.at("retries").as_int(), 0);

  Message bye;
  bye.type = MsgType::Bye;
  raw.send_frame(encode(bye));
  raw.close();
  service.stop();
}

TEST(DeliveryServiceTest, DetachedSessionIsPurgedAfterWindow) {
  DeliveryConfig config;
  config.workers = 2;
  config.resume_window = 50ms;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  TcpStream raw = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  raw.send_frame(encode(hello));
  Message iface = decode(raw.recv_frame());
  ASSERT_EQ(iface.type, MsgType::Iface);
  const std::string token = Json::parse(iface.text).at("token").as_string();
  raw.shutdown();
  raw.close();

  // The reaper purges the detached session once the window lapses,
  // counted under resume_expired (the client never misbehaved), not
  // folded into sessions_evicted.
  EXPECT_TRUE(eventually([&] { return service.sessions().active() == 0; }));
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().resume_expired == 1; }));
  EXPECT_EQ(service.stats().snapshot().sessions_evicted, 0u);

  // A late Resume finds nothing.
  TcpStream late = TcpStream::connect(port);
  Message resume;
  resume.type = MsgType::Resume;
  resume.text = token;
  late.send_frame(encode(resume));
  Message err = decode(late.recv_frame());
  ASSERT_EQ(err.type, MsgType::Error);
  EXPECT_EQ(err.code, ErrorCode::UnknownSession);
  late.close();
  service.stop();
}

TEST(SimServerTest, VersionMismatchGetsClearError) {
  KcmGenerator gen;
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{8})
                        .set("constant", std::int64_t{-56})
                        .set("signed_mode", true)
                        .resolved(gen.params());
  SimServer server(
      std::make_unique<BlackBoxModel>(gen.build(params), gen.name()));
  std::uint16_t port = server.start();

  TcpStream legacy = TcpStream::connect(port);
  legacy.send_frame({static_cast<std::uint8_t>(MsgType::Hello)});
  Message reply = decode(legacy.recv_frame());
  EXPECT_EQ(reply.type, MsgType::Error);
  EXPECT_NE(reply.text.find("version"), std::string::npos) << reply.text;
  server.stop();
}

TEST(SimServerTest, StopSendsByeToBlockedClient) {
  AdderGenerator gen;
  ParamMap params =
      ParamMap().set("width", std::int64_t{8}).resolved(gen.params());
  SimServer server(
      std::make_unique<BlackBoxModel>(gen.build(params), gen.name()));
  std::uint16_t port = server.start();

  // Handshake by hand, then block in a read with no request pending -
  // the worst case for shutdown, since nothing will ever be sent.
  TcpStream stream = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  stream.send_frame(encode(hello));
  ASSERT_EQ(decode(stream.recv_frame()).type, MsgType::Iface);

  Message farewell;
  bool got_frame = false;
  std::thread blocked([&] {
    try {
      farewell = decode(stream.recv_frame());
      got_frame = true;
    } catch (const NetError&) {
      // Acceptable alternative: the shutdown raced ahead of the frame.
    }
  });
  std::this_thread::sleep_for(50ms);

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  blocked.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Fail-fast: the blocked read ended with the farewell Bye, within the
  // stop() call rather than some TCP timeout later.
  EXPECT_LT(elapsed, 2s);
  ASSERT_TRUE(got_frame);
  EXPECT_EQ(farewell.type, MsgType::Bye);

  server.stop();  // idempotent
}

// ---------------------------------------------------------------------
// Protocol v4: elaboration cache, CycleBatch, and v3 compatibility.
// ---------------------------------------------------------------------

TEST(DeliveryServiceTest, IdenticalSessionsShareOneCompiledProgram) {
  if (default_sim_mode() != SimMode::Compiled) {
    GTEST_SKIP() << "elaboration cache only operates in compiled mode";
  }
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "kcm-multiplier";
  spec.params["input_width"] = 8;
  spec.params["constant"] = -56;
  spec.params["signed_mode"] = 1;
  SimClient a(port, spec);
  SimClient b(port, spec);  // identical (module, params): must share

  ServerStats::Snapshot s = service.stats().snapshot();
  EXPECT_EQ(s.programs_compiled, 1u);
  EXPECT_EQ(s.program_shares, 1u);

  // Sharing must not entangle the sessions' state.
  std::map<std::string, BitVector> inputs;
  inputs["multiplicand"] = BitVector::from_int(8, 11);
  EXPECT_EQ(a.eval(inputs, 0).at("product").to_int(), -56 * 11);
  inputs["multiplicand"] = BitVector::from_int(8, -3);
  EXPECT_EQ(b.eval(inputs, 0).at("product").to_int(), -56 * -3);
  inputs["multiplicand"] = BitVector::from_int(8, 11);
  EXPECT_EQ(a.eval(inputs, 0).at("product").to_int(), -56 * 11);

  // A different parameter assignment compiles its own program.
  spec.params["constant"] = 7;
  SimClient c(port, spec);
  s = service.stats().snapshot();
  EXPECT_EQ(s.programs_compiled, 2u);
  EXPECT_EQ(s.program_shares, 1u);

  a.bye();
  b.bye();
  c.bye();
  service.stop();
}

TEST(DeliveryServiceTest, ConcurrentIdenticalHellosCoalesceToOneBuild) {
  DeliveryConfig config;
  config.workers = 6;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "kcm-multiplier";
  spec.params["input_width"] = 8;
  spec.params["constant"] = -56;
  spec.params["signed_mode"] = 1;

  // Six clients race the SAME configuration through open_session; the
  // store's single-flight path must elaborate exactly once.
  constexpr int kClients = 6;
  std::vector<std::unique_ptr<SimClient>> clients(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back(
        [&, i] { clients[i] = std::make_unique<SimClient>(port, spec); });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(service.artifacts().stats().misses, 1u)
      << "N concurrent identical Hellos must trigger exactly one build";
  ServerStats::Snapshot s = service.stats().snapshot();
  EXPECT_EQ(s.programs_compiled, 1u);
  EXPECT_EQ(s.program_shares, static_cast<std::uint64_t>(kClients - 1));

  // And the coalesced sessions still have independent state.
  std::map<std::string, BitVector> inputs;
  inputs["multiplicand"] = BitVector::from_int(8, 3);
  EXPECT_EQ(clients[0]->eval(inputs, 0).at("product").to_int(), -168);
  inputs["multiplicand"] = BitVector::from_int(8, -2);
  EXPECT_EQ(clients[kClients - 1]->eval(inputs, 0).at("product").to_int(),
            112);

  for (auto& c : clients) c->bye();
  service.stop();
}

TEST(DeliveryServiceTest, ParkedSessionArtifactSurvivesStoreChurn) {
  DeliveryConfig config;
  config.workers = 2;
  config.resume_window = 2000ms;
  // A one-byte budget makes EVERY entry over budget, so the store tries
  // to evict on each insert - only the session pins keep artifacts alive.
  config.artifact_budget_bytes = 1;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  // Raw v3 session: Hello, one Eval, then the transport dies (no Bye).
  TcpStream first = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  hello.seq = 1;
  first.send_frame(encode(hello));
  Message iface = decode(first.recv_frame());
  ASSERT_EQ(iface.type, MsgType::Iface);
  const std::string token = Json::parse(iface.text).at("token").as_string();

  Message eval1;
  eval1.type = MsgType::Eval;
  eval1.values["a"] = BitVector::from_uint(8, 10);
  eval1.values["b"] = BitVector::from_uint(8, 7);
  eval1.count = 1;
  eval1.seq = 2;
  first.send_frame(encode(eval1));
  Message v1 = decode(first.recv_frame());
  ASSERT_EQ(v1.type, MsgType::Values);
  first.shutdown();
  first.close();

  // Churn the store with other configurations while the session is dead
  // or parked. Its artifact stays pinned the whole time (open -> close),
  // so its program can never be freed while a Resume might replay.
  for (int k = 1; k <= 4; ++k) {
    ConnectSpec spec;
    spec.customer = "acme";
    spec.module = "kcm-multiplier";
    spec.params["input_width"] = 8;
    spec.params["constant"] = k;
    SimClient churn(port, spec);
    churn.bye();
  }
  ASSERT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 1; }));
  core::ArtifactStore::Stats store_stats = service.artifacts().stats();
  EXPECT_GE(store_stats.pinned_skips, 1u)
      << "over budget with pinned entries must skip, not evict them";

  // Resume replays against the pinned artifact's program, bit-exact.
  TcpStream second = TcpStream::connect(port);
  Message resume;
  resume.type = MsgType::Resume;
  resume.text = token;
  resume.count = 1;
  resume.seq = 3;
  second.send_frame(encode(resume));
  Message back = decode(second.recv_frame());
  ASSERT_EQ(back.type, MsgType::Iface) << back.text;
  EXPECT_TRUE(Json::parse(back.text).at("resumed").as_bool());

  second.send_frame(encode(eval1));  // idempotent replay of seq 2
  Message replayed = decode(second.recv_frame());
  ASSERT_EQ(replayed.type, MsgType::Values);
  EXPECT_EQ(replayed.values.at("s").to_string(),
            v1.values.at("s").to_string());

  Message eval2;
  eval2.type = MsgType::Eval;
  eval2.values["a"] = BitVector::from_uint(8, 20);
  eval2.values["b"] = BitVector::from_uint(8, 30);
  eval2.count = 1;
  eval2.seq = 4;
  second.send_frame(encode(eval2));
  Message v2 = decode(second.recv_frame());
  ASSERT_EQ(v2.type, MsgType::Values);
  EXPECT_EQ(v2.values.at("s").to_uint(), 50u);

  Message bye;
  bye.type = MsgType::Bye;
  second.send_frame(encode(bye));
  second.close();
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  service.stop();
}

TEST(DeliveryServiceTest, CycleBatchRoundTripOverTheWire) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "kcm-multiplier";
  spec.params["input_width"] = 8;
  spec.params["constant"] = 9;
  spec.params["signed_mode"] = 1;
  spec.params["pipelined_mode"] = 1;
  SimClient batch_client(port, spec);
  SimClient step_client(port, spec);
  ASSERT_EQ(batch_client.negotiated_protocol(), kProtocolVersion);

  const std::size_t n = 24;
  std::vector<BitVector> xs;
  for (std::size_t t = 0; t < n; ++t) {
    xs.push_back(BitVector::from_int(8, static_cast<std::int64_t>(t) - 12));
  }
  const std::size_t before = batch_client.round_trips();
  auto batch = batch_client.cycle_batch(n, {{"multiplicand", xs}});
  // The whole batch rode ONE round trip (the point of the message).
  EXPECT_EQ(batch_client.round_trips(), before + 1);
  ASSERT_EQ(batch.count("product"), 1u);
  ASSERT_EQ(batch.at("product").size(), n);

  // Same stimulus through per-cycle Evals on a second session.
  for (std::size_t t = 0; t < n; ++t) {
    std::map<std::string, BitVector> inputs;
    inputs["multiplicand"] = xs[t];
    auto out = step_client.eval(inputs, 1);
    EXPECT_EQ(batch.at("product")[t].to_string(),
              out.at("product").to_string())
        << "cycle " << t;
  }

  batch_client.bye();
  step_client.bye();
  service.stop();
}

TEST(DeliveryServiceTest, OversizedCycleBatchGetsTypedError) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  TcpStream raw = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  raw.send_frame(encode(hello));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Iface);

  Message batch;
  batch.type = MsgType::CycleBatch;
  batch.count = kMaxCycleBatch + 1;
  raw.send_frame(encode(batch));
  Message err = decode(raw.recv_frame());
  ASSERT_EQ(err.type, MsgType::Error);
  EXPECT_EQ(err.code, ErrorCode::BadRequest);
  EXPECT_NE(err.text.find("batch"), std::string::npos) << err.text;

  // The session survived the refusal; an in-range batch works.
  batch.count = 2;
  batch.series["a"] = {BitVector::from_uint(8, 1), BitVector::from_uint(8, 2)};
  batch.series["b"] = {BitVector::from_uint(8, 5), BitVector::from_uint(8, 6)};
  raw.send_frame(encode(batch));
  Message values = decode(raw.recv_frame());
  ASSERT_EQ(values.type, MsgType::BatchValues);
  ASSERT_EQ(values.series.at("s").size(), 2u);
  EXPECT_EQ(values.series.at("s")[0].to_uint(), 6u);
  EXPECT_EQ(values.series.at("s")[1].to_uint(), 8u);

  Message bye;
  bye.type = MsgType::Bye;
  raw.send_frame(encode(bye));
  raw.close();
  service.stop();
}

TEST(DeliveryServiceTest, V3ClientCompletesFullSession) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  std::uint16_t port = service.start();

  TcpStream raw = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  // encode() stamps the current version; rewrite the little-endian u16
  // at payload bytes [5,6] (after type byte + u32 magic) to speak v3.
  std::vector<std::uint8_t> frame = encode(hello);
  frame[5] = 3;
  frame[6] = 0;
  raw.send_frame(frame);
  Message iface = decode(raw.recv_frame());
  ASSERT_EQ(iface.type, MsgType::Iface);
  // Negotiation: min(client 3, server 4) = 3, echoed in the descriptor.
  Json desc = Json::parse(iface.text);
  ASSERT_TRUE(desc.has("protocol"));
  EXPECT_EQ(desc.at("protocol").as_int(), 3);

  // A complete v3 co-sim session: fine-grained set/cycle/get, then the
  // coarse Eval transaction, then a polite Bye. No CycleBatch anywhere.
  Message set;
  set.type = MsgType::SetInput;
  set.name = "a";
  set.value = BitVector::from_uint(8, 200);
  raw.send_frame(encode(set));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Ok);
  set.name = "b";
  set.value = BitVector::from_uint(8, 55);
  raw.send_frame(encode(set));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Ok);

  Message cyc;
  cyc.type = MsgType::Cycle;
  cyc.count = 1;
  raw.send_frame(encode(cyc));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Ok);

  Message get;
  get.type = MsgType::GetOutput;
  get.name = "s";
  raw.send_frame(encode(get));
  Message value = decode(raw.recv_frame());
  ASSERT_EQ(value.type, MsgType::Value);
  EXPECT_EQ(value.value.to_uint(), 255u);

  Message eval;
  eval.type = MsgType::Eval;
  eval.values["a"] = BitVector::from_uint(8, 30);
  eval.values["b"] = BitVector::from_uint(8, 12);
  raw.send_frame(encode(eval));
  Message values = decode(raw.recv_frame());
  ASSERT_EQ(values.type, MsgType::Values);
  EXPECT_EQ(values.values.at("s").to_uint(), 42u);

  Message bye;
  bye.type = MsgType::Bye;
  raw.send_frame(encode(bye));
  raw.close();
  EXPECT_TRUE(eventually(
      [&] { return service.stats().snapshot().sessions_active == 0; }));
  service.stop();
  EXPECT_EQ(service.stats().snapshot().sessions_closed, 1u);
}

TEST(SimServerTest, ClientRequestAfterStopFailsFast) {
  AdderGenerator gen;
  ParamMap params =
      ParamMap().set("width", std::int64_t{8}).resolved(gen.params());
  SimServer server(
      std::make_unique<BlackBoxModel>(gen.build(params), gen.name()));
  SimClient client(server.start());
  server.stop();
  EXPECT_THROW(client.cycle(1), NetError);
}

}  // namespace
}  // namespace jhdl
