// Protocol-robustness battery: every fault kind from
// net/fault_injection.h, on either side of the wire, at handshake and
// mid-session, against the resilient SimClient / hardened SimServer pair.
//
// The invariant under test (ISSUE acceptance): a session subjected to
// injected transport faults either completes BIT-EXACT after retries, or
// surfaces a typed Fatal NetError - it never hangs and never returns a
// silently wrong value. The acceptance test at the bottom runs 100
// sequential Eval sessions at a 5% per-frame fault rate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/generators.h"
#include "net/fault_injection.h"
#include "net/protocol.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "util/bytestream.h"

namespace jhdl {
namespace {

using namespace jhdl::core;
using namespace jhdl::net;
using namespace std::chrono_literals;

std::unique_ptr<BlackBoxModel> make_kcm_blackbox(int constant = -56) {
  KcmGenerator gen;
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{8})
                        .set("constant", std::int64_t{constant})
                        .set("signed_mode", true)
                        .resolved(gen.params());
  return std::make_unique<BlackBoxModel>(gen.build(params), gen.name());
}

// product = (constant * x) masked to the KCM's 15-bit output.
std::uint64_t expected_product(int x) {
  return static_cast<std::uint64_t>(std::int64_t{-56} * x) & 0x7FFF;
}

std::map<std::string, BitVector> kcm_inputs(int x) {
  return {{"multiplicand", BitVector::from_int(8, x)}};
}

// A client policy aggressive enough to ride out scripted faults while
// keeping the whole battery fast: millisecond backoffs, a 2 s recv bound
// so nothing can hang, and enough attempts to survive a burst.
ConnectSpec resilient_spec(std::shared_ptr<FaultPlan> plan,
                           int max_attempts = 6) {
  ConnectSpec spec;
  spec.retry.max_attempts = max_attempts;
  spec.retry.backoff_base = 1ms;
  spec.retry.backoff_max = 8ms;
  spec.retry.request_timeout = 2000ms;
  spec.fault_plan = std::move(plan);
  return spec;
}

// A connected loopback TcpStream pair for raw FaultyStream mechanics.
struct StreamPair {
  TcpStream a;  // accepted side
  TcpStream b;  // connecting side
};

StreamPair make_pair_over(TcpListener& listener) {
  StreamPair pair;
  std::thread accepter([&] { pair.a = listener.accept(); });
  pair.b = TcpStream::connect(listener.port());
  accepter.join();
  return pair;
}

// ---------------------------------------------------------------------
// FaultPlan unit behaviour.
// ---------------------------------------------------------------------

TEST(FaultPlanTest, ScriptedFaultFiresAtExactIndex) {
  FaultPlan plan;
  plan.script_send(2, {FaultKind::BitFlip, 11, 0ms});
  EXPECT_EQ(plan.next_send(100).kind, FaultKind::None);  // op 0
  EXPECT_EQ(plan.next_send(100).kind, FaultKind::None);  // op 1
  FaultSpec hit = plan.next_send(100);                   // op 2
  EXPECT_EQ(hit.kind, FaultKind::BitFlip);
  EXPECT_EQ(hit.offset, 11u);
  EXPECT_EQ(plan.next_send(100).kind, FaultKind::None);  // op 3
  EXPECT_EQ(plan.sends(), 4u);
  EXPECT_EQ(plan.injected(), 1u);
  // recv counter is independent of the send counter.
  plan.script_recv(0, {FaultKind::Drop, 5, 0ms});
  EXPECT_EQ(plan.next_recv(100).kind, FaultKind::Drop);
  EXPECT_EQ(plan.recvs(), 1u);
  EXPECT_EQ(plan.injected(), 2u);
}

TEST(FaultPlanTest, RandomPlanIsDeterministicForASeed) {
  FaultPlan first(42, 1.0);
  FaultPlan second(42, 1.0);
  for (int i = 0; i < 50; ++i) {
    FaultSpec x = first.next_send(64);
    FaultSpec y = second.next_send(64);
    EXPECT_EQ(x.kind, y.kind) << "op " << i;
    EXPECT_EQ(x.offset, y.offset) << "op " << i;
    EXPECT_EQ(x.delay.count(), y.delay.count()) << "op " << i;
    EXPECT_NE(x.kind, FaultKind::None) << "rate 1.0 must always fault";
  }
  // A different seed diverges somewhere in 50 draws.
  FaultPlan third(43, 1.0);
  FaultPlan fourth(42, 1.0);
  bool diverged = false;
  for (int i = 0; i < 50; ++i) {
    FaultSpec x = fourth.next_send(64);
    FaultSpec y = third.next_send(64);
    if (x.kind != y.kind || x.offset != y.offset) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlanTest, KindNamesAreDistinct) {
  const FaultKind kinds[] = {FaultKind::None,      FaultKind::Drop,
                             FaultKind::Truncate,  FaultKind::BitFlip,
                             FaultKind::Duplicate, FaultKind::Delay,
                             FaultKind::ShortWrite};
  std::vector<std::string> names;
  for (FaultKind k : kinds) {
    std::string name = fault_kind_name(k);
    EXPECT_FALSE(name.empty());
    for (const std::string& prior : names) EXPECT_NE(name, prior);
    names.push_back(name);
  }
}

// ---------------------------------------------------------------------
// FaultyStream mechanics over a raw socket pair.
// ---------------------------------------------------------------------

TEST(FaultyStreamTest, BitFlipSurfacesAsFrameErrorAtReceiver) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(0, {FaultKind::BitFlip, 1234, 0ms});
  FaultyStream sender(std::move(pair.b), plan);
  sender.send_frame({1, 2, 3, 4, 5});
  EXPECT_THROW(pair.a.recv_frame(), FrameError);
  // The corrupt frame consumed exactly its advertised length: the stream
  // is still aligned and the next frame arrives intact.
  sender.send_frame({6, 7});
  EXPECT_EQ(pair.a.recv_frame(), (std::vector<std::uint8_t>{6, 7}));
}

TEST(FaultyStreamTest, TruncateKillsTheConnection) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(0, {FaultKind::Truncate, 3, 0ms});
  FaultyStream sender(std::move(pair.b), plan);
  EXPECT_THROW(sender.send_frame({1, 2, 3, 4, 5, 6, 7, 8}), NetError);
  // The receiver sees a partial frame then EOF.
  EXPECT_THROW(pair.a.recv_frame(), NetError);
}

TEST(FaultyStreamTest, DropForwardsPrefixThenKills) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(0, {FaultKind::Drop, 2, 0ms});
  FaultyStream sender(std::move(pair.b), plan);
  EXPECT_THROW(sender.send_frame({1, 2, 3, 4}), NetError);
  EXPECT_THROW(pair.a.recv_frame(), NetError);
  EXPECT_EQ(plan->injected(), 1u);
}

TEST(FaultyStreamTest, DuplicateDeliversTwice) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(0, {FaultKind::Duplicate, 0, 0ms});
  FaultyStream sender(std::move(pair.b), plan);
  sender.send_frame({42, 43});
  EXPECT_EQ(pair.a.recv_frame(), (std::vector<std::uint8_t>{42, 43}));
  EXPECT_EQ(pair.a.recv_frame(), (std::vector<std::uint8_t>{42, 43}));
}

TEST(FaultyStreamTest, ShortWriteReassemblesAtReceiver) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(0, {FaultKind::ShortWrite, 5, 5ms});
  FaultyStream sender(std::move(pair.b), plan);
  std::vector<std::uint8_t> payload(64, 0xAB);
  sender.send_frame(payload);
  EXPECT_EQ(pair.a.recv_frame(), payload);
}

TEST(FaultyStreamTest, DelayDeliversIntact) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(0, {FaultKind::Delay, 0, 10ms});
  FaultyStream sender(std::move(pair.b), plan);
  auto start = std::chrono::steady_clock::now();
  sender.send_frame({9});
  EXPECT_EQ(pair.a.recv_frame(), (std::vector<std::uint8_t>{9}));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 9ms);
}

TEST(FaultyStreamTest, RecvSideCorruptionKeepsStreamAligned) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_recv(0, {FaultKind::BitFlip, 999, 0ms});
  FaultyStream receiver(std::move(pair.a), plan);
  pair.b.send_frame({1, 2, 3});
  pair.b.send_frame({4, 5, 6});
  EXPECT_THROW(receiver.recv_frame(), FrameError);
  EXPECT_EQ(receiver.recv_frame(), (std::vector<std::uint8_t>{4, 5, 6}));
}

TEST(FaultyStreamTest, RecvSideDuplicateBuffersSecondCopy) {
  TcpListener listener;
  StreamPair pair = make_pair_over(listener);
  auto plan = std::make_shared<FaultPlan>();
  plan->script_recv(0, {FaultKind::Duplicate, 0, 0ms});
  FaultyStream receiver(std::move(pair.a), plan);
  pair.b.send_frame({7, 8});
  pair.b.send_frame({9});
  EXPECT_EQ(receiver.recv_frame(), (std::vector<std::uint8_t>{7, 8}));
  EXPECT_EQ(receiver.recv_frame(), (std::vector<std::uint8_t>{7, 8}));
  EXPECT_EQ(receiver.recv_frame(), (std::vector<std::uint8_t>{9}));
}

// ---------------------------------------------------------------------
// The fault matrix: one scripted fault per session, swept over kind,
// direction (client/server, send/recv), and position (handshake or
// mid-session). Every session must complete BIT-EXACT.
// ---------------------------------------------------------------------

struct FaultCase {
  const char* name;
  bool server_side;   // whose plan gets the script
  bool on_send;       // faulted direction, from the plan owner's view
  std::size_t index;  // 0-based frame-operation index on that side
  FaultKind kind;
  std::size_t offset;
};

// Operation indices, for reading the table below:
//   client: send#0=Hello  recv#0=Iface  send#1=Eval1  recv#1=reply1 ...
//   server: recv#0=Hello  send#0=Iface  recv#1=Eval1  send#1=reply1 ...
const FaultCase kFaultMatrix[] = {
    // Client-side faults on the handshake.
    {"ClientHelloDropped", false, true, 0, FaultKind::Drop, 5},
    {"ClientHelloCorrupted", false, true, 0, FaultKind::BitFlip, 13},
    {"ClientIfaceDropped", false, false, 0, FaultKind::Drop, 0},
    {"ClientIfaceCorrupted", false, false, 0, FaultKind::BitFlip, 999},
    {"ClientIfaceDuplicated", false, false, 0, FaultKind::Duplicate, 0},
    // Client-side faults on the first Eval request.
    {"ClientEvalDropped", false, true, 1, FaultKind::Drop, 0},
    {"ClientEvalTruncated", false, true, 1, FaultKind::Truncate, 3},
    {"ClientEvalCorrupted", false, true, 1, FaultKind::BitFlip, 12345},
    {"ClientEvalDuplicated", false, true, 1, FaultKind::Duplicate, 0},
    {"ClientEvalDelayed", false, true, 1, FaultKind::Delay, 0},
    {"ClientEvalShortWrite", false, true, 1, FaultKind::ShortWrite, 7},
    // Client-side faults on the first Eval reply.
    {"ClientReplyDropped", false, false, 1, FaultKind::Drop, 4},
    {"ClientReplyTruncated", false, false, 1, FaultKind::Truncate, 1},
    {"ClientReplyCorrupted", false, false, 1, FaultKind::BitFlip, 7},
    {"ClientReplyDuplicated", false, false, 1, FaultKind::Duplicate, 0},
    {"ClientReplyDelayed", false, false, 1, FaultKind::Delay, 0},
    // Server-side faults.
    {"ServerHelloRecvCorrupted", true, false, 0, FaultKind::BitFlip, 3},
    {"ServerIfaceDropped", true, true, 0, FaultKind::Drop, 2},
    {"ServerEvalRecvTruncated", true, false, 1, FaultKind::Truncate, 2},
    {"ServerEvalRecvDropped", true, false, 1, FaultKind::Drop, 4},
    {"ServerReplyDropped", true, true, 1, FaultKind::Drop, 6},
    {"ServerReplyCorrupted", true, true, 1, FaultKind::BitFlip, 21},
    {"ServerReplyDuplicated", true, true, 1, FaultKind::Duplicate, 0},
};

class FaultMatrix : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultMatrix, SessionCompletesBitExact) {
  const FaultCase& fc = GetParam();
  SimServer server(make_kcm_blackbox());
  auto client_plan = std::make_shared<FaultPlan>();
  auto server_plan = std::make_shared<FaultPlan>();
  FaultPlan& plan = fc.server_side ? *server_plan : *client_plan;
  FaultSpec spec{fc.kind, fc.offset, 2ms};
  if (fc.on_send) {
    plan.script_send(fc.index, spec);
  } else {
    plan.script_recv(fc.index, spec);
  }
  server.set_fault_plan(server_plan);
  std::uint16_t port = server.start();
  {
    SimClient client(port, resilient_spec(client_plan));
    for (int k = 0; k < 3; ++k) {
      const int x = 3 + 10 * k;
      auto out = client.eval(kcm_inputs(x), 0);
      ASSERT_EQ(out.at("product").to_uint(), expected_product(x))
          << fc.name << " eval " << k;
    }
    client.bye();
  }
  server.stop();
  EXPECT_GE(client_plan->injected() + server_plan->injected(), 1u)
      << "the scripted fault never fired";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FaultMatrix, ::testing::ValuesIn(kFaultMatrix),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------
// Recovery semantics: resume, idempotent replay, retry-in-place.
// ---------------------------------------------------------------------

TEST(FaultRecovery, ResumeRestoresSessionStateAfterDrop) {
  SimServer server(make_kcm_blackbox());
  auto plan = std::make_shared<FaultPlan>();
  // Client ops: send#0=Hello, send#1=Cycle(3), send#2=Cycle(2) <- killed.
  plan->script_send(2, {FaultKind::Drop, 3, 0ms});
  std::uint16_t port = server.start();
  SimClient client(port, resilient_spec(plan));
  const std::string token = client.session_token();
  EXPECT_FALSE(token.empty());
  client.cycle(3);
  EXPECT_EQ(client.last_acked_cycles(), 3u);
  client.cycle(2);  // transport dies mid-send; reconnect + Resume + resend
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(client.session_token(), token) << "token survives the resume";
  EXPECT_EQ(server.resumes(), 1u);
  // The resume Iface reports the server-side state at reattach time: the
  // dropped Cycle(2) had NOT executed, so the model was still at 3.
  EXPECT_TRUE(client.interface().has("resumed"));
  EXPECT_EQ(client.interface().at("cycles").as_int(), 3);
  // ... and the resent Cycle(2) then executed exactly once.
  EXPECT_EQ(client.last_acked_cycles(), 5u);
  auto out = client.eval(kcm_inputs(5), 0);
  EXPECT_EQ(out.at("product").to_uint(), expected_product(5));
  client.bye();
  server.stop();
}

TEST(FaultRecovery, RetriedRequestExecutesExactlyOnce) {
  SimServer server(make_kcm_blackbox());
  auto server_plan = std::make_shared<FaultPlan>();
  // Server ops: send#0=Iface, send#1=the Ok for Cycle(4) <- corrupted.
  server_plan->script_send(1, {FaultKind::BitFlip, 77, 0ms});
  server.set_fault_plan(server_plan);
  std::uint16_t port = server.start();
  SimClient client(port, resilient_spec(nullptr));
  client.cycle(4);  // reply corrupt -> FrameError -> resend same seq
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.reconnects(), 0u) << "corrupt reply retries in place";
  EXPECT_EQ(server.replays(), 1u) << "resend served from the cache";
  // Had the replay re-executed, the model would sit at 8 cycles.
  EXPECT_EQ(client.last_acked_cycles(), 4u);
  client.cycle(0);  // fresh request reads the authoritative count
  EXPECT_EQ(client.last_acked_cycles(), 4u);
  client.bye();
  server.stop();
}

TEST(FaultRecovery, MalformedRequestIsRetriedInPlaceWithoutReconnect) {
  SimServer server(make_kcm_blackbox());
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(1, {FaultKind::BitFlip, 31, 0ms});  // first Eval
  std::uint16_t port = server.start();
  SimClient client(port, resilient_spec(plan));
  auto out = client.eval(kcm_inputs(-100), 0);
  EXPECT_EQ(out.at("product").to_uint(), expected_product(-100));
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.reconnects(), 0u)
      << "Error(MalformedFrame) keeps the connection";
  EXPECT_EQ(server.malformed_frames(), 1u);
  client.bye();
  server.stop();
}

TEST(FaultRecovery, SilentServerTimesOutInsteadOfHanging) {
  // A server that accepts and then says nothing: the one fault mode no
  // checksum or FIN can surface. The per-request recv timeout must turn
  // it into a bounded, retryable failure.
  TcpListener listener;
  std::atomic<bool> done{false};
  std::vector<TcpStream> held;
  std::thread silent([&] {
    try {
      while (!done) held.push_back(listener.accept());
    } catch (const NetError&) {
      // listener closed
    }
  });
  ConnectSpec spec;
  spec.retry.max_attempts = 2;
  spec.retry.backoff_base = 1ms;
  spec.retry.request_timeout = 100ms;
  const auto start = std::chrono::steady_clock::now();
  try {
    SimClient client(listener.port(), spec);
    FAIL() << "handshake against a silent server must not succeed";
  } catch (const NetError& e) {
    EXPECT_TRUE(e.retryable());
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  done = true;
  listener.close();
  silent.join();
}

TEST(FaultRecovery, DeadPortExhaustsRetriesWithRetryableError) {
  std::uint16_t dead_port;
  {
    TcpListener ephemeral;
    dead_port = ephemeral.port();
  }  // closed: nothing listens here now
  ConnectSpec spec;
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = 1ms;
  try {
    SimClient client(dead_port, spec);
    FAIL() << "connect to a dead port must not succeed";
  } catch (const NetError& e) {
    EXPECT_TRUE(e.retryable()) << "exhaustion reports the transport kind";
  }
}

TEST(FaultRecovery, ByeIsBestEffortOnDeadTransport) {
  SimServer server(make_kcm_blackbox());
  auto plan = std::make_shared<FaultPlan>();
  plan->script_send(1, {FaultKind::Drop, 0, 0ms});  // the Bye frame
  std::uint16_t port = server.start();
  SimClient client(port, resilient_spec(plan));
  EXPECT_NO_THROW(client.bye());
  server.stop();
}

// ---------------------------------------------------------------------
// Error taxonomy: Retryable vs Fatal classification.
// ---------------------------------------------------------------------

TEST(FaultTaxonomy, ErrorCodesClassifyRetryability) {
  EXPECT_FALSE(error_retryable(ErrorCode::Generic));
  EXPECT_TRUE(error_retryable(ErrorCode::Saturated));
  EXPECT_FALSE(error_retryable(ErrorCode::VersionMismatch));
  EXPECT_FALSE(error_retryable(ErrorCode::LicenseDenied));
  EXPECT_FALSE(error_retryable(ErrorCode::BadRequest));
  EXPECT_TRUE(error_retryable(ErrorCode::MalformedFrame));
  EXPECT_TRUE(error_retryable(ErrorCode::ShuttingDown));
  EXPECT_FALSE(error_retryable(ErrorCode::UnknownSession));
}

TEST(FaultTaxonomy, FrameErrorIsAlwaysRetryable) {
  FrameError err("crc mismatch");
  EXPECT_TRUE(err.retryable());
  EXPECT_EQ(err.kind(), NetError::Kind::Retryable);
  NetError fatal("bye", NetError::Kind::Fatal);
  EXPECT_FALSE(fatal.retryable());
}

TEST(FaultTaxonomy, ModelErrorsAreFatalAndNotRetried) {
  SimServer server(make_kcm_blackbox());
  std::uint16_t port = server.start();
  SimClient client(port, resilient_spec(nullptr, 5));
  try {
    client.get_output("no-such-port");
    FAIL() << "unknown port must be refused";
  } catch (const NetError& e) {
    EXPECT_FALSE(e.retryable()) << "BadRequest is Fatal";
  }
  EXPECT_EQ(client.retries(), 0u) << "a Fatal error burns no retries";
  // The refusal did not poison the session.
  auto out = client.eval(kcm_inputs(17), 0);
  EXPECT_EQ(out.at("product").to_uint(), expected_product(17));
  client.bye();
  server.stop();
}

TEST(FaultTaxonomy, UnknownResumeTokenIsFatal) {
  SimServer server(make_kcm_blackbox());
  std::uint16_t port = server.start();
  TcpStream raw = TcpStream::connect(port);
  Message resume;
  resume.type = MsgType::Resume;
  resume.text = "bogus-token";
  resume.count = 7;
  raw.send_frame(encode(resume));
  Message reply = decode(raw.recv_frame());
  ASSERT_EQ(reply.type, MsgType::Error);
  EXPECT_EQ(reply.code, ErrorCode::UnknownSession);
  EXPECT_FALSE(error_retryable(reply.code));
  raw.close();
  server.stop();
}

TEST(FaultTaxonomy, LegacyHelloGetsVersionMismatchCode) {
  SimServer server(make_kcm_blackbox());
  std::uint16_t port = server.start();
  TcpStream raw = TcpStream::connect(port);
  raw.send_frame({static_cast<std::uint8_t>(MsgType::Hello)});  // bare v1
  Message reply = decode(raw.recv_frame());
  ASSERT_EQ(reply.type, MsgType::Error);
  EXPECT_EQ(reply.code, ErrorCode::VersionMismatch);
  EXPECT_FALSE(error_retryable(reply.code));
  raw.close();
  server.stop();
}

TEST(FaultTaxonomy, V2HelloIsStillServed) {
  // A hand-built v2 Hello (no seq field, version 2 on the wire) must be
  // answered with Iface, and an unnumbered Eval must round-trip - the
  // back-compat row of DESIGN.md section 8.
  SimServer server(make_kcm_blackbox());
  std::uint16_t port = server.start();
  TcpStream raw = TcpStream::connect(port);
  ByteWriter hello;
  hello.u8(static_cast<std::uint8_t>(MsgType::Hello));
  hello.u32(kHelloMagic);
  hello.u16(2);     // wire version 2
  hello.str("");    // customer
  hello.str("");    // module
  hello.varint(0);  // param count
  raw.send_frame(hello.take());
  Message iface = decode(raw.recv_frame());
  ASSERT_EQ(iface.type, MsgType::Iface);
  Message eval;
  eval.type = MsgType::Eval;
  eval.values = kcm_inputs(9);
  eval.count = 0;
  eval.seq = 0;  // v2 client: unnumbered
  raw.send_frame(encode(eval));
  Message values = decode(raw.recv_frame());
  ASSERT_EQ(values.type, MsgType::Values);
  EXPECT_EQ(values.values.at("product").to_uint(), expected_product(9));
  raw.send_frame(encode(Message{}));  // Bye
  raw.close();
  server.stop();
}

// ---------------------------------------------------------------------
// Acceptance: 100 sequential Eval sessions at a 5% per-frame fault rate,
// all bit-exact, no hangs (the suite-wide ctest timeout is the backstop).
// ---------------------------------------------------------------------

TEST(FaultAcceptance, HundredSessionsAtFivePercentFaultRate) {
  SimServer server(make_kcm_blackbox());
  auto plan = std::make_shared<FaultPlan>(0xFA517u, 0.05);
  std::uint16_t port = server.start();
  for (int session = 0; session < 100; ++session) {
    ConnectSpec spec = resilient_spec(plan, 10);
    SimClient client(port, spec);
    for (int k = 0; k < 3; ++k) {
      const int x = (session * 3 + k) % 120 - 60;
      auto out = client.eval(kcm_inputs(x), 0);
      ASSERT_EQ(out.at("product").to_uint(), expected_product(x))
          << "session " << session << " eval " << k;
    }
    client.bye();
  }
  EXPECT_GT(plan->injected(), 0u) << "5% over ~1000 ops must fire";
  server.stop();
}

}  // namespace
}  // namespace jhdl
