// Robustness ("fuzz-lite") tests: every parser and decoder in the system
// must reject arbitrary malformed input with an exception - never crash,
// hang, or silently accept garbage. Random buffers and mutations of valid
// documents are thrown at: the protocol decoder, archive deserializer,
// sealed-payload opener, JSON parser, s-expression/EDIF reader, and the
// JSON netlist reader.
// The wire-protocol fuzzer at the bottom drives 10k hostile frames at a
// LIVE SimServer session: the server must answer every single one (with a
// typed Error or a valid reply) and still serve a correct Eval afterwards.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/artifact.h"
#include "core/catalog.h"
#include "core/generators.h"
#include "core/packaging.h"
#include "net/sim_server.h"
#include "net/socket.h"
#include "util/bytestream.h"
#include "hdl/hwsystem.h"
#include "net/protocol.h"
#include "netlist/edif_reader.h"
#include "netlist/netlist.h"
#include "tech/gates.h"
#include "util/cipher.h"
#include "util/compress.h"
#include "util/json.h"
#include "util/rng.h"

namespace jhdl {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> buf(rng.below(max_len + 1));
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  return buf;
}

template <typename Fn>
void expect_throw_or_value(Fn&& fn) {
  try {
    fn();  // accepting is fine if it parses; crashing/hanging is not
  } catch (const std::exception&) {
    // expected for almost all inputs
  }
}

TEST(FuzzTest, ProtocolDecoderOnRandomBytes) {
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    auto buf = random_bytes(rng, 64);
    expect_throw_or_value([&] { (void)net::decode(buf); });
  }
}

TEST(FuzzTest, ProtocolDecoderOnMutatedValidMessage) {
  net::Message msg;
  msg.type = net::MsgType::Eval;
  msg.values["a"] = BitVector::from_uint(8, 0x5A);
  msg.values["bb"] = BitVector::from_string("1x0z");
  msg.count = 3;
  auto valid = net::encode(msg);
  Rng rng(102);
  for (int i = 0; i < 2000; ++i) {
    auto bad = valid;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    expect_throw_or_value([&] { (void)net::decode(bad); });
  }
}

TEST(FuzzTest, ArchiveDeserializerOnMutations) {
  core::Archive a("fuzz");
  a.add_text("x.txt", "some content worth protecting");
  auto valid = a.serialize();
  Rng rng(103);
  for (int i = 0; i < 1000; ++i) {
    auto bad = valid;
    std::size_t hits = 1 + rng.below(4);
    for (std::size_t k = 0; k < hits; ++k) {
      bad[rng.below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    expect_throw_or_value([&] { (void)core::Archive::deserialize(bad); });
  }
}

TEST(FuzzTest, LzssDecompressorOnRandomBytes) {
  Rng rng(104);
  for (int i = 0; i < 2000; ++i) {
    auto buf = random_bytes(rng, 128);
    expect_throw_or_value([&] { (void)lzss_decompress(buf); });
  }
}

TEST(FuzzTest, SealedOpenerNeverAcceptsMutations) {
  auto key = derive_key("k", "s");
  std::vector<std::uint8_t> plain(100, 7);
  auto sealed = seal(plain, key, 9);
  Rng rng(105);
  for (int i = 0; i < 500; ++i) {
    auto bad = sealed;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    // Unlike the other decoders, authentication makes acceptance a bug.
    EXPECT_THROW((void)open(bad, key), std::runtime_error) << "i=" << i;
  }
}

TEST(FuzzTest, JsonParserOnRandomText) {
  Rng rng(106);
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsenull \n\t\\x";
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    std::size_t len = rng.below(80);
    for (std::size_t k = 0; k < len; ++k) {
      text.push_back(alphabet[rng.below(sizeof alphabet - 1)]);
    }
    expect_throw_or_value([&] { (void)Json::parse(text); });
  }
}

TEST(FuzzTest, EdifReaderOnMutatedDocument) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o = new Wire(&hw, 1, "o");
  Cell* wrap = new Cell(&hw, "wrap");
  class G : public Cell {
   public:
    G(Node* p, Wire* a, Wire* b, Wire* o) : Cell(p, "g") {
      port_in("a", a);
      port_in("b", b);
      port_out("o", o);
      new tech::And2(this, a, b, o);
    }
  };
  auto* g = new G(wrap, a, b, o);
  std::string valid = netlist::write_edif(*g);
  Rng rng(107);
  for (int i = 0; i < 300; ++i) {
    std::string bad = valid;
    std::size_t pos = rng.below(bad.size());
    switch (rng.below(3)) {
      case 0:
        bad[pos] = static_cast<char>(rng.next() & 0x7F);
        break;
      case 1:
        bad.erase(pos, rng.below(10) + 1);
        break;
      default:
        bad.insert(pos, ")(");
        break;
    }
    expect_throw_or_value([&] { (void)netlist::read_edif(bad); });
  }
}

// ---------------------------------------------------------------------
// Wire-protocol fuzzing against a live server session (v3 hardening).
// ---------------------------------------------------------------------

std::unique_ptr<core::BlackBoxModel> make_fuzz_blackbox() {
  core::KcmGenerator gen;
  core::ParamMap params = core::ParamMap()
                              .set("input_width", std::int64_t{8})
                              .set("constant", std::int64_t{-56})
                              .set("signed_mode", true)
                              .resolved(gen.params());
  return std::make_unique<core::BlackBoxModel>(gen.build(params), gen.name());
}

TEST(FuzzTest, WireProtocolFuzzAgainstLiveServer) {
  // 10k hostile payloads - half seeded-random, half mutations of a valid
  // Eval - each CRC-framed so it reaches the decoder. The server must
  // answer EVERY frame (decode failures become Error(MalformedFrame))
  // and the session must still evaluate correctly afterwards. A frame
  // with no reply would deadlock this loop; the ctest timeout is the
  // backstop that turns a hang into a failure.
  net::SimServer server(make_fuzz_blackbox());
  std::uint16_t port = server.start();
  net::TcpStream raw = net::TcpStream::connect(port);
  raw.set_recv_timeout(10000);

  net::Message eval;
  eval.type = net::MsgType::Eval;
  eval.values["multiplicand"] = BitVector::from_uint(8, 0x21);
  eval.count = 0;
  const std::vector<std::uint8_t> valid = net::encode(eval);

  Rng rng(0xF022);
  int sent = 0;
  for (int i = 0; i < 10000; ++i) {
    std::vector<std::uint8_t> payload;
    if (i % 2 == 0) {
      payload = random_bytes(rng, 48);
    } else {
      payload = valid;
      const std::size_t hits = 1 + rng.below(4);
      for (std::size_t k = 0; k < hits; ++k) {
        payload[rng.below(payload.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
    }
    if (!payload.empty() &&
        payload[0] == static_cast<std::uint8_t>(net::MsgType::Bye)) {
      continue;  // a well-formed Bye would (correctly) end the session
    }
    raw.send_frame(payload);
    ++sent;
    net::Message reply = net::decode(raw.recv_frame());
    // Any reply type is acceptable; what matters is that one arrived and
    // that our own framing survived (the reply decodes).
    (void)reply;
  }
  EXPECT_GT(sent, 9000);
  EXPECT_GT(server.malformed_frames(), 0u)
      << "the sweep never produced an undecodable payload";

  // The session survived 10k hostile frames and still computes.
  raw.send_frame(valid);
  net::Message values = net::decode(raw.recv_frame());
  ASSERT_EQ(values.type, net::MsgType::Values);
  EXPECT_EQ(values.values.at("product").to_uint(),
            static_cast<std::uint64_t>(std::int64_t{-56} * 0x21) & 0x7FFF);
  raw.close();
  server.stop();
}

TEST(FuzzTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  // A header claiming a ~4 GiB payload must be refused by the length cap
  // BEFORE any buffer is allocated - the classic memory-exhaustion DoS.
  net::TcpListener listener;
  net::TcpStream received;
  std::thread accepter([&] { received = listener.accept(); });
  net::TcpStream sender = net::TcpStream::connect(listener.port());
  accepter.join();

  ByteWriter header;
  header.u32(0xFFFFFFF0u);  // advertised length, ~4 GiB
  header.u32(0);            // CRC field (never reached)
  sender.send_bytes(header.take());
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)received.recv_frame();
    FAIL() << "oversized frame must be rejected";
  } catch (const net::NetError& e) {
    EXPECT_NE(std::string(e.what()).find("too large"), std::string::npos);
  }
  // Rejection is immediate: no 4 GiB allocation, no draining the socket.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(2));
}

TEST(FuzzTest, UnknownMsgTypeGetsErrorNotClose) {
  net::SimServer server(make_fuzz_blackbox());
  std::uint16_t port = server.start();
  net::TcpStream raw = net::TcpStream::connect(port);
  raw.send_frame({0xC8, 1, 2, 3});  // type 200: not a MsgType
  net::Message reply = net::decode(raw.recv_frame());
  ASSERT_EQ(reply.type, net::MsgType::Error);
  EXPECT_EQ(reply.code, net::ErrorCode::MalformedFrame);
  // Session is still alive.
  net::Message eval;
  eval.type = net::MsgType::Eval;
  eval.values["multiplicand"] = BitVector::from_uint(8, 2);
  raw.send_frame(net::encode(eval));
  EXPECT_EQ(net::decode(raw.recv_frame()).type, net::MsgType::Values);
  raw.close();
  server.stop();
}

TEST(FuzzTest, ByteReaderRejectsHostileLengthsWithoutOverflow) {
  // Regression for the need() integer overflow: a varint string length
  // near SIZE_MAX must throw instead of wrapping `pos_ + n` and letting
  // the reader run off the buffer.
  {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(net::MsgType::SetInput));
    for (int i = 0; i < 9; ++i) w.u8(0xFF);  // varint length = huge
    w.u8(0x01);
    const auto payload = w.take();
    EXPECT_THROW((void)net::decode(payload), std::runtime_error);
  }
  {
    std::vector<std::uint8_t> buf = {0xFD, 0xFF, 0xFF, 0xFF, 0xFF,
                                     0xFF, 0xFF, 0xFF, 0xFF, 0x01};
    ByteReader r(buf);  // varint() = 0xFFFFFFFFFFFFFFFD, then no bytes
    EXPECT_THROW((void)r.str(), std::runtime_error);
  }
  {
    std::vector<std::uint8_t> buf = {1, 2, 3};
    ByteReader r(buf);
    // pos_ + n would wrap for n near SIZE_MAX; need() must still throw.
    EXPECT_THROW((void)r.raw(SIZE_MAX - 1), std::runtime_error);
  }
}

TEST(FuzzTest, LengthFieldMutationsNeverHangTheServer) {
  // Mutating the length field itself desynchronizes the stream, so each
  // probe gets a dedicated connection: the server must either answer or
  // kill the connection within the recv timeout - never wedge.
  net::SimServer server(make_fuzz_blackbox());
  std::uint16_t port = server.start();
  net::Message eval;
  eval.type = net::MsgType::Eval;
  eval.values["multiplicand"] = BitVector::from_uint(8, 1);
  const std::vector<std::uint8_t> frame = net::frame_wrap(net::encode(eval));
  Rng rng(0x1E46);
  for (int i = 0; i < 32; ++i) {
    std::vector<std::uint8_t> bad = frame;
    bad[rng.below(4)] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    net::TcpStream raw = net::TcpStream::connect(port);
    raw.set_recv_timeout(200);
    try {
      raw.send_bytes(bad);
      (void)raw.recv_frame();  // reply, garbage, timeout, or close: all ok
    } catch (const net::NetError&) {
      // acceptable: the server tore the connection down or went quiet
    }
    raw.close();
  }
  // The server itself is still healthy.
  net::TcpStream raw = net::TcpStream::connect(port);
  raw.send_frame(net::encode(eval));
  EXPECT_EQ(net::decode(raw.recv_frame()).type, net::MsgType::Values);
  raw.close();
  server.stop();
}

TEST(FuzzTest, JsonNetlistReaderOnMutatedDocument) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  Cell* wrap = new Cell(&hw, "wrap");
  class G : public Cell {
   public:
    G(Node* p, Wire* a, Wire* o) : Cell(p, "g") {
      port_in("a", a);
      port_out("o", o);
      new tech::Inv(this, a, o);
    }
  };
  auto* g = new G(wrap, a, o);
  std::string valid = netlist::write_json(*g);
  Rng rng(108);
  for (int i = 0; i < 300; ++i) {
    std::string bad = valid;
    std::size_t pos = rng.below(bad.size());
    bad[pos] = static_cast<char>(rng.next() & 0x7F);
    expect_throw_or_value([&] { (void)netlist::read_json(bad); });
  }
}

// Property over the whole standard catalog: any in-range parameter draw
// must either elaborate - and then survive the full package / estimate /
// netlist / kernel-compile pipeline - or be rejected with the typed
// ParamError reserved for documented cross-field constraints (e.g. the
// kcm product_width floor). Anything else (a crash, an std::logic_error
// out of the guts of elaboration) fails.
TEST(FuzzTest, CatalogRandomValidParamsRunTheFullPipeline) {
  const core::IpCatalog catalog = core::standard_catalog();
  Rng rng(0xCA7A106);
  for (const auto& gen : catalog.entries()) {
    const std::vector<core::ParamSpec> schema = gen->params();
    for (int draw = 0; draw < 5; ++draw) {
      core::ParamMap params;
      for (const core::ParamSpec& spec : schema) {
        if (spec.kind == core::ParamSpec::Kind::Bool) {
          params.set(spec.name, rng.coin());
        } else {
          params.set(spec.name, rng.range(spec.min_value, spec.max_value));
        }
      }
      SCOPED_TRACE(gen->name() + ": " + params.summary());
      try {
        core::IpArtifact artifact(gen, params.resolved(schema));
        EXPECT_GT(artifact.area().primitives, 0u);
        EXPECT_FALSE(
            artifact.netlist_text(core::NetlistFormat::Edif).empty());
        EXPECT_NE(artifact.program(), nullptr);
        core::Packager packager;
        EXPECT_FALSE(packager.applet_archive(*gen).entries().empty());
      } catch (const core::ParamError&) {
        // typed rejection of a cross-field constraint: acceptable
      }
    }
  }
}

/// Out-of-range and malformed parameter values must come back as
/// ParamError from schema resolution for every generator - never UB,
/// never a raw crash from inside build().
TEST(FuzzTest, CatalogInvalidParamsRejectedWithTypedError) {
  const core::IpCatalog catalog = core::standard_catalog();
  for (const auto& gen : catalog.entries()) {
    const std::vector<core::ParamSpec> schema = gen->params();
    for (const core::ParamSpec& spec : schema) {
      SCOPED_TRACE(gen->name() + "." + spec.name);
      if (spec.kind == core::ParamSpec::Kind::Int) {
        EXPECT_THROW(core::ParamMap()
                         .set(spec.name, spec.max_value + 1)
                         .resolved(schema),
                     core::ParamError);
        EXPECT_THROW(core::ParamMap()
                         .set(spec.name, spec.min_value - 1)
                         .resolved(schema),
                     core::ParamError);
      } else {
        EXPECT_THROW(
            core::ParamMap().set(spec.name, std::int64_t{2}).resolved(schema),
            core::ParamError);
      }
    }
    EXPECT_THROW(core::ParamMap()
                     .set("no-such-parameter", std::int64_t{1})
                     .resolved(schema),
                 core::ParamError);
  }
}

}  // namespace
}  // namespace jhdl
