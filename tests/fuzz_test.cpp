// Robustness ("fuzz-lite") tests: every parser and decoder in the system
// must reject arbitrary malformed input with an exception - never crash,
// hang, or silently accept garbage. Random buffers and mutations of valid
// documents are thrown at: the protocol decoder, archive deserializer,
// sealed-payload opener, JSON parser, s-expression/EDIF reader, and the
// JSON netlist reader.
#include <gtest/gtest.h>

#include "core/packaging.h"
#include "hdl/hwsystem.h"
#include "net/protocol.h"
#include "netlist/edif_reader.h"
#include "netlist/netlist.h"
#include "tech/gates.h"
#include "util/cipher.h"
#include "util/compress.h"
#include "util/json.h"
#include "util/rng.h"

namespace jhdl {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> buf(rng.below(max_len + 1));
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  return buf;
}

template <typename Fn>
void expect_throw_or_value(Fn&& fn) {
  try {
    fn();  // accepting is fine if it parses; crashing/hanging is not
  } catch (const std::exception&) {
    // expected for almost all inputs
  }
}

TEST(FuzzTest, ProtocolDecoderOnRandomBytes) {
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    auto buf = random_bytes(rng, 64);
    expect_throw_or_value([&] { (void)net::decode(buf); });
  }
}

TEST(FuzzTest, ProtocolDecoderOnMutatedValidMessage) {
  net::Message msg;
  msg.type = net::MsgType::Eval;
  msg.values["a"] = BitVector::from_uint(8, 0x5A);
  msg.values["bb"] = BitVector::from_string("1x0z");
  msg.count = 3;
  auto valid = net::encode(msg);
  Rng rng(102);
  for (int i = 0; i < 2000; ++i) {
    auto bad = valid;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    expect_throw_or_value([&] { (void)net::decode(bad); });
  }
}

TEST(FuzzTest, ArchiveDeserializerOnMutations) {
  core::Archive a("fuzz");
  a.add_text("x.txt", "some content worth protecting");
  auto valid = a.serialize();
  Rng rng(103);
  for (int i = 0; i < 1000; ++i) {
    auto bad = valid;
    std::size_t hits = 1 + rng.below(4);
    for (std::size_t k = 0; k < hits; ++k) {
      bad[rng.below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    expect_throw_or_value([&] { (void)core::Archive::deserialize(bad); });
  }
}

TEST(FuzzTest, LzssDecompressorOnRandomBytes) {
  Rng rng(104);
  for (int i = 0; i < 2000; ++i) {
    auto buf = random_bytes(rng, 128);
    expect_throw_or_value([&] { (void)lzss_decompress(buf); });
  }
}

TEST(FuzzTest, SealedOpenerNeverAcceptsMutations) {
  auto key = derive_key("k", "s");
  std::vector<std::uint8_t> plain(100, 7);
  auto sealed = seal(plain, key, 9);
  Rng rng(105);
  for (int i = 0; i < 500; ++i) {
    auto bad = sealed;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    // Unlike the other decoders, authentication makes acceptance a bug.
    EXPECT_THROW((void)open(bad, key), std::runtime_error) << "i=" << i;
  }
}

TEST(FuzzTest, JsonParserOnRandomText) {
  Rng rng(106);
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsenull \n\t\\x";
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    std::size_t len = rng.below(80);
    for (std::size_t k = 0; k < len; ++k) {
      text.push_back(alphabet[rng.below(sizeof alphabet - 1)]);
    }
    expect_throw_or_value([&] { (void)Json::parse(text); });
  }
}

TEST(FuzzTest, EdifReaderOnMutatedDocument) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o = new Wire(&hw, 1, "o");
  Cell* wrap = new Cell(&hw, "wrap");
  class G : public Cell {
   public:
    G(Node* p, Wire* a, Wire* b, Wire* o) : Cell(p, "g") {
      port_in("a", a);
      port_in("b", b);
      port_out("o", o);
      new tech::And2(this, a, b, o);
    }
  };
  auto* g = new G(wrap, a, b, o);
  std::string valid = netlist::write_edif(*g);
  Rng rng(107);
  for (int i = 0; i < 300; ++i) {
    std::string bad = valid;
    std::size_t pos = rng.below(bad.size());
    switch (rng.below(3)) {
      case 0:
        bad[pos] = static_cast<char>(rng.next() & 0x7F);
        break;
      case 1:
        bad.erase(pos, rng.below(10) + 1);
        break;
      default:
        bad.insert(pos, ")(");
        break;
    }
    expect_throw_or_value([&] { (void)netlist::read_edif(bad); });
  }
}

TEST(FuzzTest, JsonNetlistReaderOnMutatedDocument) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  Cell* wrap = new Cell(&hw, "wrap");
  class G : public Cell {
   public:
    G(Node* p, Wire* a, Wire* o) : Cell(p, "g") {
      port_in("a", a);
      port_out("o", o);
      new tech::Inv(this, a, o);
    }
  };
  auto* g = new G(wrap, a, o);
  std::string valid = netlist::write_json(*g);
  Rng rng(108);
  for (int i = 0; i < 300; ++i) {
    std::string bad = valid;
    std::size_t pos = rng.below(bad.size());
    bad[pos] = static_cast<char>(rng.next() & 0x7F);
    expect_throw_or_value([&] { (void)netlist::read_json(bad); });
  }
}

}  // namespace
}  // namespace jhdl
