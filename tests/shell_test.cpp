// Tests for the AppletShell command interface: full scripted sessions,
// license gating through the shell, and robust error handling for
// malformed input.
#include <gtest/gtest.h>

#include "core/generators.h"
#include "core/shell.h"
#include "util/strings.h"

namespace jhdl {
namespace {

using namespace jhdl::core;

Applet make(LicenseTier tier) {
  return AppletBuilder()
      .generator(std::make_shared<KcmGenerator>())
      .license(LicensePolicy::make("cli-user", tier))
      .build_applet();
}

TEST(ShellTest, Figure3ScriptedSession) {
  Applet applet = make(LicenseTier::Licensed);
  AppletShell shell(applet);
  std::string out = shell.run_script(
      "# the paper's example instance\n"
      "build input_width=8 product_width=12 constant=-56 signed_mode=true "
      "pipelined_mode=true\n"
      "area\n"
      "put multiplicand 100\n"
      "cycle 2\n"
      "get product\n");
  EXPECT_NE(out.find("built:"), std::string::npos);
  EXPECT_NE(out.find("LUTs"), std::string::npos);
  EXPECT_NE(out.find("cycled 2"), std::string::npos);
  // -56*100 = -5600; top 12 of 15 bits of the two's complement.
  std::uint64_t expected = (static_cast<std::uint64_t>(-5600) & 0x7FFF) >> 3;
  EXPECT_NE(out.find(format("unsigned %llu",
                            static_cast<unsigned long long>(expected))),
            std::string::npos)
      << out;
}

TEST(ShellTest, NetlistThroughShell) {
  Applet applet = make(LicenseTier::Licensed);
  AppletShell shell(applet);
  shell.execute("build constant=9 input_width=4");
  std::string edif = shell.execute("netlist edif");
  EXPECT_NE(edif.find("(edif"), std::string::npos);
  EXPECT_NE(shell.execute("netlist nonsense").find("error:"),
            std::string::npos);
}

TEST(ShellTest, LicenseGatingSurfacesAsErrors) {
  Applet applet = make(LicenseTier::Anonymous);
  AppletShell shell(applet);
  shell.execute("build constant=5");
  EXPECT_NE(shell.execute("area").find("LUTs"), std::string::npos);
  std::string denied = shell.execute("netlist edif");
  EXPECT_NE(denied.find("error:"), std::string::npos);
  EXPECT_NE(denied.find("netlister"), std::string::npos);
  EXPECT_NE(shell.execute("hierarchy").find("error:"), std::string::npos);
}

TEST(ShellTest, MalformedInputNeverThrows) {
  Applet applet = make(LicenseTier::Licensed);
  AppletShell shell(applet);
  for (const char* bad :
       {"", "   ", "bogus", "build ===", "build width", "build x=notanum",
        "put", "put onlyport", "put p notanum", "get", "cycle abc",
        "area" /* before build */, "netlist"}) {
    EXPECT_NO_THROW((void)shell.execute(bad)) << bad;
  }
  EXPECT_NE(shell.execute("bogus").find("unknown command"),
            std::string::npos);
  EXPECT_NE(shell.execute("area").find("error:"), std::string::npos);
}

TEST(ShellTest, WavesAndAudit) {
  Applet applet = make(LicenseTier::Licensed);
  AppletShell shell(applet);
  std::string out = shell.run_script(
      "build constant=3 input_width=4\n"
      "watch product\n"
      "put multiplicand 2\n"
      "cycle 3\n"
      "waves\n"
      "meter\n"
      "audit\n");
  EXPECT_NE(out.find("watching product"), std::string::npos);
  EXPECT_NE(out.find("product"), std::string::npos);
  EXPECT_NE(out.find("sim_cycles=3"), std::string::npos);
  EXPECT_NE(out.find("build granted"), std::string::npos);
}

TEST(ShellTest, HelpListsCommands) {
  std::string help = AppletShell::help();
  for (const char* cmd : {"build", "area", "netlist", "cycle", "watch"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}

}  // namespace
}  // namespace jhdl
