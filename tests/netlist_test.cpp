// Tests for the netlist module: scoped design construction, EDIF / VHDL /
// Verilog text generation, JSON round-trip, flattening, and hierarchy
// violation detection.
#include <gtest/gtest.h>

#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "modgen/modgen.h"
#include "netlist/netlist.h"
#include "tech/virtex.h"

namespace jhdl {
namespace {

using netlist::Design;
using netlist::JsonNetlist;
using netlist::NetlistOptions;

// The paper's full adder as a reusable cell.
class FullAdder : public Cell {
 public:
  FullAdder(Node* parent, Wire* a, Wire* b, Wire* ci, Wire* s, Wire* co)
      : Cell(parent, "fulladder") {
    set_type_name("fulladder");
    port_in("a", a);
    port_in("b", b);
    port_in("ci", ci);
    port_out("s", s);
    port_out("co", co);
    Wire* t1 = new Wire(this, 1, "t1");
    Wire* t2 = new Wire(this, 1, "t2");
    Wire* t3 = new Wire(this, 1, "t3");
    new tech::And2(this, a, b, t1);
    new tech::And2(this, a, ci, t2);
    new tech::And2(this, b, ci, t3);
    new tech::Or3(this, t1, t2, t3, co);
    new tech::Xor3(this, a, b, ci, s);
  }
};

struct FaFixture {
  HWSystem hw;
  FullAdder* fa;
  FaFixture() {
    Wire* a = new Wire(&hw, 1, "a");
    Wire* b = new Wire(&hw, 1, "b");
    Wire* ci = new Wire(&hw, 1, "ci");
    Wire* s = new Wire(&hw, 1, "s");
    Wire* co = new Wire(&hw, 1, "co");
    fa = new FullAdder(&hw, a, b, ci, s, co);
  }
};

TEST(DesignTest, FullAdderScoping) {
  FaFixture f;
  Design design(*f.fa, {});
  const auto& top = design.top_def();
  EXPECT_EQ(top.name, "fulladder");
  EXPECT_EQ(top.ports.size(), 5u);
  EXPECT_EQ(top.instances.size(), 5u);
  EXPECT_EQ(top.internal_nets.size(), 3u);  // t1 t2 t3
  auto stats = design.stats();
  EXPECT_EQ(stats.leaf_definitions, 3u);  // and2, or3, xor3
  EXPECT_EQ(stats.definitions, 4u);
}

TEST(DesignTest, LeafDefsShared) {
  FaFixture f;
  Design design(*f.fa, {});
  // Three and2 instances share one leaf definition.
  std::size_t and2_defs = 0;
  for (const auto& def : design.defs()) {
    if (def->name == "and2") ++and2_defs;
  }
  EXPECT_EQ(and2_defs, 1u);
}

TEST(DesignTest, HierarchyViolationDetected) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o1 = new Wire(&hw, 1, "o1");
  Cell* blockA = new Cell(&hw, "blockA");
  Cell* blockB = new Cell(&hw, "blockB");
  Wire* hidden = new Wire(blockA, 1, "hidden");
  new tech::Inv(blockA, a, hidden);
  // blockB reads `hidden` although neither block exposes it via a port.
  new tech::Buf(blockB, hidden, o1);
  // Building the hierarchical design must fail with a diagnostic.
  EXPECT_THROW(
      {
        HWSystem& root = hw;
        Design design(root, {});
      },
      HdlError);
}

TEST(DesignTest, FlattenProducesSingleDef) {
  FaFixture f;
  Design design(*f.fa, {.flatten = true, .top_name = ""});
  auto stats = design.stats();
  // Leaf defs + exactly one composite (the flat top).
  EXPECT_EQ(stats.definitions - stats.leaf_definitions, 1u);
  EXPECT_EQ(design.top_def().instances.size(), 5u);
}

TEST(DesignTest, TopNameOverride) {
  FaFixture f;
  Design design(*f.fa, {.flatten = false, .top_name = "my top!"});
  EXPECT_EQ(design.top_def().name, "my_top_");
}

TEST(EdifTest, StructureAndProperties) {
  FaFixture f;
  std::string edif = netlist::write_edif(*f.fa);
  EXPECT_NE(edif.find("(edif fulladder"), std::string::npos);
  EXPECT_NE(edif.find("(edifVersion 2 0 0)"), std::string::npos);
  EXPECT_NE(edif.find("(library virtex"), std::string::npos);
  EXPECT_NE(edif.find("(cell and2"), std::string::npos);
  EXPECT_NE(edif.find("(instance"), std::string::npos);
  EXPECT_NE(edif.find("(net"), std::string::npos);
  EXPECT_NE(edif.find("(design fulladder"), std::string::npos);
  // Balanced parentheses.
  int depth = 0;
  for (char c : edif) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(EdifTest, LutInitPropertyEmitted) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o = new Wire(&hw, 1, "o");
  Cell* wrap = new Cell(&hw, "wrap");
  // Build inside a composite cell with ports so hierarchy is legal.
  class LutWrap : public Cell {
   public:
    LutWrap(Node* p, Wire* a, Wire* b, Wire* o) : Cell(p, "lutwrap") {
      port_in("a", a);
      port_in("b", b);
      port_out("o", o);
      new tech::Lut2(this, a, b, o, 0x8);
    }
  };
  auto* lw = new LutWrap(wrap, a, b, o);
  std::string edif = netlist::write_edif(*lw);
  EXPECT_NE(edif.find("(property INIT (string \"0008\"))"), std::string::npos);
}

TEST(VhdlTest, EntitiesAndComponents) {
  FaFixture f;
  std::string vhdl = netlist::write_vhdl(*f.fa);
  EXPECT_NE(vhdl.find("entity fulladder is"), std::string::npos);
  EXPECT_NE(vhdl.find("architecture structural of fulladder"),
            std::string::npos);
  EXPECT_NE(vhdl.find("component and2"), std::string::npos);
  EXPECT_NE(vhdl.find("signal t1 : std_logic;"), std::string::npos);
  EXPECT_NE(vhdl.find("port map"), std::string::npos);
  // Leaf cells must not get entities (they come from the vendor library).
  EXPECT_EQ(vhdl.find("entity and2"), std::string::npos);
}

TEST(VhdlTest, ReservedWordsRenamed) {
  HWSystem hw;
  class BadNames : public Cell {
   public:
    BadNames(Node* p, Wire* in_w, Wire* out_w) : Cell(p, "signal") {
      set_type_name("signal");
      port_in("in", in_w);
      port_out("out", out_w);
      new tech::Inv(this, in_w, out_w);
    }
  };
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  auto* cell = new BadNames(&hw, a, o);
  std::string vhdl = netlist::write_vhdl(*cell);
  EXPECT_NE(vhdl.find("entity signal_v is"), std::string::npos);
  EXPECT_NE(vhdl.find("in_v : in std_logic"), std::string::npos);
  EXPECT_NE(vhdl.find("out_v : out std_logic"), std::string::npos);
}

TEST(VerilogTest, ModulesAndInstances) {
  FaFixture f;
  std::string v = netlist::write_verilog(*f.fa);
  EXPECT_NE(v.find("module fulladder ("), std::string::npos);
  EXPECT_NE(v.find("module and2 ("), std::string::npos);  // leaf stub
  EXPECT_NE(v.find("wire t1;"), std::string::npos);
  EXPECT_NE(v.find(".i0("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogTest, VectorPortsAndConcat) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 4, "a");
  Wire* b = new Wire(&hw, 4, "b");
  Wire* s = new Wire(&hw, 4, "s");
  auto* add = new modgen::CarryChainAdder(&hw, a, b, s);
  std::string v = netlist::write_verilog(*add);
  EXPECT_NE(v.find("input [3:0] a;"), std::string::npos);
  EXPECT_NE(v.find("output [3:0] s;"), std::string::npos);
  EXPECT_NE(v.find("a[0]"), std::string::npos);
}

TEST(JsonNetlistTest, RoundTrip) {
  FaFixture f;
  std::string text = netlist::write_json(*f.fa);
  JsonNetlist doc = netlist::read_json(text);
  EXPECT_EQ(doc.top, "fulladder");
  const netlist::JsonDef* top = doc.find_def("fulladder");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->ports.size(), 5u);
  EXPECT_EQ(top->instances.size(), 5u);
  EXPECT_EQ(top->nets.size(), 3u);
  const netlist::JsonDef* and2 = doc.find_def("and2");
  ASSERT_NE(and2, nullptr);
  EXPECT_TRUE(and2->leaf);
  // Every instance connection resolves to a port or an internal net.
  for (const auto& inst : top->instances) {
    for (const auto& conn : inst.conns) {
      for (const auto& bit : conn.bits) {
        bool is_port = false;
        for (const auto& p : top->ports) is_port |= (p.name == bit.base);
        bool is_net = false;
        for (const auto& n : top->nets) is_net |= (n == bit.base);
        EXPECT_TRUE(is_port || is_net) << bit.base;
      }
    }
  }
}

TEST(JsonNetlistTest, RejectsForeignDocuments) {
  EXPECT_THROW(netlist::read_json("{\"format\":\"other\"}"),
               std::runtime_error);
  EXPECT_THROW(netlist::read_json("not json at all"), std::runtime_error);
}

TEST(JsonNetlistTest, KcmCarriesRomInitProperties) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 12, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, true, false, -56);
  JsonNetlist doc = netlist::read_json(netlist::write_json(*kcm));
  // Find a ROM instance and check it carries INIT_* properties.
  bool found_rom_init = false;
  for (const auto& def : doc.definitions) {
    for (const auto& inst : def.instances) {
      if (inst.def.find("rom16") == 0) {
        found_rom_init |= inst.properties.count("INIT_0") > 0;
      }
    }
  }
  EXPECT_TRUE(found_rom_init);
}

TEST(NetlistScaleTest, KcmNetlistsAllFormats) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 16, "m");
  Wire* p = new Wire(&hw, 24, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, true, true, 12345);
  std::string edif = netlist::write_edif(*kcm);
  std::string vhdl = netlist::write_vhdl(*kcm);
  std::string verilog = netlist::write_verilog(*kcm);
  std::string json = netlist::write_json(*kcm);
  EXPECT_GT(edif.size(), 10000u);
  EXPECT_GT(vhdl.size(), 5000u);
  EXPECT_GT(verilog.size(), 5000u);
  EXPECT_GT(json.size(), 10000u);
  // Flattened EDIF has the same leaf instances, one level.
  std::string flat = netlist::write_edif(*kcm, {.flatten = true});
  EXPECT_GT(flat.size(), 10000u);
}

}  // namespace
}  // namespace jhdl
