// Tests for the observability subsystem (src/obs) and its integration
// with the delivery stack: histogram interpolation, registry concurrency
// (the TSan target behind the `obs` ctest label), Chrome trace_event
// export, end-to-end trace-id propagation client -> server spans, the
// MetricsDump / TraceDump admin queries, backwards compatibility with a
// hand-built v4 Hello, kernel profiling counters, and the resume_expired
// accounting split.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/generators.h"
#include "hdl/hwsystem.h"
#include "net/protocol.h"
#include "net/sim_client.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/delivery_service.h"
#include "sim/simulator.h"
#include "util/bytestream.h"
#include "util/json.h"

namespace jhdl {
namespace {

using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::obs;
using namespace jhdl::server;
using namespace std::chrono_literals;

IpCatalog make_catalog() {
  IpCatalog catalog;
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<KcmGenerator>());
  return catalog;
}

/// Spin until `pred` holds or ~2 s elapse. Returns the final value.
bool eventually(const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// ---------------------------------------------------------------------
// Metrics: instruments and interpolation
// ---------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("t.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("t.count"), &c);

  Gauge& g = reg.gauge("t.level");
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(MetricsTest, NameCollisionAcrossKindsThrows) {
  MetricsRegistry reg;
  reg.counter("t.name");
  EXPECT_THROW(reg.gauge("t.name"), std::runtime_error);
  EXPECT_THROW(reg.histogram("t.name"), std::runtime_error);
}

TEST(MetricsTest, HistogramPercentilesInterpolate) {
  Histogram h;
  // 100 samples spread uniformly over [64, 128): all land in one bucket,
  // so the old upper-bound readback would have answered 128 for every
  // percentile. Interpolation must separate p50 from p95.
  for (int i = 0; i < 100; ++i) h.record(64 + static_cast<unsigned>(i) % 64);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  EXPECT_LT(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 of a uniform fill should sit near the bucket midpoint, far from
  // the 128 upper bound.
  EXPECT_LT(p50, 112.0);
}

TEST(MetricsTest, HistogramSubMicrosecondSamplesStayBelowOne) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(0);
  // All-zero samples: interpolation inside bucket 0 must not report the
  // old floor of 1.0.
  EXPECT_LT(h.percentile(0.99), 1.0);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(MetricsTest, SummarizeMatchesPercentile) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const Histogram::Summary s = h.summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1001u / 2);
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(0.50));
  EXPECT_DOUBLE_EQ(s.p95, h.percentile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, h.percentile(0.99));
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

// The TSan workhorse: 8 threads hammer one histogram + counter + gauge
// through the registry. Run under `ctest -L obs` with TSan in CI; the
// assertions here check totals, the sanitizer checks the relaxed-atomic
// claims.
TEST(MetricsTest, EightThreadConcurrentRecording) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Mix registration (mutex path) with recording (lock-free path).
      Counter& c = reg.counter("hammer.count");
      Gauge& g = reg.gauge("hammer.level");
      Histogram& h = reg.histogram("hammer.us");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add();
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
        g.sub();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.counter("hammer.count").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.gauge("hammer.level").value(), 0);
  EXPECT_EQ(reg.histogram("hammer.us").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, JsonAndTextExposition) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.level").set(-4);
  reg.histogram("a.us").record(7);

  const Json doc = reg.to_json();
  EXPECT_EQ(doc.at("counters").at("a.count").as_int(), 3);
  EXPECT_EQ(doc.at("gauges").at("a.level").as_int(), -4);
  EXPECT_EQ(doc.at("histograms").at("a.us").at("count").as_int(), 1);
  // The dump must reparse: it goes over the wire as MetricsReply text.
  EXPECT_NO_THROW(Json::parse(doc.dump()));

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("a_count 3"), std::string::npos);
  EXPECT_NE(text.find("a_level -4"), std::string::npos);
  EXPECT_NE(text.find("a_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("a_us_sum 7"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Labeled families and process metrics (PR 9)
// ---------------------------------------------------------------------

TEST(MetricsFamilyTest, DoubleRegisterUnderDifferentTypeThrowsTypedError) {
  MetricsRegistry reg;
  reg.counter("req.count");
  // The pinned contract: a typed MetricsError naming both the owner and
  // the rejected kind, so misconfigured dashboards fail loudly and
  // legibly.
  try {
    reg.gauge_family("req.count", {"customer"});
    FAIL() << "expected MetricsError";
  } catch (const MetricsError& e) {
    EXPECT_STREQ(e.what(),
                 "metric 'req.count' already registered as counter; "
                 "cannot re-register as gauge family");
  }
  // And the reverse direction: a family name cannot be reclaimed flat.
  reg.counter_family("req.tenant", {"customer"});
  try {
    reg.histogram("req.tenant");
    FAIL() << "expected MetricsError";
  } catch (const MetricsError& e) {
    EXPECT_STREQ(e.what(),
                 "metric 'req.tenant' already registered as counter "
                 "family; cannot re-register as histogram");
  }
}

TEST(MetricsFamilyTest, SeriesPerLabelTupleWithStablePointers) {
  MetricsRegistry reg;
  CounterFamily& fam = reg.counter_family("req.count", {"customer"});
  Counter& acme = fam.with({"acme"});
  Counter& globex = fam.with({"globex"});
  EXPECT_NE(&acme, &globex);
  // Re-resolving a tuple returns the same instrument (callers cache it).
  EXPECT_EQ(&fam.with({"acme"}), &acme);
  acme.inc(3);
  globex.inc(5);
  EXPECT_EQ(fam.series_count(), 2u);
  // Re-requesting the family with the same keys is idempotent; different
  // keys are a registration error.
  EXPECT_EQ(&reg.counter_family("req.count", {"customer"}), &fam);
  EXPECT_THROW(reg.counter_family("req.count", {"customer", "module"}),
               MetricsError);
  // Arity mismatch on with() is a usage error, not a silent series.
  EXPECT_THROW(fam.with({"acme", "extra"}), MetricsError);
}

TEST(MetricsFamilyTest, CardinalityCapCollapsesToOverflowSeries) {
  MetricsRegistry reg;
  CounterFamily& fam = reg.counter_family("req.count", {"customer"}, 4);
  for (int i = 0; i < 4; ++i) {
    fam.with({"tenant" + std::to_string(i)}).inc();
  }
  EXPECT_EQ(fam.overflowed(), 0u);
  // Past the cap, unseen tuples share one overflow series: a hostile
  // label sweep costs O(1) memory, not one instrument per value.
  Counter& spill_a = fam.with({"hostile-a"});
  Counter& spill_b = fam.with({"hostile-b"});
  EXPECT_EQ(&spill_a, &spill_b);
  spill_a.inc(7);
  EXPECT_EQ(fam.with({std::string(CounterFamily::kOverflowLabel)}).value(),
            7u);
  EXPECT_EQ(fam.series_count(), 5u);  // 4 real + 1 overflow
  EXPECT_GE(fam.overflowed(), 2u);
  // Known tuples keep resolving to their own series after the collapse.
  EXPECT_EQ(fam.with({"tenant0"}).value(), 1u);
}

TEST(MetricsFamilyTest, JsonAndTextExpositionCarryLabels) {
  MetricsRegistry reg;
  reg.counter("flat.count").inc(1);
  reg.counter_family("req.count", {"customer"}).with({"acme"}).inc(3);
  reg.histogram_family("req.latency_us", {"customer"})
      .with({"acme"})
      .record(100);

  const Json doc = reg.to_json();
  // Flat sections are untouched; families ride their own key.
  EXPECT_EQ(doc.at("counters").at("flat.count").as_int(), 1);
  const Json& fam = doc.at("families").at("req.count");
  EXPECT_EQ(fam.at("kind").as_string(), "counter");
  EXPECT_EQ(fam.at("labels").at(0).as_string(), "customer");
  EXPECT_EQ(fam.at("series").at(0).at("labels").at("customer").as_string(),
            "acme");
  EXPECT_EQ(fam.at("series").at(0).at("value").as_int(), 3);
  EXPECT_EQ(doc.at("families")
                .at("req.latency_us")
                .at("series")
                .at(0)
                .at("count")
                .as_int(),
            1);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("req_count{customer=\"acme\"} 3"), std::string::npos);
  // Family histograms emit labeled le-buckets (the scrape-side shape the
  // acceptance criterion pins).
  EXPECT_NE(text.find("req_latency_us_bucket{customer=\"acme\",le=\"128\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_us_count{customer=\"acme\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_us_sum{customer=\"acme\"} 100"),
            std::string::npos);
}

TEST(MetricsFamilyTest, RegistryWithoutFamiliesKeepsWireFormat) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(2);
  // No families registered: the MetricsDump document must not grow a
  // "families" key (byte compatibility with pre-family consumers).
  EXPECT_FALSE(reg.to_json().has("families"));
}

TEST(MetricsFamilyTest, ProcessMetricsExposeUptimeAndBuildInfo) {
  MetricsRegistry reg;
  reg.enable_process_metrics("1.2.3", 6);
  reg.enable_process_metrics("9.9.9", 7);  // idempotent: first call wins

  const Json doc = reg.to_json();
  EXPECT_GE(doc.at("gauges").at("process.uptime_seconds").as_int(), 0);
  const Json& info = doc.at("families").at("build.info");
  EXPECT_EQ(info.at("series").at(0).at("labels").at("version").as_string(),
            "1.2.3");
  EXPECT_EQ(info.at("series").at(0).at("labels").at("protocol").as_string(),
            "6");

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("process_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("build_info{version=\"1.2.3\",protocol=\"6\"} 1"),
            std::string::npos);
}

TEST(MetricsFamilyTest, ConcurrentWithAndExposition) {
  MetricsRegistry reg;
  CounterFamily& fam = reg.counter_family("hammer.tenant", {"customer"});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fam, &reg, t] {
      // Half the threads mutate through a cached pointer, half keep
      // re-resolving; one in eight iterations snapshots the registry.
      Counter& mine = fam.with({"tenant" + std::to_string(t % 4)});
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          mine.inc();
        } else {
          fam.with({"tenant" + std::to_string(t % 4)}).inc();
        }
        if (t == 0 && i % 1000 == 0) {
          (void)reg.to_text();
          (void)reg.to_json();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  std::uint64_t total = 0;
  for (const auto& [labels, counter] : fam.snapshot()) {
    total += counter->value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------
// Tracing: rings, spans, Chrome export
// ---------------------------------------------------------------------

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    ScopedSpan span(tracer, "test.span");
  }
  tracer.record("test.raw", 1, 0, 5);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(TraceTest, SpansCarryTraceIdAndDuration) {
  Tracer tracer;
  tracer.set_enabled(true);
  const TraceContext ctx = TraceContext::mint();
  ASSERT_NE(ctx.id, 0u);
  {
    ScopedSpan span(tracer, "test.outer");
    span.set_trace(ctx.id);
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(tracer.recorded(), 1u);
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].trace_id, ctx.id);
  EXPECT_GE(events[0].dur_us, 500u);
}

TEST(TraceTest, RingOverwritesOldestSpans) {
  Tracer tracer(/*ring_capacity=*/16);  // 16 is the internal minimum
  tracer.set_enabled(true);
  for (int i = 0; i < 100; ++i) tracer.record("test.span", 0, i, 1);
  EXPECT_EQ(tracer.recorded(), 100u);
  const std::vector<TraceEvent> events = tracer.snapshot();
  EXPECT_LE(events.size(), 16u);
  EXPECT_FALSE(events.empty());
  // The retained spans are the most recent ones.
  for (const TraceEvent& e : events) EXPECT_GE(e.start_us, 84u);
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint64_t id = TraceContext::mint().id;
  tracer.record("test.a", id, 10, 5);
  tracer.record("test.b", 0, 20, 1);

  const Json doc = tracer.to_chrome_json();
  // Round-trip through text: this is exactly what chrome://tracing loads.
  const Json back = Json::parse(doc.dump());
  ASSERT_TRUE(back.at("traceEvents").is_array());
  ASSERT_EQ(back.at("traceEvents").size(), 2u);
  for (const Json& ev : back.at("traceEvents").items()) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    EXPECT_GE(ev.at("dur").as_int(), 0);
  }
  const Json& first = back.at("traceEvents").at(std::size_t{0});
  EXPECT_EQ(first.at("args").at("trace").as_string(), TraceContext::hex(id));
  EXPECT_EQ(TraceContext::hex(id).size(), 16u);
}

TEST(TraceTest, ConcurrentWritersKeepRingsIntact) {
  Tracer tracer(/*ring_capacity=*/64);
  tracer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record("test.hammer", 1, static_cast<std::uint64_t>(i), 1);
      }
    });
  }
  // Snapshot while writers are live: must stay well-formed (fields may
  // mix across one overwritten slot, but never crash or tear the ring).
  for (int i = 0; i < 50; ++i) {
    const Json doc = tracer.to_chrome_json();
    EXPECT_TRUE(doc.at("traceEvents").is_array());
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------
// Protocol v5: trailing trace varint
// ---------------------------------------------------------------------

TEST(ProtocolV5Test, TraceRoundTripsAfterSeq) {
  Message msg;
  msg.type = MsgType::Cycle;
  msg.count = 3;
  msg.seq = 0;  // untraced requests may still be unnumbered
  msg.trace = 0xdeadbeefcafe1234u;
  const Message back = decode(encode(msg));
  EXPECT_EQ(back.seq, 0u);
  EXPECT_EQ(back.trace, 0xdeadbeefcafe1234u);

  msg.seq = 41;
  const Message both = decode(encode(msg));
  EXPECT_EQ(both.seq, 41u);
  EXPECT_EQ(both.trace, 0xdeadbeefcafe1234u);
}

TEST(ProtocolV5Test, OmittedTraceDecodesAsZero) {
  Message msg;
  msg.type = MsgType::Cycle;
  msg.count = 1;
  msg.seq = 7;
  const Message back = decode(encode(msg));
  EXPECT_EQ(back.seq, 7u);
  EXPECT_EQ(back.trace, 0u);
}

TEST(ProtocolV5Test, AdminDumpQueriesRoundTrip) {
  for (MsgType t : {MsgType::MetricsDump, MsgType::TraceDump}) {
    Message q;
    q.type = t;
    EXPECT_EQ(decode(encode(q)).type, t);
  }
  Message reply;
  reply.type = MsgType::MetricsReply;
  reply.text = "{\"counters\": {}}";
  EXPECT_EQ(decode(encode(reply)).text, reply.text);
  reply.type = MsgType::TraceReply;
  reply.text = "{\"traceEvents\": []}";
  Message back = decode(encode(reply));
  EXPECT_EQ(back.type, MsgType::TraceReply);
  EXPECT_EQ(back.text, reply.text);
}

// ---------------------------------------------------------------------
// End-to-end: trace propagation, admin queries, v4 compatibility
// ---------------------------------------------------------------------

TEST(ObsEndToEndTest, ClientTraceIdReachesServerSpans) {
  DeliveryConfig config;
  config.tracing = true;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  spec.trace_id = 0x1122334455667788u;
  SimClient client(port, spec);
  EXPECT_EQ(client.trace_id(), 0x1122334455667788u);
  client.set_input("a", BitVector::from_uint(8, 5));
  client.set_input("b", BitVector::from_uint(8, 9));
  client.cycle();
  EXPECT_EQ(client.get_output("s").to_uint(), 14u);
  client.bye();

  const Json trace = query_trace(port);
  ASSERT_TRUE(trace.at("traceEvents").is_array());
  const std::string want = TraceContext::hex(spec.trace_id);
  bool handshake_traced = false;
  bool request_traced = false;
  for (const Json& ev : trace.at("traceEvents").items()) {
    if (!ev.has("args")) continue;
    if (ev.at("args").at("trace").as_string() != want) continue;
    const std::string& name = ev.at("name").as_string();
    if (name == "session.handshake") handshake_traced = true;
    if (name.rfind("req.", 0) == 0) request_traced = true;
  }
  EXPECT_TRUE(handshake_traced)
      << "client trace id missing from handshake spans:\n"
      << trace.dump(2);
  EXPECT_TRUE(request_traced);
  service.stop();
}

TEST(ObsEndToEndTest, ServerMintsTraceIdWhenClientSendsNone) {
  DeliveryConfig config;
  config.tracing = true;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  // Hand-built v4 Hello: no trailing trace varint at all, exactly what a
  // pre-v5 client puts on the wire. The server must serve it and mint its
  // own trace id for the session's spans.
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Hello));
  w.u32(kHelloMagic);
  w.u16(4);  // protocol v4
  w.str("acme");
  w.str("carry-adder");
  w.varint(1);
  w.str("width");
  w.svarint(8);

  TcpStream stream = TcpStream::connect(port);
  stream.send_frame(w.take());
  const Message iface = decode(stream.recv_frame());
  ASSERT_EQ(iface.type, MsgType::Iface) << iface.text;
  // The reply to a v4 client must not carry the v5 trace varint.
  EXPECT_EQ(iface.trace, 0u);
  const Json desc = Json::parse(iface.text);
  EXPECT_FALSE(desc.has("trace"));

  ByteWriter cyc;
  cyc.u8(static_cast<std::uint8_t>(MsgType::Cycle));
  cyc.varint(2);
  stream.send_frame(cyc.take());
  const Message ok = decode(stream.recv_frame());
  EXPECT_EQ(ok.type, MsgType::Ok);
  EXPECT_EQ(ok.count, 2u);

  ByteWriter bye;
  bye.u8(static_cast<std::uint8_t>(MsgType::Bye));
  stream.send_frame(bye.take());
  stream.close();

  ASSERT_TRUE(eventually([&] {
    return service.stats().snapshot().sessions_closed >= 1;
  }));
  // The session's spans exist under a server-minted (nonzero) trace id.
  bool handshake_traced = false;
  for (const TraceEvent& e : service.tracer().snapshot()) {
    if (std::string(e.name) == "session.handshake" && e.trace_id != 0) {
      handshake_traced = true;
    }
  }
  EXPECT_TRUE(handshake_traced);
  service.stop();
}

TEST(ObsEndToEndTest, V5IfaceAdvertisesTraceId) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  SimClient client(port, spec);
  // Client minted an id (none supplied) and the server echoed it.
  EXPECT_NE(client.trace_id(), 0u);
  EXPECT_EQ(client.iface().at("trace").as_string(),
            TraceContext::hex(client.trace_id()));
  client.bye();
  service.stop();
}

TEST(ObsEndToEndTest, MetricsDumpServesRegistry) {
  DeliveryService service(make_catalog());
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 8;
  {
    SimClient client(port, spec);
    client.set_input("a", BitVector::from_uint(8, 1));
    client.set_input("b", BitVector::from_uint(8, 2));
    client.cycle();
    EXPECT_EQ(client.get_output("s").to_uint(), 3u);
    client.bye();
  }
  ASSERT_TRUE(eventually([&] {
    return service.stats().snapshot().sessions_closed >= 1;
  }));

  const Json dump = query_metrics(port);
  EXPECT_GE(dump.at("counters").at("server.sessions_opened").as_int(), 1);
  EXPECT_GE(dump.at("counters").at("server.requests").as_int(), 3);
  EXPECT_GE(dump.at("histograms").at("server.request_us").at("count").as_int(),
            3);
  // The closing session folded its simulator totals into sim.*.
  EXPECT_GE(dump.at("counters").at("sim.cycles").as_int(), 1);
  // Stats stays wire-compatible: every pre-existing key still present.
  const Json stats = query_stats(port);
  for (const char* key :
       {"sessions_opened", "sessions_active", "sessions_evicted",
        "sessions_closed", "queued", "requests", "rejections", "denials",
        "resumes", "retries", "malformed_frames", "programs_compiled",
        "program_shares", "p50_request_us", "p95_request_us"}) {
    EXPECT_TRUE(stats.has(key)) << "missing stats key: " << key;
  }
  EXPECT_TRUE(stats.has("resume_expired"));
  EXPECT_TRUE(stats.has("p99_request_us"));
  service.stop();
}

TEST(ObsEndToEndTest, ExpiredParkedSessionCountsAsResumeExpired) {
  DeliveryConfig config;
  config.resume_window = 50ms;
  DeliveryService service(make_catalog(), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  // Open a session, then kill the transport without a Bye: the session
  // parks, and once the window lapses the reaper closes it under the
  // distinct resume_expired counter.
  TcpStream raw = TcpStream::connect(port);
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = "acme";
  hello.name = "carry-adder";
  hello.params["width"] = 8;
  raw.send_frame(encode(hello));
  ASSERT_EQ(decode(raw.recv_frame()).type, MsgType::Iface);
  raw.shutdown();
  raw.close();

  ASSERT_TRUE(eventually([&] {
    return service.stats().snapshot().resume_expired == 1;
  })) << service.stats().to_json().dump(2);
  const ServerStats::Snapshot s = service.stats().snapshot();
  EXPECT_EQ(s.sessions_evicted, 0u);
  EXPECT_EQ(s.sessions_closed, 0u);
  service.stop();
}

// ---------------------------------------------------------------------
// Kernel profiling
// ---------------------------------------------------------------------

TEST(KernelProfileTest, ProfiledSimulationPopulatesCounters) {
  KcmGenerator gen;
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{16})
                        .set("constant", std::int64_t{1234})
                        .set("signed_mode", true)
                        .resolved(gen.params());
  BuildResult build = gen.build(params);
  SimOptions opts;
  opts.mode = SimMode::Compiled;
  Simulator sim(*build.system, opts);
  sim.enable_profiling();
  ASSERT_NE(sim.profile(), nullptr);

  Wire* x = build.inputs.at("multiplicand");
  for (int i = 0; i < 50; ++i) {
    sim.put(x, static_cast<std::uint64_t>(i * 37) & 0xffffu);
    sim.cycle();
  }

  const KernelProfile& p = *sim.profile();
  EXPECT_GT(p.settles_event + p.settles_sweep, 0u);
  // Attribution totals add up: every kernel eval is either scanned
  // one-by-one or swept through an opcode run.
  std::uint64_t run_evals = 0;
  for (const KernelProfile::RunStat& rs : p.runs) run_evals += rs.evals;
  EXPECT_EQ(run_evals + p.scan_evals, sim.kernel_eval_count());
  EXPECT_GT(sim.kernel_eval_count(), 0u);

  MetricsRegistry reg;
  sim.export_metrics(reg);
  EXPECT_EQ(reg.gauge("sim.cycles").value(), 50);
  EXPECT_EQ(reg.gauge("sim.kernel.evals").value(),
            static_cast<std::int64_t>(sim.kernel_eval_count()));
  EXPECT_EQ(reg.gauge("sim.interp.evals").value(),
            static_cast<std::int64_t>(sim.interp_eval_count()));
  EXPECT_EQ(reg.gauge("sim.kernel.settles_event").value() +
                reg.gauge("sim.kernel.settles_sweep").value(),
            static_cast<std::int64_t>(p.settles_event + p.settles_sweep));
}

TEST(KernelProfileTest, InterpretedModeExportsAttributionOnly) {
  AdderGenerator gen;
  ParamMap params =
      ParamMap().set("width", std::int64_t{8}).resolved(gen.params());
  BuildResult build = gen.build(params);
  SimOptions opts;
  opts.mode = SimMode::Interpreted;
  Simulator sim(*build.system, opts);
  sim.enable_profiling();  // harmless without a kernel

  sim.put(build.inputs.at("a"), 3);
  sim.put(build.inputs.at("b"), 4);
  sim.cycle(5);

  EXPECT_EQ(sim.kernel_eval_count(), 0u);
  EXPECT_GT(sim.interp_eval_count(), 0u);
  MetricsRegistry reg;
  sim.export_metrics(reg);
  EXPECT_EQ(reg.gauge("sim.kernel.evals").value(), 0);
  EXPECT_GT(reg.gauge("sim.interp.evals").value(), 0);
  EXPECT_EQ(reg.gauge("sim.cycles").value(), 5);
}

}  // namespace
}  // namespace jhdl
