// Unit tests for the HDL kernel: cells, wires, nets, ports, hierarchy,
// placement, and structural error checking.
#include <gtest/gtest.h>

#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "hdl/visitor.h"
#include "tech/virtex.h"

namespace jhdl {
namespace {

TEST(WireTest, ConstructionAndNaming) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* bus = new Wire(&hw, 8, "data");
  EXPECT_EQ(a->width(), 1u);
  EXPECT_EQ(bus->width(), 8u);
  EXPECT_EQ(a->net(0)->name(), "a");
  EXPECT_EQ(bus->net(3)->name(), "data[3]");
  EXPECT_EQ(hw.net_count(), 9u);
}

TEST(WireTest, AutoNamedWires) {
  HWSystem hw;
  Wire* w = new Wire(&hw, 2);
  EXPECT_FALSE(w->name().empty());
}

TEST(WireTest, ZeroWidthRejected) {
  HWSystem hw;
  EXPECT_THROW(new Wire(&hw, 0), HdlError);
}

TEST(WireTest, BitSelectSharesNets) {
  HWSystem hw;
  Wire* bus = new Wire(&hw, 8, "bus");
  Wire* b3 = bus->gw(3);
  EXPECT_EQ(b3->width(), 1u);
  EXPECT_EQ(b3->net(0), bus->net(3));
}

TEST(WireTest, RangeAndConcat) {
  HWSystem hw;
  Wire* bus = new Wire(&hw, 8, "bus");
  Wire* lo = bus->range(3, 0);
  Wire* hi = bus->range(7, 4);
  EXPECT_EQ(lo->width(), 4u);
  EXPECT_EQ(hi->width(), 4u);
  Wire* cat = hi->concat(lo);
  EXPECT_EQ(cat->width(), 8u);
  // concat: low wire supplies LSBs.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cat->net(i), bus->net(i));
  }
  EXPECT_THROW(bus->range(8, 0), HdlError);
  EXPECT_THROW(bus->range(2, 3), HdlError);
}

TEST(CellTest, HierarchyAndNames) {
  HWSystem hw("top");
  Cell* a = new Cell(&hw, "block");
  Cell* b = new Cell(a, "inner");
  EXPECT_EQ(b->full_name(), "top/block/inner");
  EXPECT_EQ(b->system(), &hw);
  EXPECT_EQ(a->parent(), &hw);
}

TEST(CellTest, SiblingNameCollisionGetsSuffix) {
  HWSystem hw;
  Cell* a = new Cell(&hw, "x");
  Cell* b = new Cell(&hw, "x");
  Cell* c = new Cell(&hw, "x");
  EXPECT_EQ(a->name(), "x");
  EXPECT_EQ(b->name(), "x_1");
  EXPECT_EQ(c->name(), "x_2");
}

TEST(CellTest, NullParentRejected) {
  EXPECT_THROW(new Cell(nullptr, "orphan"), HdlError);
}

TEST(CellTest, Properties) {
  HWSystem hw;
  Cell* c = new Cell(&hw, "c");
  EXPECT_EQ(c->property("k"), nullptr);
  c->set_property("k", "v");
  ASSERT_NE(c->property("k"), nullptr);
  EXPECT_EQ(*c->property("k"), "v");
}

TEST(CellTest, RlocAccumulates) {
  HWSystem hw;
  Cell* macro = new Cell(&hw, "macro");
  macro->set_rloc({2, 3});
  Cell* sub = new Cell(macro, "sub");
  sub->set_rloc({1, 1});
  Cell* leaf = new Cell(sub, "leaf");
  RLoc abs = leaf->absolute_loc();
  EXPECT_EQ(abs.row, 3);
  EXPECT_EQ(abs.col, 4);
}

TEST(NetTest, DoubleDriverRejected) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::And2(&hw, a, b, o);
  EXPECT_THROW(new tech::Or2(&hw, a, b, o), HdlError);
}

TEST(NetTest, SinksRecorded) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o1 = new Wire(&hw, 1, "o1");
  Wire* o2 = new Wire(&hw, 1, "o2");
  new tech::And2(&hw, a, b, o1);
  new tech::Or2(&hw, a, b, o2);
  EXPECT_EQ(a->net(0)->sinks().size(), 2u);
  EXPECT_EQ(o1->net(0)->driver_kind(), DriverKind::Primitive);
}

TEST(PortTest, PrimitivePinsAndPorts) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o = new Wire(&hw, 1, "o");
  auto* g = new tech::And2(&hw, a, b, o);
  EXPECT_EQ(g->pins().size(), 3u);
  EXPECT_EQ(g->ports().size(), 3u);
  EXPECT_EQ(g->type_name(), "and2");
  const Port* p = g->find_port("i0");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->dir, PortDir::In);
  EXPECT_EQ(p->wire, a);
}

// The paper's full-adder example, translated line-for-line.
class FullAdder : public Cell {
 public:
  FullAdder(Node* parent, Wire* a, Wire* b, Wire* ci, Wire* s, Wire* co)
      : Cell(parent, "fulladder") {
    set_type_name("fulladder");
    port_in("a", a);
    port_in("b", b);
    port_in("ci", ci);
    port_out("s", s);
    port_out("co", co);
    Wire* t1 = new Wire(this, 1);
    Wire* t2 = new Wire(this, 1);
    Wire* t3 = new Wire(this, 1);
    new tech::And2(this, a, b, t1);
    new tech::And2(this, a, ci, t2);
    new tech::And2(this, b, ci, t3);
    new tech::Or3(this, t1, t2, t3, co);
    new tech::Xor3(this, a, b, ci, s);
  }
};

TEST(HierarchyTest, FullAdderStructure) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* ci = new Wire(&hw, 1, "ci");
  Wire* s = new Wire(&hw, 1, "s");
  Wire* co = new Wire(&hw, 1, "co");
  auto* fa = new FullAdder(&hw, a, b, ci, s, co);

  auto prims = collect_primitives(*fa);
  EXPECT_EQ(prims.size(), 5u);

  HierarchyStats stats = hierarchy_stats(hw);
  EXPECT_EQ(stats.cells, 7u);  // system + fulladder + 5 gates
  EXPECT_EQ(stats.primitives, 5u);
  EXPECT_EQ(stats.max_depth, 2u);
}

TEST(HierarchyTest, VisitorPreorder) {
  HWSystem hw;
  Cell* a = new Cell(&hw, "a");
  new Cell(a, "a1");
  new Cell(&hw, "b");
  std::vector<std::string> order;
  for_each_cell(hw, [&](Cell& c) { order.push_back(c.name()); });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "system");
  EXPECT_EQ(order[1], "a");
  EXPECT_EQ(order[2], "a1");
  EXPECT_EQ(order[3], "b");
}

TEST(HierarchyTest, ExceptionDuringConstructionUnregisters) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* wide = new Wire(&hw, 2, "wide");
  // Gate with a 2-bit pin throws after the base Cell registered.
  EXPECT_THROW(new tech::And2(&hw, a, wide, a), HdlError);
  // The half-constructed child must not remain in the tree.
  for (Cell* c : hw.children()) {
    EXPECT_EQ(c->children().size(), 0u);
  }
  HierarchyStats stats = hierarchy_stats(hw);
  EXPECT_EQ(stats.cells, 1u);
}

TEST(TechTest, LutInitValidation) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  // LUT1 truth table has 2 bits; INIT 0x4 overflows it.
  EXPECT_THROW(new tech::Lut1(&hw, a, o, 0x4), HdlError);
  Wire* o2 = new Wire(&hw, 1, "o2");
  auto* l = new tech::Lut1(&hw, a, o2, 0x2);
  ASSERT_NE(l->property("INIT"), nullptr);
  EXPECT_EQ(*l->property("INIT"), "0002");
}

TEST(TechTest, LibraryCatalogRoundTrip) {
  const auto& lib = tech::virtex_library();
  EXPECT_GE(lib.size(), 25u);
  auto payload = tech::serialize_virtex_library();
  EXPECT_GT(payload.size(), 500u);
  auto parsed = tech::parse_virtex_library(payload);
  ASSERT_EQ(parsed.size(), lib.size());
  for (std::size_t i = 0; i < lib.size(); ++i) {
    EXPECT_EQ(parsed[i].name, lib[i].name);
    EXPECT_EQ(parsed[i].inputs, lib[i].inputs);
    EXPECT_EQ(parsed[i].sequential, lib[i].sequential);
  }
}

TEST(TechTest, ResourcesModel) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* o = new Wire(&hw, 1, "o");
  auto* g = new tech::And2(&hw, a, b, o);
  EXPECT_EQ(g->resources().luts, 1);
  Wire* q = new Wire(&hw, 1, "q");
  auto* ff = new tech::FD(&hw, o, q);
  EXPECT_EQ(ff->resources().ffs, 1);
  EXPECT_TRUE(ff->sequential());
}

}  // namespace
}  // namespace jhdl
