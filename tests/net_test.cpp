// Tests for the co-simulation network stack: protocol encode/decode,
// framed sockets, the black-box SimServer/SimClient pair (Figure 4), and
// the Web-CAD / JavaCAD baseline runners.
#include <gtest/gtest.h>

#include <thread>

#include "baselines/remote_eval.h"
#include "core/applet.h"
#include "core/generators.h"
#include "net/protocol.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using namespace jhdl::core;
using namespace jhdl::net;

std::unique_ptr<BlackBoxModel> make_kcm_blackbox(int constant = -56) {
  KcmGenerator gen;
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{8})
                        .set("constant", std::int64_t{constant})
                        .set("signed_mode", true)
                        .resolved(gen.params());
  return std::make_unique<BlackBoxModel>(gen.build(params), gen.name());
}

TEST(ProtocolTest, EncodeDecodeAllTypes) {
  Message set;
  set.type = MsgType::SetInput;
  set.name = "multiplicand";
  set.value = BitVector::from_uint(8, 0x5A);
  Message back = decode(encode(set));
  EXPECT_EQ(back.type, MsgType::SetInput);
  EXPECT_EQ(back.name, "multiplicand");
  EXPECT_EQ(back.value.to_uint(), 0x5Au);

  Message cyc;
  cyc.type = MsgType::Cycle;
  cyc.count = 12345;
  EXPECT_EQ(decode(encode(cyc)).count, 12345u);

  Message eval;
  eval.type = MsgType::Eval;
  eval.values["a"] = BitVector::from_uint(4, 7);
  eval.values["b"] = BitVector::from_string("10x1");
  eval.count = 2;
  Message eback = decode(encode(eval));
  EXPECT_EQ(eback.values.size(), 2u);
  EXPECT_EQ(eback.values["a"].to_uint(), 7u);
  EXPECT_EQ(eback.values["b"].to_string(), "10x1");  // X survives the wire
  EXPECT_EQ(eback.count, 2u);

  Message err;
  err.type = MsgType::Error;
  err.text = "boom";
  EXPECT_EQ(decode(encode(err)).text, "boom");
}

TEST(ProtocolTest, MalformedPayloadThrows) {
  std::vector<std::uint8_t> junk = {99};
  EXPECT_THROW(decode(junk), std::runtime_error);
}

TEST(SocketTest, FrameRoundTrip) {
  TcpListener listener;
  std::vector<std::uint8_t> got;
  std::thread server([&] {
    TcpStream s = listener.accept();
    got = s.recv_frame();
    s.send_frame({9, 8, 7});
  });
  TcpStream c = TcpStream::connect(listener.port());
  c.send_frame({1, 2, 3, 4});
  auto reply = c.recv_frame();
  server.join();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(reply, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(SocketTest, ConnectFailureThrows) {
  // A port with nothing listening (we just closed it).
  std::uint16_t dead_port;
  {
    TcpListener listener;
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect(dead_port), NetError);
}

TEST(SimServerTest, HandshakeAndOperations) {
  SimServer server(make_kcm_blackbox());
  std::uint16_t port = server.start();
  SimClient client(port);
  EXPECT_EQ(client.ip_name(), "kcm-multiplier");
  EXPECT_EQ(client.latency(), 0u);

  client.set_input("multiplicand", BitVector::from_int(8, -100));
  EXPECT_EQ(client.get_output("product").to_uint(),
            static_cast<std::uint64_t>(-56 * -100) & 0x7FFF);
  client.cycle(3);
  client.reset();
  EXPECT_GE(client.round_trips(), 5u);
  client.bye();
  server.stop();
  EXPECT_GE(server.requests_served(), 5u);
}

TEST(SimServerTest, RemoteErrorsPropagate) {
  SimServer server(make_kcm_blackbox());
  SimClient client(server.start());
  EXPECT_THROW(client.get_output("nonexistent"), std::runtime_error);
  // The session survives an error reply.
  client.set_input("multiplicand", BitVector::from_uint(8, 3));
  EXPECT_EQ(client.get_output("product").to_uint(),
            static_cast<std::uint64_t>(-56 * 3) & 0x7FFF);
  client.bye();
}

TEST(SimServerTest, EvalTransaction) {
  SimServer server(make_kcm_blackbox());
  SimClient client(server.start());
  std::map<std::string, BitVector> inputs;
  inputs["multiplicand"] = BitVector::from_int(8, 25);
  auto outputs = client.eval(inputs, 0);
  ASSERT_EQ(outputs.count("product"), 1u);
  EXPECT_EQ(outputs["product"].to_uint(),
            static_cast<std::uint64_t>(-56 * 25) & 0x7FFF);
  EXPECT_EQ(client.round_trips(), 2u);  // hello + eval
  client.bye();
}

// Figure 4: a system simulator integrates two black-box IP applets over
// sockets and cross-checks against a monolithic local simulation.
TEST(Figure4Test, TwoBlackBoxesMatchLocal) {
  SimServer server1(make_kcm_blackbox(-56));
  SimServer server2(make_kcm_blackbox(91));
  SimClient ip1(server1.start());
  SimClient ip2(server2.start());

  Rng rng(2024);
  for (int t = 0; t < 50; ++t) {
    std::int64_t x = rng.range(-128, 127);
    // System simulator drives both IPs with the same stimulus and sums
    // their responses (a toy system model).
    std::map<std::string, BitVector> in;
    in["multiplicand"] = BitVector::from_int(8, x);
    auto o1 = ip1.eval(in, 0);
    auto o2 = ip2.eval(in, 0);
    std::int64_t sum = o1["product"].to_int() + o2["product"].to_int();
    std::int64_t want = -56 * x + 91 * x;
    EXPECT_EQ(sum, want) << "x=" << x;
  }
  ip1.bye();
  ip2.bye();
}

TEST(BaselineTest, AllStylesAgreeOnOutputs) {
  // The same workload must produce identical outputs through every
  // delivery style.
  std::vector<baselines::Vector> workload;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    baselines::Vector v;
    v.inputs["multiplicand"] = BitVector::from_int(8, rng.range(-128, 127));
    v.cycles = 0;
    workload.push_back(std::move(v));
  }

  auto local_model = make_kcm_blackbox();
  auto local = baselines::run_applet_local(*local_model, workload);

  SimServer server(make_kcm_blackbox());
  std::uint16_t port = server.start();
  SimClient webcad_client(port);
  auto webcad = baselines::run_webcad(webcad_client, workload);
  webcad_client.bye();

  // A fresh session for the JavaCAD-style run (independent model state).
  SimServer server2(make_kcm_blackbox());
  SimClient javacad_client(server2.start());
  auto javacad = baselines::run_javacad(javacad_client, workload);
  javacad_client.bye();

  ASSERT_EQ(local.outputs.size(), workload.size());
  ASSERT_EQ(webcad.outputs.size(), workload.size());
  ASSERT_EQ(javacad.outputs.size(), workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(local.outputs[i].at("product").to_uint(),
              webcad.outputs[i].at("product").to_uint());
    EXPECT_EQ(local.outputs[i].at("product").to_uint(),
              javacad.outputs[i].at("product").to_uint());
  }

  // Round-trip accounting: local uses none; JavaCAD one per vector;
  // Web-CAD one per event (set + outputs; cycles=0 skips the clock call).
  EXPECT_EQ(local.round_trips, 0u);
  EXPECT_EQ(javacad.round_trips, workload.size());
  EXPECT_EQ(webcad.round_trips, workload.size() * 2);
}

TEST(BaselineTest, InjectedLatencyDominatesRemoteStyles) {
  std::vector<baselines::Vector> workload;
  for (int i = 0; i < 5; ++i) {
    baselines::Vector v;
    v.inputs["multiplicand"] = BitVector::from_int(8, i * 3);
    v.cycles = 0;
    workload.push_back(std::move(v));
  }
  SimServer server(make_kcm_blackbox());
  // 5 ms synthetic RTT: 5 vectors * 2 round trips * 5 ms >= 50 ms.
  SimClient client(server.start(), 5.0);
  auto webcad = baselines::run_webcad(client, workload);
  EXPECT_GE(webcad.wall_seconds, 0.045);
  client.bye();

  auto local_model = make_kcm_blackbox();
  auto local = baselines::run_applet_local(*local_model, workload);
  EXPECT_LT(local.wall_seconds, webcad.wall_seconds);
  // The analytic model agrees on ordering at any RTT.
  EXPECT_LT(local.modeled_seconds(50.0), webcad.modeled_seconds(50.0));
}

}  // namespace
}  // namespace jhdl
