// Unit tests for the util module: logic values, bit vectors, byte streams,
// CRC32, compression, and string helpers.
#include <gtest/gtest.h>

#include "util/bitvector.h"
#include "util/bytestream.h"
#include "util/compress.h"
#include "util/crc32.h"
#include "util/logic.h"
#include "util/rng.h"
#include "util/strings.h"

namespace jhdl {
namespace {

TEST(Logic4Test, AndTruthTable) {
  EXPECT_EQ(logic_and(Logic4::Zero, Logic4::Zero), Logic4::Zero);
  EXPECT_EQ(logic_and(Logic4::Zero, Logic4::One), Logic4::Zero);
  EXPECT_EQ(logic_and(Logic4::One, Logic4::One), Logic4::One);
  // 0 dominates even against X/Z.
  EXPECT_EQ(logic_and(Logic4::Zero, Logic4::X), Logic4::Zero);
  EXPECT_EQ(logic_and(Logic4::Zero, Logic4::Z), Logic4::Zero);
  EXPECT_EQ(logic_and(Logic4::One, Logic4::X), Logic4::X);
  EXPECT_EQ(logic_and(Logic4::X, Logic4::X), Logic4::X);
}

TEST(Logic4Test, OrTruthTable) {
  EXPECT_EQ(logic_or(Logic4::Zero, Logic4::Zero), Logic4::Zero);
  EXPECT_EQ(logic_or(Logic4::One, Logic4::Zero), Logic4::One);
  // 1 dominates even against X/Z.
  EXPECT_EQ(logic_or(Logic4::One, Logic4::X), Logic4::One);
  EXPECT_EQ(logic_or(Logic4::Zero, Logic4::X), Logic4::X);
}

TEST(Logic4Test, XorPropagatesX) {
  EXPECT_EQ(logic_xor(Logic4::One, Logic4::Zero), Logic4::One);
  EXPECT_EQ(logic_xor(Logic4::One, Logic4::One), Logic4::Zero);
  EXPECT_EQ(logic_xor(Logic4::One, Logic4::X), Logic4::X);
  EXPECT_EQ(logic_xor(Logic4::Z, Logic4::Zero), Logic4::X);
}

TEST(Logic4Test, NotAndChars) {
  EXPECT_EQ(logic_not(Logic4::Zero), Logic4::One);
  EXPECT_EQ(logic_not(Logic4::One), Logic4::Zero);
  EXPECT_EQ(logic_not(Logic4::X), Logic4::X);
  EXPECT_EQ(logic_char(Logic4::Zero), '0');
  EXPECT_EQ(logic_char(Logic4::Z), 'z');
  EXPECT_EQ(logic_from_char('1'), Logic4::One);
  EXPECT_EQ(logic_from_char('X'), Logic4::X);
  EXPECT_THROW(logic_from_char('q'), std::invalid_argument);
}

TEST(BitVectorTest, FromUintRoundTrip) {
  BitVector v = BitVector::from_uint(8, 0xA5);
  EXPECT_EQ(v.width(), 8u);
  EXPECT_TRUE(v.is_fully_defined());
  EXPECT_EQ(v.to_uint(), 0xA5u);
  EXPECT_EQ(v.to_string(), "10100101");
}

TEST(BitVectorTest, SignedRoundTrip) {
  BitVector v = BitVector::from_int(8, -56);
  EXPECT_EQ(v.to_int(), -56);
  EXPECT_EQ(v.to_uint(), 200u);  // two's complement at width 8
  BitVector w = BitVector::from_int(12, -1);
  EXPECT_EQ(w.to_int(), -1);
}

TEST(BitVectorTest, FromStringMsbFirst) {
  BitVector v = BitVector::from_string("10x1");
  EXPECT_EQ(v.get(0), Logic4::One);
  EXPECT_EQ(v.get(1), Logic4::X);
  EXPECT_EQ(v.get(2), Logic4::Zero);
  EXPECT_EQ(v.get(3), Logic4::One);
  EXPECT_FALSE(v.is_fully_defined());
  EXPECT_THROW(v.to_uint(), std::logic_error);
}

TEST(BitVectorTest, SliceAndConcat) {
  BitVector v = BitVector::from_uint(8, 0b10110100);
  BitVector lo = v.slice(0, 4);
  EXPECT_EQ(lo.to_uint(), 0b0100u);
  BitVector hi = v.slice(4, 4);
  EXPECT_EQ(hi.to_uint(), 0b1011u);
  BitVector cat = lo.concat_msb(hi);
  EXPECT_EQ(cat.to_uint(), 0b10110100u);
  EXPECT_THROW(v.slice(6, 4), std::out_of_range);
}

TEST(BitVectorTest, OutOfRangeAccess) {
  BitVector v(4);
  EXPECT_THROW(v.get(4), std::out_of_range);
  EXPECT_THROW(v.set(9, Logic4::One), std::out_of_range);
}

TEST(ByteStreamTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDE);
  w.u64(0x0123456789ABCDEFull);
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(0xFFFFFFFFFFFFFFFFull);
  w.svarint(-1);
  w.svarint(1);
  w.svarint(-123456789);
  w.str("hello jhdl");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789ABCDEu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(r.varint(), 128u);
  EXPECT_EQ(r.varint(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.svarint(), -1);
  EXPECT_EQ(r.svarint(), 1);
  EXPECT_EQ(r.svarint(), -123456789);
  EXPECT_EQ(r.str(), "hello jhdl");
  EXPECT_TRUE(r.done());
}

TEST(ByteStreamTest, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(42);
  ByteReader r(w.bytes());
  r.u16();
  EXPECT_THROW(r.u32(), std::runtime_error);
}

TEST(Crc32Test, KnownVectors) {
  // Standard zlib check value for "123456789".
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
}

TEST(CompressTest, RoundTripText) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog ";
  }
  std::vector<std::uint8_t> input(text.begin(), text.end());
  auto compressed = lzss_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 4)
      << "repetitive text should compress well";
  auto restored = lzss_decompress(compressed);
  EXPECT_EQ(restored, input);
}

TEST(CompressTest, RoundTripRandomBytes) {
  Rng rng(7);
  std::vector<std::uint8_t> input(5000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next());
  auto compressed = lzss_compress(input);
  auto restored = lzss_decompress(compressed);
  EXPECT_EQ(restored, input);
}

TEST(CompressTest, EmptyInput) {
  std::vector<std::uint8_t> input;
  auto restored = lzss_decompress(lzss_compress(input));
  EXPECT_TRUE(restored.empty());
}

TEST(CompressTest, MalformedInputThrows) {
  std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(lzss_decompress(junk), std::runtime_error);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, RangeBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(StringsTest, SanitizeIdentifier) {
  EXPECT_EQ(sanitize_identifier("foo/bar[3]"), "foo_bar_3_");
  EXPECT_EQ(sanitize_identifier("3net"), "n3net");
  EXPECT_EQ(sanitize_identifier(""), "_");
  EXPECT_EQ(sanitize_identifier("ok_name"), "ok_name");
}

TEST(StringsTest, JoinFormatHumanBytes) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(795 * 1024), "795.0 kB");
}

}  // namespace
}  // namespace jhdl
