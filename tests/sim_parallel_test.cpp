// Differential and structural tests for the parallel simulation kernels:
// island partitioning invariants, deterministic LPT sharding, bit-exact
// parity of the island-threaded settle against the interpreter at every
// thread count, the 64-lane multi-pattern kernel against scalar
// per-pattern runs (corpus shapes, X/Z escalation, word-boundary pattern
// counts), pattern_sweep's leave-reset contract, thread-count resolution,
// the sim.threads gauge, and the protocol-v6 PatternBatch round trip
// through a DeliveryService.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/blackbox.h"
#include "core/catalog.h"
#include "core/corpus_generators.h"
#include "core/generators.h"
#include "core/license.h"
#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "net/sim_client.h"
#include "obs/metrics.h"
#include "server/delivery_service.h"
#include "sim/island_partition.h"
#include "sim/multi_pattern_kernel.h"
#include "sim/simulator.h"
#include "sim/thread_pool.h"
#include "tech/ff.h"
#include "tech/gates.h"
#include "tech/lut.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using namespace jhdl::core;

// ---------------------------------------------------------------------------
// A deterministic pipelined random circuit: `stages` stages of a random
// comb DAG over `k` 1-bit values, each stage registered through FDCs
// sharing one clear wire. FF boundaries cut the comb graph, so every
// stage settles as (at least) one independent island - the multi-island
// shape the threaded kernel needs. Construction is deterministic from
// the seed, so two instances are structurally identical and can run
// different engines for differential comparison.
// ---------------------------------------------------------------------------
struct PipelinedRandomCircuit {
  HWSystem hw;
  std::vector<Wire*> inputs;  // k 1-bit external data inputs
  Wire* clr = nullptr;        // shared synchronous clear
  std::vector<Wire*> outputs;  // final-stage q wires

  PipelinedRandomCircuit(std::uint64_t seed, std::size_t k,
                         std::size_t stages, std::size_t gates_per_stage) {
    Rng rng(seed);
    clr = new Wire(&hw, 1, "clr");
    std::vector<Wire*> cur;
    for (std::size_t i = 0; i < k; ++i) {
      Wire* w = new Wire(&hw, 1, "in" + std::to_string(i));
      inputs.push_back(w);
      cur.push_back(w);
    }
    for (std::size_t s = 0; s < stages; ++s) {
      std::vector<Wire*> values = cur;
      for (std::size_t g = 0; g < gates_per_stage; ++g) {
        const int kind = static_cast<int>(rng.below(5));
        const std::size_t a = rng.below(values.size());
        const std::size_t b = rng.below(values.size());
        const std::size_t c = rng.below(values.size());
        Wire* out = new Wire(
            &hw, 1, "s" + std::to_string(s) + "g" + std::to_string(g));
        switch (kind) {
          case 0:
            new tech::And2(&hw, values[a], values[b], out);
            break;
          case 1:
            new tech::Or2(&hw, values[a], values[b], out);
            break;
          case 2:
            new tech::Xor2(&hw, values[a], values[b], out);
            break;
          case 3:
            new tech::Inv(&hw, values[a], out);
            break;
          default:
            new tech::Mux2(&hw, values[a], values[b], values[c], out);
            break;
        }
        values.push_back(out);
      }
      std::vector<Wire*> next;
      for (std::size_t i = 0; i < k; ++i) {
        Wire* q = new Wire(
            &hw, 1, "q" + std::to_string(s) + "_" + std::to_string(i));
        new tech::FDC(&hw, values[values.size() - k + i], q, clr,
                      (i % 2) == 1);
        next.push_back(q);
      }
      cur = next;
    }
    outputs = cur;
  }
};

Simulator make_sim(HWSystem& hw, SimMode mode, std::size_t threads = 1) {
  SimOptions options;
  options.mode = mode;
  options.threads = threads;
  options.parallel_min_ops = 1;  // let tiny test circuits engage the pool
  return Simulator(hw, options);
}

/// Random cycle_batch stimulus over the circuit's inputs + clr, with a
/// clear pulse mid-stream and optional X/Z bits sprinkled in.
std::vector<BatchStimulus> make_batch_stimulus(
    const PipelinedRandomCircuit& rc, std::size_t n, std::uint64_t seed,
    bool inject_xz) {
  Rng rng(seed);
  std::vector<BatchStimulus> streams;
  for (Wire* in : rc.inputs) {
    std::vector<BitVector> values;
    for (std::size_t t = 0; t < n; ++t) {
      Logic4 v = to_logic((rng.next() & 1u) != 0);
      if (inject_xz) {
        const std::uint64_t roll = rng.below(8);
        if (roll == 0) v = Logic4::X;
        if (roll == 1) v = Logic4::Z;
      }
      values.push_back(BitVector(1, v));
    }
    streams.push_back(BatchStimulus{in, values});
  }
  std::vector<BitVector> clr_values;
  for (std::size_t t = 0; t < n; ++t) {
    // Clear pulses mid-stream: the FF clear plane and the "reset while
    // data in flight" path both get exercised.
    const bool pulse = t == n / 2 || t == n / 2 + 1;
    clr_values.push_back(BitVector(1, to_logic(pulse)));
  }
  streams.push_back(BatchStimulus{rc.clr, clr_values});
  return streams;
}

// ---------------------------------------------------------------------------
// Island partition invariants
// ---------------------------------------------------------------------------

TEST(IslandPartitionTest, PlanCoversAcyclicOpsExactlyOnce) {
  PipelinedRandomCircuit rc(17, 6, 4, 24);
  Simulator sim = make_sim(rc.hw, SimMode::Compiled);
  ASSERT_NE(sim.compiled_program(), nullptr);
  auto plan = partition_islands(*sim.compiled_program());
  ASSERT_NE(plan, nullptr);
  EXPECT_GE(plan->num_islands(), 2u) << "stage cuts should split the graph";

  // op_order is a permutation of [0, num_acyclic).
  std::set<std::uint32_t> seen(plan->op_order.begin(), plan->op_order.end());
  EXPECT_EQ(seen.size(), plan->op_order.size());
  ASSERT_FALSE(plan->island_begin.empty());
  EXPECT_EQ(plan->island_begin.front(), 0u);
  EXPECT_EQ(plan->island_begin.back(), plan->op_order.size());
  for (std::size_t i = 0; i + 1 < plan->island_begin.size(); ++i) {
    EXPECT_LT(plan->island_begin[i], plan->island_begin[i + 1]);
  }
  // Within an island, op indices ascend (stays a topological order).
  for (std::size_t i = 0; i < plan->num_islands(); ++i) {
    for (std::uint32_t j = plan->island_begin[i] + 1;
         j < plan->island_begin[i + 1]; ++j) {
      EXPECT_LT(plan->op_order[j - 1], plan->op_order[j]);
    }
  }
}

TEST(IslandPartitionTest, ShardsAreDeterministicAndComplete) {
  PipelinedRandomCircuit rc(29, 6, 4, 24);
  Simulator sim = make_sim(rc.hw, SimMode::Compiled);
  auto plan = partition_islands(*sim.compiled_program());
  for (std::size_t k : {1u, 2u, 3u, 8u}) {
    const auto a = plan->shards(k);
    const auto b = plan->shards(k);
    EXPECT_EQ(a, b) << "sharding must be deterministic (k=" << k << ")";
    ASSERT_EQ(a.size(), k);
    std::set<std::uint32_t> covered;
    for (const auto& shard : a) covered.insert(shard.begin(), shard.end());
    EXPECT_EQ(covered.size(), plan->num_islands())
        << "every island lands on exactly one shard (k=" << k << ")";
  }
}

// ---------------------------------------------------------------------------
// Island-threaded cycle_batch: parity with the interpreter at every
// thread count, determinism across runs, X/Z stimulus included.
// ---------------------------------------------------------------------------

class ThreadedParityTest : public ::testing::TestWithParam<std::uint64_t> {};

void expect_columns_equal(const std::vector<std::vector<BitVector>>& want,
                          const std::vector<std::vector<BitVector>>& got,
                          const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (std::size_t p = 0; p < want.size(); ++p) {
    ASSERT_EQ(want[p].size(), got[p].size()) << what << " probe " << p;
    for (std::size_t t = 0; t < want[p].size(); ++t) {
      EXPECT_EQ(want[p][t].to_string(), got[p][t].to_string())
          << what << " probe " << p << " step " << t;
    }
  }
}

TEST_P(ThreadedParityTest, CycleBatchMatchesInterpreterAtEveryThreadCount) {
  const std::size_t n = 50;
  for (const bool inject_xz : {false, true}) {
    PipelinedRandomCircuit rc_ref(GetParam(), 6, 4, 24);
    Simulator interp = make_sim(rc_ref.hw, SimMode::Interpreted);
    const auto ref = interp.cycle_batch(
        n, make_batch_stimulus(rc_ref, n, GetParam() * 7 + 1, inject_xz),
        rc_ref.outputs);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      PipelinedRandomCircuit rc(GetParam(), 6, 4, 24);
      Simulator sim = make_sim(rc.hw, SimMode::Compiled, threads);
      const auto got = sim.cycle_batch(
          n, make_batch_stimulus(rc, n, GetParam() * 7 + 1, inject_xz),
          rc.outputs);
      expect_columns_equal(ref, got,
                           inject_xz ? "xz stimulus" : "binary stimulus");
      if (threads >= 2) {
        EXPECT_NE(sim.islands(), nullptr)
            << "threaded batch should have built the island plan";
      }
    }
  }
}

TEST_P(ThreadedParityTest, ThreadedRunsAreDeterministicAcrossRepeats) {
  const std::size_t n = 40;
  std::vector<std::vector<BitVector>> first;
  for (int repeat = 0; repeat < 3; ++repeat) {
    PipelinedRandomCircuit rc(GetParam(), 6, 4, 24);
    Simulator sim = make_sim(rc.hw, SimMode::Compiled, 8);
    auto got = sim.cycle_batch(
        n, make_batch_stimulus(rc, n, GetParam() + 3, true), rc.outputs);
    if (repeat == 0) {
      first = std::move(got);
    } else {
      expect_columns_equal(first, got, "repeat");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedParityTest,
                         ::testing::Values(1, 2, 5, 11, 23, 47));

// ---------------------------------------------------------------------------
// Multi-pattern kernel: corpus parity, word-boundary pattern counts,
// X/Z escalation, leave-reset contract.
// ---------------------------------------------------------------------------

struct CorpusShape {
  const char* label;
  std::shared_ptr<const ModuleGenerator> gen;
  ParamMap params;
};

std::vector<CorpusShape> small_corpus_shapes() {
  auto systolic = std::make_shared<SystolicArrayGenerator>();
  auto hash = std::make_shared<HashPipeGenerator>();
  auto cordic = std::make_shared<CordicGenerator>();
  auto rfalu = std::make_shared<RfAluGenerator>();
  std::vector<CorpusShape> shapes;
  shapes.push_back({"systolic", systolic,
                    ParamMap()
                        .set("rows", std::int64_t{2})
                        .set("cols", std::int64_t{2})
                        .set("data_width", std::int64_t{4})
                        .set("guard_bits", std::int64_t{2})
                        .resolved(systolic->params())});
  shapes.push_back({"hashpipe", hash,
                    ParamMap()
                        .set("algo", std::int64_t{0})
                        .set("data_width", std::int64_t{4})
                        .resolved(hash->params())});
  shapes.push_back({"cordic", cordic,
                    ParamMap()
                        .set("width", std::int64_t{8})
                        .set("stages", std::int64_t{6})
                        .set("pipelined", std::int64_t{1})
                        .resolved(cordic->params())});
  shapes.push_back({"rfalu", rfalu,
                    ParamMap()
                        .set("regs", std::int64_t{4})
                        .set("width", std::int64_t{4})
                        .resolved(rfalu->params())});
  return shapes;
}

BitVector random_pattern_value(Rng& rng, std::size_t width, bool inject_xz) {
  BitVector v(width, Logic4::Zero);
  for (std::size_t i = 0; i < width; ++i) {
    Logic4 bit = to_logic((rng.next() & 1u) != 0);
    if (inject_xz) {
      const std::uint64_t roll = rng.below(10);
      if (roll == 0) bit = Logic4::X;
      if (roll == 1) bit = Logic4::Z;
    }
    v.set(i, bit);
  }
  return v;
}

/// Scalar reference for a pattern sweep: reset, apply, cycle, sample -
/// using whichever engine `mode` selects.
std::vector<std::vector<BitVector>> scalar_sweep(
    const BuildResult& build, SimMode mode,
    const std::vector<std::vector<BitVector>>& patterns, std::size_t cycles) {
  SimOptions options;
  options.mode = mode;
  Simulator sim(*build.system, options);
  std::vector<Wire*> inputs;
  for (const auto& [name, wire] : build.inputs) inputs.push_back(wire);
  std::vector<Wire*> probes;
  for (const auto& [name, wire] : build.outputs) probes.push_back(wire);
  const std::size_t n = patterns.front().size();
  std::vector<std::vector<BitVector>> columns(probes.size());
  for (std::size_t p = 0; p < n; ++p) {
    sim.reset();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      sim.put(inputs[i], patterns[i][p]);
    }
    if (cycles > 0) {
      sim.cycle(cycles);
    } else {
      sim.propagate();
    }
    for (std::size_t i = 0; i < probes.size(); ++i) {
      columns[i].push_back(sim.get(probes[i]));
    }
  }
  return columns;
}

TEST(MultiPatternTest, CorpusShapesMatchInterpreterAcrossWordBoundary) {
  // 70 patterns: a full 64-lane word plus a 6-lane tail, so lane
  // replication in the spare lanes and column extraction both run.
  const std::size_t n_patterns = 70;
  const std::size_t cycles = 2;
  for (const CorpusShape& shape : small_corpus_shapes()) {
    for (const bool inject_xz : {false, true}) {
      BuildResult ref_build = shape.gen->build(shape.params);
      Rng rng(0xC0FFEE);
      std::vector<std::vector<BitVector>> patterns;
      for (const auto& [name, wire] : ref_build.inputs) {
        std::vector<BitVector> column;
        for (std::size_t p = 0; p < n_patterns; ++p) {
          column.push_back(
              random_pattern_value(rng, wire->width(), inject_xz));
        }
        patterns.push_back(std::move(column));
      }
      const auto want =
          scalar_sweep(ref_build, SimMode::Interpreted, patterns, cycles);

      BuildResult build = shape.gen->build(shape.params);
      SimOptions options;
      options.mode = SimMode::Compiled;
      Simulator sim(*build.system, options);
      ASSERT_NE(sim.compiled_program(), nullptr) << shape.label;
      EXPECT_TRUE(MultiPatternKernel::supports(*sim.compiled_program()))
          << shape.label << " should take the packed path";
      std::vector<PatternStimulus> streams;
      {
        std::size_t i = 0;
        for (const auto& [name, wire] : build.inputs) {
          streams.push_back(PatternStimulus{wire, patterns[i++]});
        }
      }
      std::vector<Wire*> probes;
      for (const auto& [name, wire] : build.outputs) probes.push_back(wire);
      const auto got = sim.pattern_sweep(n_patterns, streams, cycles, probes);
      expect_columns_equal(want, got, shape.label);
    }
  }
}

TEST(MultiPatternTest, LutEscalationHandlesXzExactly) {
  // A hand-built LUT cone: random-init LUT4s over shared inputs. X/Z
  // stimulus forces the per-lane escalation path (the word fast path
  // cannot represent a LUT's X-agreement rule), and the profile counters
  // prove it actually ran.
  auto build_cone = [](HWSystem& hw, std::vector<Wire*>& ins,
                       std::vector<Wire*>& outs) {
    Rng rng(99);
    for (std::size_t i = 0; i < 6; ++i) {
      ins.push_back(new Wire(&hw, 1, "in" + std::to_string(i)));
    }
    std::vector<Wire*> values = ins;
    for (std::size_t g = 0; g < 12; ++g) {
      Wire* out = new Wire(&hw, 1, "lut" + std::to_string(g));
      new tech::Lut4(&hw, values[rng.below(values.size())],
                     values[rng.below(values.size())],
                     values[rng.below(values.size())],
                     values[rng.below(values.size())], out,
                     static_cast<std::uint16_t>(rng.next() & 0xFFFF));
      values.push_back(out);
    }
    outs.assign(values.end() - 4, values.end());
  };

  HWSystem ref_hw;
  std::vector<Wire*> ref_ins, ref_outs;
  build_cone(ref_hw, ref_ins, ref_outs);
  HWSystem hw;
  std::vector<Wire*> ins, outs;
  build_cone(hw, ins, outs);

  const std::size_t n_patterns = 70;
  Rng rng(0xABCD);
  std::vector<std::vector<BitVector>> patterns(ref_ins.size());
  for (std::size_t i = 0; i < ref_ins.size(); ++i) {
    for (std::size_t p = 0; p < n_patterns; ++p) {
      patterns[i].push_back(random_pattern_value(rng, 1, true));
    }
  }

  // Scalar reference on the interpreter.
  Simulator interp = make_sim(ref_hw, SimMode::Interpreted);
  std::vector<std::vector<BitVector>> want(ref_outs.size());
  for (std::size_t p = 0; p < n_patterns; ++p) {
    interp.reset();
    for (std::size_t i = 0; i < ref_ins.size(); ++i) {
      interp.put(ref_ins[i], patterns[i][p]);
    }
    interp.propagate();
    for (std::size_t i = 0; i < ref_outs.size(); ++i) {
      want[i].push_back(interp.get(ref_outs[i]));
    }
  }

  Simulator sim = make_sim(hw, SimMode::Compiled);
  sim.enable_profiling();
  std::vector<PatternStimulus> streams;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    streams.push_back(PatternStimulus{ins[i], patterns[i]});
  }
  const auto got = sim.pattern_sweep(n_patterns, streams, 0, outs);
  expect_columns_equal(want, got, "lut cone");
  ASSERT_NE(sim.profile(), nullptr);
  EXPECT_GT(sim.profile()->mp_settles, 0u);
  EXPECT_GT(sim.profile()->mp_escalations, 0u)
      << "X/Z stimulus must force per-lane LUT escalation";
  EXPECT_GT(sim.profile()->mp_lane_evals, 0u);
}

TEST(MultiPatternTest, PatternSweepLeavesPowerOnResetState) {
  auto gen = std::make_shared<HashPipeGenerator>();
  ParamMap params = ParamMap()
                        .set("algo", std::int64_t{0})
                        .set("data_width", std::int64_t{4})
                        .resolved(gen->params());
  BuildResult build = gen->build(params);
  SimOptions options;
  options.mode = SimMode::Compiled;
  Simulator sim(*build.system, options);
  Wire* d = build.inputs.at("d");
  Wire* crc = build.outputs.at("crc");

  // Drive some history into the CRC state, remembering the entry value of
  // the stimulus wire.
  sim.put(d, 0x5u);
  sim.cycle(3);
  const BitVector entry_d = sim.get(d);

  // Reference: a never-touched instance, still at power-on.
  BuildResult fresh = gen->build(params);
  Simulator fresh_sim(*fresh.system, SimOptions{});

  std::vector<PatternStimulus> streams;
  std::vector<BitVector> values;
  Rng rng(7);
  for (std::size_t p = 0; p < 70; ++p) {
    values.push_back(random_pattern_value(rng, d->width(), false));
  }
  streams.push_back(PatternStimulus{d, values});
  sim.pattern_sweep(70, streams, 2, {crc});

  // Contract: stimulus wires back at their entry values.
  EXPECT_EQ(sim.get(d).to_string(), entry_d.to_string());
  // Contract: power-on sequential state. Drive both instances identically
  // and compare a combinational read plus one clocked step.
  sim.put(d, 0u);
  fresh_sim.put(fresh.inputs.at("d"), 0u);
  EXPECT_EQ(sim.get(crc).to_string(),
            fresh_sim.get(fresh.outputs.at("crc")).to_string());
  sim.put(d, 0x9u);
  fresh_sim.put(fresh.inputs.at("d"), 0x9u);
  sim.cycle();
  fresh_sim.cycle();
  EXPECT_EQ(sim.get(crc).to_string(),
            fresh_sim.get(fresh.outputs.at("crc")).to_string());
}

// ---------------------------------------------------------------------------
// Thread-count resolution and observability
// ---------------------------------------------------------------------------

TEST(ResolveSimThreadsTest, RequestedEnvAndAutoOrder) {
  EXPECT_EQ(resolve_sim_threads(3), 3u);
  EXPECT_EQ(resolve_sim_threads(1), 1u);
  EXPECT_EQ(resolve_sim_threads(200), 64u) << "explicit requests clamp at 64";
  ::setenv("JHDL_SIM_THREADS", "5", 1);
  EXPECT_EQ(resolve_sim_threads(0), 5u);
  EXPECT_EQ(resolve_sim_threads(2), 2u) << "explicit beats the env var";
  ::setenv("JHDL_SIM_THREADS", "bogus", 1);
  EXPECT_GE(resolve_sim_threads(0), 1u);
  ::unsetenv("JHDL_SIM_THREADS");
  const std::size_t auto_threads = resolve_sim_threads(0);
  EXPECT_GE(auto_threads, 1u);
  EXPECT_LE(auto_threads, 8u) << "auto clamps at 8";
}

TEST(ResolveSimThreadsTest, SimulatorExportsThreadsGauge) {
  PipelinedRandomCircuit rc(5, 4, 2, 10);
  SimOptions options;
  options.mode = SimMode::Compiled;
  options.threads = 2;
  Simulator sim(rc.hw, options);
  EXPECT_EQ(sim.threads(), 2u);
  obs::MetricsRegistry registry;
  sim.export_metrics(registry);
  EXPECT_EQ(registry.gauge("sim.threads").value(), 2);
}

TEST(ThreadedProfileTest, ParallelSettleCountersAndPerIslandEvals) {
  PipelinedRandomCircuit rc(31, 6, 4, 24);
  Simulator sim = make_sim(rc.hw, SimMode::Compiled, 2);
  sim.enable_profiling();
  const std::size_t n = 20;
  sim.cycle_batch(n, make_batch_stimulus(rc, n, 42, false), rc.outputs);
  ASSERT_NE(sim.profile(), nullptr);
  EXPECT_GT(sim.profile()->settles_parallel, 0u);
  ASSERT_NE(sim.islands(), nullptr);
  ASSERT_EQ(sim.profile()->islands.size(), sim.islands()->num_islands());
  std::uint64_t total = 0;
  for (const auto& island : sim.profile()->islands) total += island.evals;
  EXPECT_GT(total, 0u) << "per-island eval attribution must accumulate";
}

// ---------------------------------------------------------------------------
// Protocol v6 PatternBatch end to end
// ---------------------------------------------------------------------------

TEST(PatternBatchProtocolTest, RoundTripsThroughDeliveryService) {
  server::DeliveryConfig config;
  config.workers = 2;
  config.sim_threads = 1;
  IpCatalog catalog;
  catalog.add(std::make_shared<KcmGenerator>());
  server::DeliveryService service(std::move(catalog), config);
  service.add_license(
      LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  net::ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "kcm-multiplier";
  spec.params = {{"constant", -56}, {"input_width", 8}};
  net::SimClient client(port, spec);
  EXPECT_GE(client.negotiated_protocol(), 6u);

  // Local reference model with identical params.
  KcmGenerator kcm;
  ParamMap params = ParamMap()
                        .set("constant", std::int64_t{-56})
                        .set("input_width", std::int64_t{8})
                        .resolved(kcm.params());
  BlackBoxModel local(kcm.build(params), "kcm");

  std::map<std::string, std::vector<BitVector>> patterns;
  Rng rng(0xFACE);
  for (std::size_t p = 0; p < 70; ++p) {
    patterns["multiplicand"].push_back(
        BitVector::from_uint(8, rng.next() & 0xFF));
  }
  const std::size_t cycles = local.latency();
  const auto want = local.pattern_batch(patterns, cycles, {});
  const auto got = client.pattern_batch(patterns, cycles);
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [name, column] : want) {
    ASSERT_TRUE(got.count(name)) << name;
    ASSERT_EQ(got.at(name).size(), column.size()) << name;
    for (std::size_t p = 0; p < column.size(); ++p) {
      EXPECT_EQ(got.at(name)[p].to_string(), column[p].to_string())
          << name << " pattern " << p;
    }
  }
  // The sweep leaves the remote model reset, like the local one.
  EXPECT_EQ(client.get_output("product").to_string(),
            local.get_output("product").to_string());
  client.bye();
  service.stop();
}

TEST(PatternBatchProtocolTest, OversizedBatchIsRejected) {
  server::DeliveryConfig config;
  config.workers = 1;
  IpCatalog catalog;
  catalog.add(std::make_shared<KcmGenerator>());
  server::DeliveryService service(std::move(catalog), config);
  service.add_license(
      LicensePolicy::make("acme", LicenseTier::Evaluation));
  const std::uint16_t port = service.start();

  net::ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "kcm-multiplier";
  spec.params = {{"constant", 3}, {"input_width", 4}};
  net::SimClient client(port, spec);

  std::map<std::string, std::vector<BitVector>> patterns;
  for (std::size_t p = 0; p < net::kMaxPatternBatch + 1; ++p) {
    patterns["multiplicand"].push_back(BitVector::from_uint(4, p & 0xF));
  }
  EXPECT_THROW(client.pattern_batch(patterns, 1), net::NetError);
  // The session survives the refusal: a legal batch still works.
  patterns["multiplicand"].resize(4);
  const auto ok = client.pattern_batch(patterns, client.latency());
  EXPECT_EQ(ok.at("product").size(), 4u);
  client.bye();
  service.stop();
}

TEST(PatternBatchProtocolTest, ModelValidatesStreams) {
  KcmGenerator kcm;
  ParamMap params = ParamMap()
                        .set("constant", std::int64_t{3})
                        .set("input_width", std::int64_t{4})
                        .resolved(kcm.params());
  BlackBoxModel model(kcm.build(params), "kcm");
  EXPECT_THROW(model.pattern_batch({}, 1, {}), HdlError);
  std::map<std::string, std::vector<BitVector>> patterns;
  patterns["multiplicand"] = {BitVector::from_uint(4, 1),
                              BitVector::from_uint(4, 2)};
  patterns["nonexistent"] = {BitVector::from_uint(4, 1),
                             BitVector::from_uint(4, 2)};
  EXPECT_THROW(model.pattern_batch(patterns, 1, {}), std::out_of_range);
}

}  // namespace
}  // namespace jhdl
