// Tests for the extended technology library: SRL16, block RAM, and pads.
#include <gtest/gtest.h>

#include <set>

#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "sim/simulator.h"
#include "tech/virtex.h"

namespace jhdl {
namespace {

TEST(Srl16Test, TapDelays) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::Srl16(&hw, d, addr, q);
  Simulator sim(hw);
  // Shift in a known pattern: 1,0,1,1,0,...
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0};
  for (int bit : pattern) {
    sim.put(d, static_cast<std::uint64_t>(bit));
    sim.cycle();
  }
  // Tap k reads the value shifted in k+1 clocks ago... tap 0 = newest.
  for (std::uint64_t tap = 0; tap < 8; ++tap) {
    sim.put(addr, tap);
    EXPECT_EQ(sim.get(q).to_uint(),
              static_cast<std::uint64_t>(pattern[7 - tap]))
        << "tap=" << tap;
  }
}

TEST(Srl16Test, ClockEnableHolds) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* ce = new Wire(&hw, 1, "ce");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::Srl16(&hw, d, addr, q, ce);
  Simulator sim(hw);
  sim.put(addr, 0);
  sim.put(ce, 1);
  sim.put(d, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
  sim.put(ce, 0);
  sim.put(d, 0);
  sim.cycle(3);
  EXPECT_EQ(sim.get(q).to_uint(), 1u) << "disabled SRL must hold";
}

TEST(Srl16Test, DynamicTapIsCombinational) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::Srl16(&hw, d, addr, q);
  Simulator sim(hw);
  sim.put(d, 1);
  sim.cycle();
  sim.put(d, 0);
  sim.cycle();
  // No clock between these reads: address changes must show through.
  sim.put(addr, 0);
  EXPECT_EQ(sim.get(q).to_uint(), 0u);
  sim.put(addr, 1);
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
}

TEST(BramTest, SyncWriteReadback) {
  HWSystem hw;
  Wire* addr = new Wire(&hw, 9, "addr");
  Wire* din = new Wire(&hw, 8, "din");
  Wire* we = new Wire(&hw, 1, "we");
  Wire* en = new Wire(&hw, 1, "en");
  Wire* dout = new Wire(&hw, 8, "dout");
  new tech::RamB4S8(&hw, addr, din, we, en, dout);
  Simulator sim(hw);
  // Write 0x5A to address 300 (write-first: dout shows the new data).
  sim.put(addr, 300);
  sim.put(din, 0x5A);
  sim.put(we, 1);
  sim.put(en, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(dout).to_uint(), 0x5Au);
  // Read elsewhere, then back.
  sim.put(we, 0);
  sim.put(addr, 10);
  sim.cycle();
  EXPECT_EQ(sim.get(dout).to_uint(), 0u);
  sim.put(addr, 300);
  sim.cycle();
  EXPECT_EQ(sim.get(dout).to_uint(), 0x5Au);
}

TEST(BramTest, SynchronousReadNotCombinational) {
  HWSystem hw;
  Wire* addr = new Wire(&hw, 9, "addr");
  Wire* din = new Wire(&hw, 8, "din");
  Wire* we = new Wire(&hw, 1, "we");
  Wire* en = new Wire(&hw, 1, "en");
  Wire* dout = new Wire(&hw, 8, "dout");
  std::vector<std::uint8_t> init = {11, 22, 33};
  new tech::RamB4S8(&hw, addr, din, we, en, dout, init);
  Simulator sim(hw);
  sim.put(we, 0);
  sim.put(en, 1);
  sim.put(din, 0);
  sim.put(addr, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(dout).to_uint(), 22u);
  // Changing the address without a clock must NOT change the output.
  sim.put(addr, 2);
  EXPECT_EQ(sim.get(dout).to_uint(), 22u);
  sim.cycle();
  EXPECT_EQ(sim.get(dout).to_uint(), 33u);
}

TEST(BramTest, EnableGatesEverything) {
  HWSystem hw;
  Wire* addr = new Wire(&hw, 9, "addr");
  Wire* din = new Wire(&hw, 8, "din");
  Wire* we = new Wire(&hw, 1, "we");
  Wire* en = new Wire(&hw, 1, "en");
  Wire* dout = new Wire(&hw, 8, "dout");
  new tech::RamB4S8(&hw, addr, din, we, en, dout);
  Simulator sim(hw);
  sim.put(addr, 5);
  sim.put(din, 99);
  sim.put(we, 1);
  sim.put(en, 0);  // disabled: no write, no output update
  sim.cycle();
  EXPECT_FALSE(sim.get(dout).is_fully_defined());
  sim.put(en, 1);
  sim.put(we, 0);
  sim.cycle();
  EXPECT_EQ(sim.get(dout).to_uint(), 0u) << "the disabled write must not land";
}

TEST(BramTest, InitValidation) {
  HWSystem hw;
  Wire* addr = new Wire(&hw, 9, "addr");
  Wire* din = new Wire(&hw, 8, "din");
  Wire* we = new Wire(&hw, 1, "we");
  Wire* en = new Wire(&hw, 1, "en");
  Wire* dout = new Wire(&hw, 8, "dout");
  std::vector<std::uint8_t> too_big(513);
  EXPECT_THROW(new tech::RamB4S8(&hw, addr, din, we, en, dout, too_big),
               HdlError);
}

TEST(PadsTest, BuffersAndResources) {
  HWSystem hw;
  Wire* pad_in = new Wire(&hw, 1, "pad_in");
  Wire* core_in = new Wire(&hw, 1, "core_in");
  Wire* core_out = new Wire(&hw, 1, "core_out");
  Wire* pad_out = new Wire(&hw, 1, "pad_out");
  auto* ib = new tech::Ibuf(&hw, pad_in, core_in);
  new tech::Inv(&hw, core_in, core_out);
  auto* ob = new tech::Obuf(&hw, core_out, pad_out);
  Simulator sim(hw);
  sim.put(pad_in, 1);
  EXPECT_EQ(sim.get(pad_out).to_uint(), 0u);
  sim.put(pad_in, 0);
  EXPECT_EQ(sim.get(pad_out).to_uint(), 1u);
  EXPECT_EQ(ib->resources().luts, 0);
  EXPECT_GT(ob->resources().delay_ns, 1.0);
}

TEST(TechCatalogTest, NewPrimitivesListed) {
  const auto& lib = tech::virtex_library();
  std::set<std::string> names;
  for (const auto& p : lib) names.insert(p.name);
  EXPECT_TRUE(names.count("srl16"));
  EXPECT_TRUE(names.count("ramb4_s8"));
  EXPECT_TRUE(names.count("ibuf"));
  EXPECT_TRUE(names.count("obuf"));
}

}  // namespace
}  // namespace jhdl
