// Tests for the EDIF reader: s-expression parsing and full round trips
// through write_edif() -> read_edif() with connectivity checks.
#include <gtest/gtest.h>

#include "hdl/hwsystem.h"
#include "hdl/visitor.h"
#include "modgen/modgen.h"
#include "netlist/edif_reader.h"
#include "netlist/netlist.h"
#include "tech/virtex.h"

namespace jhdl {
namespace {

using namespace jhdl::netlist;

TEST(SexpTest, ParsesAtomsListsStrings) {
  auto root = parse_sexp("(a b (c \"quoted string\") 42)");
  ASSERT_FALSE(root->is_atom);
  EXPECT_EQ(root->keyword(), "a");
  ASSERT_EQ(root->items.size(), 4u);
  EXPECT_EQ(root->items[1]->atom, "b");
  const Sexp* c = root->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->items[1]->atom, "quoted string");
  EXPECT_EQ(root->items[3]->atom, "42");
}

TEST(SexpTest, MalformedInputThrows) {
  EXPECT_THROW(parse_sexp("(unbalanced"), std::runtime_error);
  EXPECT_THROW(parse_sexp("(a) trailing"), std::runtime_error);
  EXPECT_THROW(parse_sexp("(\"unterminated)"), std::runtime_error);
}

class FullAdder : public Cell {
 public:
  FullAdder(Node* parent, Wire* a, Wire* b, Wire* ci, Wire* s, Wire* co)
      : Cell(parent, "fulladder") {
    set_type_name("fulladder");
    port_in("a", a);
    port_in("b", b);
    port_in("ci", ci);
    port_out("s", s);
    port_out("co", co);
    Wire* t1 = new Wire(this, 1, "t1");
    Wire* t2 = new Wire(this, 1, "t2");
    Wire* t3 = new Wire(this, 1, "t3");
    new tech::And2(this, a, b, t1);
    new tech::And2(this, a, ci, t2);
    new tech::And2(this, b, ci, t3);
    new tech::Or3(this, t1, t2, t3, co);
    new tech::Xor3(this, a, b, ci, s);
  }
};

TEST(EdifReaderTest, FullAdderRoundTrip) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* ci = new Wire(&hw, 1, "ci");
  Wire* s = new Wire(&hw, 1, "s");
  Wire* co = new Wire(&hw, 1, "co");
  auto* fa = new FullAdder(&hw, a, b, ci, s, co);

  EdifDoc doc = read_edif(write_edif(*fa));
  EXPECT_EQ(doc.design_name, "fulladder");
  EXPECT_EQ(doc.top_cell, "fulladder");
  ASSERT_EQ(doc.libraries.size(), 2u);
  EXPECT_EQ(doc.libraries[0].name, "virtex");
  EXPECT_EQ(doc.libraries[1].name, "work");

  const EdifCell* top = doc.find_cell("fulladder");
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(top->has_contents);
  EXPECT_EQ(top->ports.size(), 5u);
  EXPECT_EQ(top->instances.size(), 5u);
  // 5 ports + 3 internal nets.
  EXPECT_EQ(top->nets.size(), 8u);

  const EdifCell* and2 = doc.find_cell("and2");
  ASSERT_NE(and2, nullptr);
  EXPECT_FALSE(and2->has_contents);
  EXPECT_EQ(and2->ports.size(), 3u);

  // Connectivity: net t1 joins the or3's input and one and2's output.
  const EdifNet* t1 = nullptr;
  for (const EdifNet& net : top->nets) {
    if (net.name == "t1") t1 = &net;
  }
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->joined.size(), 2u);
  // Every port ref on every net resolves to a known instance + port.
  for (const EdifNet& net : top->nets) {
    for (const EdifPortRef& ref : net.joined) {
      if (ref.instance.empty()) {
        bool is_top_port = false;
        for (const EdifPort& p : top->ports) {
          is_top_port |= (p.name == ref.port);
        }
        EXPECT_TRUE(is_top_port) << net.name << " -> " << ref.port;
      } else {
        const EdifInstance* inst = nullptr;
        for (const EdifInstance& i : top->instances) {
          if (i.name == ref.instance) inst = &i;
        }
        ASSERT_NE(inst, nullptr) << ref.instance;
        const EdifCell* def = doc.find_cell(inst->cell_ref);
        ASSERT_NE(def, nullptr);
        bool has_port = false;
        for (const EdifPort& p : def->ports) has_port |= (p.name == ref.port);
        EXPECT_TRUE(has_port) << inst->cell_ref << "." << ref.port;
      }
    }
  }
}

TEST(EdifReaderTest, KcmRoundTripWithArraysAndProperties) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 12, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, true, false, -56);

  EdifDoc doc = read_edif(write_edif(*kcm));
  const EdifCell* top = doc.find_cell(doc.top_cell);
  ASSERT_NE(top, nullptr);
  // Array ports with widths.
  bool found_mult = false;
  for (const EdifPort& port : top->ports) {
    if (port.name == "multiplicand") {
      found_mult = true;
      EXPECT_EQ(port.width, 8);
      EXPECT_EQ(port.direction, "INPUT");
    }
  }
  EXPECT_TRUE(found_mult);
  // ROM instances carry INIT properties through the round trip.
  bool found_init = false;
  for (const EdifLibrary& lib : doc.libraries) {
    for (const EdifCell& cell : lib.cells) {
      for (const EdifInstance& inst : cell.instances) {
        if (inst.cell_ref.rfind("rom16", 0) == 0) {
          found_init |= inst.properties.count("INIT_0") > 0;
        }
      }
    }
  }
  EXPECT_TRUE(found_init);
  // Member references parse with indices.
  bool found_member = false;
  for (const EdifNet& net : top->nets) {
    for (const EdifPortRef& ref : net.joined) {
      found_member |= (ref.member >= 0);
    }
  }
  EXPECT_TRUE(found_member);
}

TEST(EdifReaderTest, FlattenedRoundTripCountsPrimitives) {
  HWSystem hw;
  Wire* m = new Wire(&hw, 8, "m");
  Wire* p = new Wire(&hw, 15, "p");
  auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 77);
  const auto prims = collect_primitives(*kcm).size();

  EdifDoc doc = read_edif(write_edif(*kcm, {.flatten = true}));
  const EdifCell* top = doc.find_cell(doc.top_cell);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->instances.size(), prims);
}

TEST(EdifReaderTest, RejectsNonEdif) {
  EXPECT_THROW(read_edif("(notedif x)"), std::runtime_error);
  EXPECT_THROW(read_edif("(edif x)"), std::runtime_error);  // no design
}

}  // namespace
}  // namespace jhdl
