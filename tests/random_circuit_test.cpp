// Property tests over randomly generated circuits: the simulator must
// agree with an independent software evaluation of the same gate DAG,
// the JSON netlist must round-trip, and obfuscation must preserve
// behaviour - for hundreds of random structures, not just the
// hand-written ones.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <vector>

#include "core/protect.h"
#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "hdl/visitor.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "tech/virtex.h"
#include "util/rng.h"

namespace jhdl {
namespace {

/// A random combinational DAG over the gate library, with a parallel
/// software model for reference evaluation.
struct RandomCircuit {
  HWSystem hw;
  std::vector<Wire*> inputs;
  std::vector<Wire*> outputs;
  // Software model: per node, gate kind and operand indices. Nodes 0..n-1
  // are the primary inputs.
  struct SoftNode {
    int kind;  // 0 and2, 1 or2, 2 xor2, 3 inv, 4 mux2
    std::size_t a, b, c;
  };
  std::vector<SoftNode> nodes;
  std::size_t num_inputs;

  RandomCircuit(std::uint64_t seed, std::size_t n_inputs, std::size_t n_gates)
      : num_inputs(n_inputs) {
    Rng rng(seed);
    std::vector<Wire*> values;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      Wire* w = new Wire(&hw, 1, "in" + std::to_string(i));
      inputs.push_back(w);
      values.push_back(w);
      nodes.push_back({-1, 0, 0, 0});
    }
    for (std::size_t g = 0; g < n_gates; ++g) {
      int kind = static_cast<int>(rng.below(5));
      std::size_t a = rng.below(values.size());
      std::size_t b = rng.below(values.size());
      std::size_t c = rng.below(values.size());
      Wire* out = new Wire(&hw, 1, "g" + std::to_string(g));
      switch (kind) {
        case 0:
          new tech::And2(&hw, values[a], values[b], out);
          break;
        case 1:
          new tech::Or2(&hw, values[a], values[b], out);
          break;
        case 2:
          new tech::Xor2(&hw, values[a], values[b], out);
          break;
        case 3:
          new tech::Inv(&hw, values[a], out);
          break;
        default:
          new tech::Mux2(&hw, values[a], values[b], values[c], out);
          break;
      }
      nodes.push_back({kind, a, b, c});
      values.push_back(out);
    }
    // The last few nodes are observed outputs.
    for (std::size_t i = values.size() - std::min<std::size_t>(8, n_gates);
         i < values.size(); ++i) {
      outputs.push_back(values[i]);
    }
  }

  /// Software reference evaluation for one input assignment.
  std::vector<bool> reference(std::uint64_t input_bits) const {
    std::vector<bool> value(nodes.size());
    for (std::size_t i = 0; i < num_inputs; ++i) {
      value[i] = ((input_bits >> i) & 1) != 0;
    }
    for (std::size_t i = num_inputs; i < nodes.size(); ++i) {
      const SoftNode& n = nodes[i];
      switch (n.kind) {
        case 0:
          value[i] = value[n.a] && value[n.b];
          break;
        case 1:
          value[i] = value[n.a] || value[n.b];
          break;
        case 2:
          value[i] = value[n.a] != value[n.b];
          break;
        case 3:
          value[i] = !value[n.a];
          break;
        default:
          value[i] = value[n.c] ? value[n.b] : value[n.a];
          break;
      }
    }
    std::vector<bool> out;
    for (std::size_t i = nodes.size() - outputs.size(); i < nodes.size();
         ++i) {
      out.push_back(value[i]);
    }
    return out;
  }
};

class RandomCircuitTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitTest, SimulatorMatchesSoftwareModel) {
  RandomCircuit rc(GetParam(), 6, 40);
  Simulator sim(rc.hw);
  Rng rng(GetParam() * 31 + 1);
  for (int iter = 0; iter < 100; ++iter) {
    std::uint64_t bits = rng.next() & 0x3F;
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      sim.put(rc.inputs[i], (bits >> i) & 1);
    }
    std::vector<bool> want = rc.reference(bits);
    for (std::size_t i = 0; i < rc.outputs.size(); ++i) {
      EXPECT_EQ(sim.get(rc.outputs[i]).to_uint(), want[i] ? 1u : 0u)
          << "seed=" << GetParam() << " iter=" << iter << " out=" << i;
    }
  }
}

TEST_P(RandomCircuitTest, JsonNetlistRoundTrips) {
  RandomCircuit rc(GetParam(), 5, 25);
  std::string text = netlist::write_json(rc.hw, {.flatten = true});
  netlist::JsonNetlist doc = netlist::read_json(text);
  const netlist::JsonDef* top = doc.find_def(doc.top);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->instances.size(), collect_primitives(rc.hw).size());
  // Reserialize and reparse: stable fixpoint.
  netlist::JsonNetlist doc2 = netlist::read_json(text);
  EXPECT_EQ(doc2.definitions.size(), doc.definitions.size());
}

TEST_P(RandomCircuitTest, ObfuscationPreservesBehaviour) {
  RandomCircuit rc(GetParam(), 6, 30);
  Simulator sim(rc.hw);
  Rng rng(GetParam() + 7);
  std::vector<std::uint64_t> stimuli;
  std::vector<std::vector<std::uint64_t>> before;
  for (int iter = 0; iter < 20; ++iter) {
    std::uint64_t bits = rng.next() & 0x3F;
    stimuli.push_back(bits);
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      sim.put(rc.inputs[i], (bits >> i) & 1);
    }
    std::vector<std::uint64_t> outs;
    for (Wire* o : rc.outputs) outs.push_back(sim.get(o).to_uint());
    before.push_back(std::move(outs));
  }
  core::obfuscate(rc.hw, GetParam());
  for (std::size_t t = 0; t < stimuli.size(); ++t) {
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      sim.put(rc.inputs[i], (stimuli[t] >> i) & 1);
    }
    for (std::size_t i = 0; i < rc.outputs.size(); ++i) {
      EXPECT_EQ(sim.get(rc.outputs[i]).to_uint(), before[t][i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

// ---------------------------------------------------------------------------
// Differential parity: interpreted vs compiled kernel.
//
// Circuit construction is deterministic from the seed, so two RandomCircuit
// instances are structurally identical (same net ids, same primitive
// order); one runs the interpreter, one the compiled kernel, and every net
// of every settled state must agree bit-for-bit - including X propagation.
// ---------------------------------------------------------------------------

Simulator make_sim(HWSystem& hw, SimMode mode) {
  SimOptions options;
  options.mode = mode;
  return Simulator(hw, options);
}

/// Compare EVERY net (not just outputs) between the two instances.
void expect_all_nets_equal(const HWSystem& a, const HWSystem& b,
                           const char* where) {
  ASSERT_EQ(a.net_count(), b.net_count());
  for (std::size_t i = 0; i < a.net_count(); ++i) {
    EXPECT_EQ(a.nets()[i]->value(), b.nets()[i]->value())
        << where << ": net " << i << " (" << a.nets()[i]->name() << ")";
  }
}

TEST_P(RandomCircuitTest, CompiledKernelMatchesInterpreterBitExact) {
  RandomCircuit rc_interp(GetParam(), 6, 40);
  RandomCircuit rc_comp(GetParam(), 6, 40);
  Simulator interp = make_sim(rc_interp.hw, SimMode::Interpreted);
  Simulator comp = make_sim(rc_comp.hw, SimMode::Compiled);
  ASSERT_NE(comp.compiled_program(), nullptr);
  ASSERT_EQ(interp.compiled_program(), nullptr);

  Rng rng(GetParam() * 97 + 3);
  for (int iter = 0; iter < 50; ++iter) {
    // Four-state stimulus: some bits driven X to exercise the X-pessimism
    // tables, not just the boolean subset.
    for (std::size_t i = 0; i < rc_interp.inputs.size(); ++i) {
      const std::uint64_t roll = rng.below(10);
      const BitVector v = roll == 0 ? BitVector::from_string("x")
                                    : BitVector::from_uint(1, roll & 1);
      interp.put(rc_interp.inputs[i], v);
      comp.put(rc_comp.inputs[i], v);
    }
    interp.propagate();
    comp.propagate();
    expect_all_nets_equal(rc_interp.hw, rc_comp.hw, "after settle");
  }
}

TEST_P(RandomCircuitTest, CompiledEvalCountNeverExceedsInterpreter) {
  // Event-driven settling only re-evaluates the fan-out cone of changed
  // nets, so its eval count is a lower bound of the interpreter's
  // full-graph walk - that asymmetry IS the optimization, and the values
  // still match (previous test). Equality is not required here by design.
  RandomCircuit rc_interp(GetParam(), 6, 40);
  RandomCircuit rc_comp(GetParam(), 6, 40);
  Simulator interp = make_sim(rc_interp.hw, SimMode::Interpreted);
  Simulator comp = make_sim(rc_comp.hw, SimMode::Compiled);
  Rng rng(GetParam() * 13 + 5);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint64_t bits = rng.next() & 0x3F;
    for (std::size_t i = 0; i < rc_interp.inputs.size(); ++i) {
      interp.put(rc_interp.inputs[i], (bits >> i) & 1);
      comp.put(rc_comp.inputs[i], (bits >> i) & 1);
    }
    interp.propagate();
    comp.propagate();
  }
  EXPECT_LE(comp.eval_count(), interp.eval_count());

  // A repeated identical stimulus is a no-op in BOTH engines (put only
  // dirties on change), so neither count moves.
  const std::size_t interp_before = interp.eval_count();
  const std::size_t comp_before = comp.eval_count();
  for (std::size_t i = 0; i < rc_interp.inputs.size(); ++i) {
    const BitVector v = interp.get(rc_interp.inputs[i]);
    interp.put(rc_interp.inputs[i], v);
    comp.put(rc_comp.inputs[i], v);
  }
  interp.propagate();
  comp.propagate();
  EXPECT_EQ(interp.eval_count(), interp_before);
  EXPECT_EQ(comp.eval_count(), comp_before);
}

/// A cross-coupled NOR latch plus the random DAG: the combinational cycle
/// forces both engines onto their fixpoint path, where eval counts must
/// match EXACTLY (the compiled kernel mirrors the interpreter's
/// every-op-per-pass iteration, order included).
struct LatchedCircuit {
  HWSystem hw;
  Wire* set;
  Wire* reset;
  Wire* q;
  Wire* qn;

  LatchedCircuit() {
    set = new Wire(&hw, 1, "set");
    reset = new Wire(&hw, 1, "reset");
    q = new Wire(&hw, 1, "q");
    qn = new Wire(&hw, 1, "qn");
    new tech::Nor2(&hw, reset, qn, q);
    new tech::Nor2(&hw, set, q, qn);
  }
};

TEST(CombCycleParityTest, FixpointMatchesInterpreterExactly) {
  LatchedCircuit a;
  LatchedCircuit b;
  Simulator interp = make_sim(a.hw, SimMode::Interpreted);
  Simulator comp = make_sim(b.hw, SimMode::Compiled);
  ASSERT_TRUE(interp.has_comb_cycle());
  ASSERT_TRUE(comp.has_comb_cycle());

  // Walk the latch through set / hold / reset / hold and compare every
  // net and the exact eval counts at each step.
  const std::uint64_t seq[][2] = {{1, 0}, {0, 0}, {0, 1}, {0, 0}, {1, 0}};
  for (const auto& sr : seq) {
    interp.put(a.set, sr[0]);
    interp.put(a.reset, sr[1]);
    comp.put(b.set, sr[0]);
    comp.put(b.reset, sr[1]);
    interp.propagate();
    comp.propagate();
    expect_all_nets_equal(a.hw, b.hw, "latch");
    EXPECT_EQ(comp.eval_count(), interp.eval_count());
  }
  EXPECT_EQ(interp.get(a.q).to_uint(), 1u);
  EXPECT_EQ(comp.get(b.q).to_uint(), 1u);
}

TEST(CombCycleParityTest, OscillationThrowsInBothModes) {
  // An undriven inverter ring settles at the X fixpoint (Not(X) = X), so
  // binary values must be forced into the loop first: with force=1 the OR
  // pins the ring at (1, 0); dropping force to 0 turns it into a pure
  // inverting ring holding binary values, which can never converge.
  for (const SimMode mode : {SimMode::Interpreted, SimMode::Compiled}) {
    HWSystem hw;
    Wire* force = new Wire(&hw, 1, "force");
    Wire* loop = new Wire(&hw, 1, "loop");
    Wire* fed = new Wire(&hw, 1, "fed");
    new tech::Inv(&hw, loop, fed);
    new tech::Or2(&hw, force, fed, loop);
    Simulator sim = make_sim(hw, mode);
    sim.put(force, 1);
    sim.propagate();
    EXPECT_EQ(sim.get(loop).to_uint(), 1u);
    EXPECT_EQ(sim.get(fed).to_uint(), 0u);
    sim.put(force, 0);
    EXPECT_THROW(sim.propagate(), SimError);
  }
}

}  // namespace
}  // namespace jhdl
