// Property tests over randomly generated circuits: the simulator must
// agree with an independent software evaluation of the same gate DAG,
// the JSON netlist must round-trip, and obfuscation must preserve
// behaviour - for hundreds of random structures, not just the
// hand-written ones.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <vector>

#include "core/protect.h"
#include "hdl/hwsystem.h"
#include "hdl/visitor.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "tech/virtex.h"
#include "util/rng.h"

namespace jhdl {
namespace {

/// A random combinational DAG over the gate library, with a parallel
/// software model for reference evaluation.
struct RandomCircuit {
  HWSystem hw;
  std::vector<Wire*> inputs;
  std::vector<Wire*> outputs;
  // Software model: per node, gate kind and operand indices. Nodes 0..n-1
  // are the primary inputs.
  struct SoftNode {
    int kind;  // 0 and2, 1 or2, 2 xor2, 3 inv, 4 mux2
    std::size_t a, b, c;
  };
  std::vector<SoftNode> nodes;
  std::size_t num_inputs;

  RandomCircuit(std::uint64_t seed, std::size_t n_inputs, std::size_t n_gates)
      : num_inputs(n_inputs) {
    Rng rng(seed);
    std::vector<Wire*> values;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      Wire* w = new Wire(&hw, 1, "in" + std::to_string(i));
      inputs.push_back(w);
      values.push_back(w);
      nodes.push_back({-1, 0, 0, 0});
    }
    for (std::size_t g = 0; g < n_gates; ++g) {
      int kind = static_cast<int>(rng.below(5));
      std::size_t a = rng.below(values.size());
      std::size_t b = rng.below(values.size());
      std::size_t c = rng.below(values.size());
      Wire* out = new Wire(&hw, 1, "g" + std::to_string(g));
      switch (kind) {
        case 0:
          new tech::And2(&hw, values[a], values[b], out);
          break;
        case 1:
          new tech::Or2(&hw, values[a], values[b], out);
          break;
        case 2:
          new tech::Xor2(&hw, values[a], values[b], out);
          break;
        case 3:
          new tech::Inv(&hw, values[a], out);
          break;
        default:
          new tech::Mux2(&hw, values[a], values[b], values[c], out);
          break;
      }
      nodes.push_back({kind, a, b, c});
      values.push_back(out);
    }
    // The last few nodes are observed outputs.
    for (std::size_t i = values.size() - std::min<std::size_t>(8, n_gates);
         i < values.size(); ++i) {
      outputs.push_back(values[i]);
    }
  }

  /// Software reference evaluation for one input assignment.
  std::vector<bool> reference(std::uint64_t input_bits) const {
    std::vector<bool> value(nodes.size());
    for (std::size_t i = 0; i < num_inputs; ++i) {
      value[i] = ((input_bits >> i) & 1) != 0;
    }
    for (std::size_t i = num_inputs; i < nodes.size(); ++i) {
      const SoftNode& n = nodes[i];
      switch (n.kind) {
        case 0:
          value[i] = value[n.a] && value[n.b];
          break;
        case 1:
          value[i] = value[n.a] || value[n.b];
          break;
        case 2:
          value[i] = value[n.a] != value[n.b];
          break;
        case 3:
          value[i] = !value[n.a];
          break;
        default:
          value[i] = value[n.c] ? value[n.b] : value[n.a];
          break;
      }
    }
    std::vector<bool> out;
    for (std::size_t i = nodes.size() - outputs.size(); i < nodes.size();
         ++i) {
      out.push_back(value[i]);
    }
    return out;
  }
};

class RandomCircuitTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitTest, SimulatorMatchesSoftwareModel) {
  RandomCircuit rc(GetParam(), 6, 40);
  Simulator sim(rc.hw);
  Rng rng(GetParam() * 31 + 1);
  for (int iter = 0; iter < 100; ++iter) {
    std::uint64_t bits = rng.next() & 0x3F;
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      sim.put(rc.inputs[i], (bits >> i) & 1);
    }
    std::vector<bool> want = rc.reference(bits);
    for (std::size_t i = 0; i < rc.outputs.size(); ++i) {
      EXPECT_EQ(sim.get(rc.outputs[i]).to_uint(), want[i] ? 1u : 0u)
          << "seed=" << GetParam() << " iter=" << iter << " out=" << i;
    }
  }
}

TEST_P(RandomCircuitTest, JsonNetlistRoundTrips) {
  RandomCircuit rc(GetParam(), 5, 25);
  std::string text = netlist::write_json(rc.hw, {.flatten = true});
  netlist::JsonNetlist doc = netlist::read_json(text);
  const netlist::JsonDef* top = doc.find_def(doc.top);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->instances.size(), collect_primitives(rc.hw).size());
  // Reserialize and reparse: stable fixpoint.
  netlist::JsonNetlist doc2 = netlist::read_json(text);
  EXPECT_EQ(doc2.definitions.size(), doc.definitions.size());
}

TEST_P(RandomCircuitTest, ObfuscationPreservesBehaviour) {
  RandomCircuit rc(GetParam(), 6, 30);
  Simulator sim(rc.hw);
  Rng rng(GetParam() + 7);
  std::vector<std::uint64_t> stimuli;
  std::vector<std::vector<std::uint64_t>> before;
  for (int iter = 0; iter < 20; ++iter) {
    std::uint64_t bits = rng.next() & 0x3F;
    stimuli.push_back(bits);
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      sim.put(rc.inputs[i], (bits >> i) & 1);
    }
    std::vector<std::uint64_t> outs;
    for (Wire* o : rc.outputs) outs.push_back(sim.get(o).to_uint());
    before.push_back(std::move(outs));
  }
  core::obfuscate(rc.hw, GetParam());
  for (std::size_t t = 0; t < stimuli.size(); ++t) {
    for (std::size_t i = 0; i < rc.inputs.size(); ++i) {
      sim.put(rc.inputs[i], (stimuli[t] >> i) & 1);
    }
    for (std::size_t i = 0; i < rc.outputs.size(); ++i) {
      EXPECT_EQ(sim.get(rc.outputs[i]).to_uint(), before[t][i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

}  // namespace
}  // namespace jhdl
