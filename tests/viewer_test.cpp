// Tests for the viewer module: hierarchy tree, text/SVG schematics,
// layout views, and ASCII waveforms.
#include <gtest/gtest.h>

#include "hdl/hwsystem.h"
#include "modgen/modgen.h"
#include "sim/simulator.h"
#include "sim/waveform.h"
#include "tech/virtex.h"
#include "viewer/hierarchy.h"
#include "viewer/layout_view.h"
#include "viewer/schematic.h"
#include "viewer/waveview.h"

namespace jhdl {
namespace {

struct KcmFixture {
  HWSystem hw;
  modgen::VirtexKCMMultiplier* kcm;
  Wire* m;
  Wire* p;
  KcmFixture() {
    m = new Wire(&hw, 8, "m");
    p = new Wire(&hw, 12, "p");
    kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, true, false, -56);
  }
};

TEST(HierarchyViewTest, TreeShowsStructure) {
  KcmFixture f;
  std::string tree = viewer::hierarchy_tree(*f.kcm);
  EXPECT_NE(tree.find("kcm_8x7"), std::string::npos);
  EXPECT_NE(tree.find("rom16"), std::string::npos);
  EXPECT_NE(tree.find("add"), std::string::npos);
  EXPECT_NE(tree.find("LUT"), std::string::npos);  // resource annotations
  // Indentation marks depth.
  EXPECT_NE(tree.find("\n  "), std::string::npos);
}

TEST(HierarchyViewTest, DepthLimit) {
  KcmFixture f;
  std::string shallow = viewer::hierarchy_tree(*f.kcm, 0);
  EXPECT_EQ(std::count(shallow.begin(), shallow.end(), '\n'), 1);
  std::string one = viewer::hierarchy_tree(*f.kcm, 1);
  EXPECT_GT(std::count(one.begin(), one.end(), '\n'), 2);
}

TEST(HierarchyViewTest, InterfaceSummary) {
  KcmFixture f;
  std::string iface = viewer::interface_summary(*f.kcm);
  EXPECT_NE(iface.find("in multiplicand [8 bits]"), std::string::npos);
  EXPECT_NE(iface.find("out product [12 bits]"), std::string::npos);
}

TEST(SchematicTest, TextListsInstancesLevelized) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* t = new Wire(&hw, 1, "t");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::And2(&hw, a, b, t);
  new tech::Inv(&hw, t, o);
  std::string sch = viewer::text_schematic(hw);
  EXPECT_NE(sch.find("2 instances"), std::string::npos);
  EXPECT_NE(sch.find("column 0"), std::string::npos);
  EXPECT_NE(sch.find("column 1"), std::string::npos);
  // The inverter reads the AND's output, so it sits one column right.
  std::size_t and_pos = sch.find("and2");
  std::size_t inv_pos = sch.find("inv");
  EXPECT_LT(and_pos, inv_pos);
}

TEST(SchematicTest, SvgWellFormed) {
  KcmFixture f;
  std::string svg = viewer::svg_schematic(*f.kcm);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  // Every instance gets a box.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, f.kcm->children().size());
}

TEST(LayoutViewTest, TextGrid) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 8, "a");
  Wire* b = new Wire(&hw, 8, "b");
  Wire* s = new Wire(&hw, 8, "s");
  new modgen::CarryChainAdder(&hw, a, b, s);
  std::string text = viewer::text_layout(hw);
  EXPECT_NE(text.find("1x4 slices"), std::string::npos);
  // Each slice holds the LUT+XORCY(+MUXCY) of two bits.
  EXPECT_NE(text.find("|"), std::string::npos);
}

TEST(LayoutViewTest, UnplacedHandled) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::Inv(&hw, a, o);
  EXPECT_NE(viewer::text_layout(hw).find("unplaced"), std::string::npos);
  EXPECT_NE(viewer::svg_layout(hw).find("unplaced"), std::string::npos);
}

TEST(LayoutViewTest, SvgGrid) {
  KcmFixture f;
  std::string svg = viewer::svg_layout(*f.kcm);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
}

TEST(WaveViewTest, SingleBitRails) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::FD(&hw, d, q);
  Simulator sim(hw);
  WaveformRecorder rec(sim);
  rec.watch(q, "q");
  sim.put(d, 1);
  sim.cycle(2);
  sim.put(d, 0);
  sim.cycle(2);
  std::string waves = viewer::text_waves(rec);
  // q: one cycle delay -> 1 1 0 0 pattern --__ after the first cycle.
  EXPECT_NE(waves.find("q"), std::string::npos);
  EXPECT_NE(waves.find("--"), std::string::npos);
  EXPECT_NE(waves.find("_"), std::string::npos);
}

TEST(WaveViewTest, MultiBitValues) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 8, "count");
  new modgen::Counter(&hw, q);
  Simulator sim(hw);
  WaveformRecorder rec(sim);
  rec.watch(q, "count");
  sim.cycle(5);
  std::string waves = viewer::text_waves(rec);
  EXPECT_NE(waves.find("|1"), std::string::npos);
  EXPECT_NE(waves.find("|5"), std::string::npos);
}

TEST(WaveViewTest, WindowSelection) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 4, "q");
  new modgen::Counter(&hw, q);
  Simulator sim(hw);
  WaveformRecorder rec(sim);
  rec.watch(q, "q");
  sim.cycle(10);
  std::string tail = viewer::text_waves(rec, 8, 2);
  EXPECT_NE(tail.find("|9"), std::string::npos);
  EXPECT_EQ(tail.find("|3"), std::string::npos);
  EXPECT_EQ(viewer::text_waves(rec, 20, 5), "(no samples)\n");
}

}  // namespace
}  // namespace jhdl
