// The IP artifact pipeline: canonical param hashing, the
// content-addressed single-flight store, pin-aware LRU eviction, and the
// tentpole guarantee that every consumer (netlister, estimator, viewer,
// simulator) reads byte-identical views from one elaboration.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/artifact.h"
#include "core/artifact_store.h"
#include "core/blackbox.h"
#include "core/catalog.h"
#include "core/generators.h"
#include "core/packaging.h"
#include "sim/simulator.h"

namespace jhdl::core {
namespace {

ParamMap kcm_params() {
  return ParamMap()
      .set("input_width", std::int64_t{8})
      .set("constant", std::int64_t{-56})
      .set("signed_mode", true);
}

/// Counts elaborations so tests can assert "exactly one build".
class CountingKcm final : public ModuleGenerator {
 public:
  std::string name() const override { return "kcm-multiplier"; }
  std::string description() const override { return inner_.description(); }
  std::vector<ParamSpec> params() const override { return inner_.params(); }
  BuildResult build(const ParamMap& params) const override {
    builds.fetch_add(1, std::memory_order_relaxed);
    return inner_.build(params);
  }
  mutable std::atomic<int> builds{0};

 private:
  KcmGenerator inner_;
};

/// Always throws: exercises the store's failed-build path.
class ExplodingGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "exploder"; }
  std::string description() const override { return "always fails"; }
  std::vector<ParamSpec> params() const override { return {}; }
  BuildResult build(const ParamMap&) const override {
    throw std::runtime_error("boom");
  }
};

// --- satellite 1: cache-key aliasing -------------------------------------

TEST(ParamHashTest, ExplicitDefaultsHashLikeOmittedOnes) {
  KcmGenerator gen;
  // The kcm-multiplier regression: product_width and pipelined_mode left
  // to their defaults...
  ParamMap implicit_form = kcm_params();
  // ...must address the same artifact as spelling every default out, in
  // a scrambled insertion order.
  ParamMap explicit_form = ParamMap()
                               .set("pipelined_mode", false)
                               .set("signed_mode", true)
                               .set("product_width", std::int64_t{0})
                               .set("constant", std::int64_t{-56})
                               .set("input_width", std::int64_t{8});
  EXPECT_NE(implicit_form.content_hash(), explicit_form.content_hash())
      << "raw assignments differ - only resolved() maps are canonical";
  EXPECT_EQ(implicit_form.resolved(gen.params()).content_hash(),
            explicit_form.resolved(gen.params()).content_hash());
}

TEST(ParamHashTest, DistinctConfigurationsHashDifferently) {
  KcmGenerator gen;
  ParamMap a = kcm_params().resolved(gen.params());
  ParamMap b = kcm_params().set("constant", std::int64_t{57}).resolved(
      gen.params());
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(ArtifactStoreTest, AliasedSpellingsShareOneArtifact) {
  auto gen = std::make_shared<CountingKcm>();
  ArtifactStore store;
  auto a = store.get_or_build(gen, kcm_params());
  auto b = store.get_or_build(gen, ParamMap()
                                       .set("pipelined_mode", false)
                                       .set("signed_mode", true)
                                       .set("product_width", std::int64_t{0})
                                       .set("constant", std::int64_t{-56})
                                       .set("input_width", std::int64_t{8}));
  EXPECT_EQ(a.get(), b.get()) << "aliased params must hit the same entry";
  EXPECT_EQ(gen->builds.load(), 1);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
}

// --- single-flight --------------------------------------------------------

TEST(ArtifactStoreTest, ConcurrentMissesElaborateExactlyOnce) {
  auto gen = std::make_shared<CountingKcm>();
  ArtifactStore store;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const IpArtifact>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { got[i] = store.get_or_build(gen, kcm_params()); });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(gen->builds.load(), 1) << "single-flight: one build per key";
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[0].get(), got[i].get());
  ArtifactStore::Stats s = store.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.coalesced, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ArtifactStoreTest, FailedBuildPropagatesAndLeavesNoEntry) {
  auto gen = std::make_shared<ExplodingGenerator>();
  ArtifactStore store;
  EXPECT_THROW(store.get_or_build(gen, ParamMap()), std::runtime_error);
  EXPECT_EQ(store.size(), 0u);
  // The key is not poisoned: the next call builds again (and fails again).
  EXPECT_THROW(store.get_or_build(gen, ParamMap()), std::runtime_error);
  EXPECT_EQ(store.stats().misses, 2u);
}

// --- satellite 2 (store side): pinning vs LRU eviction --------------------

TEST(ArtifactStoreTest, EvictionSkipsPinnedEntries) {
  auto gen = std::make_shared<CountingKcm>();
  // A budget of one byte forces an eviction attempt on every insert.
  ArtifactStore store(ArtifactStore::Config{1});

  auto pinned = store.get_or_build(gen, kcm_params());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_GE(store.stats().pinned_skips, 1u)
      << "over budget with a live holder: the store must skip, not evict";

  // A second configuration while the first is still pinned: only the
  // unpinned newcomer is evictable.
  auto second =
      store.get_or_build(gen, kcm_params().set("constant", std::int64_t{9}));
  std::uint64_t hash2 = second->param_hash();
  second.reset();
  auto third =
      store.get_or_build(gen, kcm_params().set("constant", std::int64_t{5}));
  EXPECT_EQ(store.lookup("kcm-multiplier", hash2), nullptr)
      << "unpinned LRU entry should have been evicted";
  EXPECT_NE(store.lookup("kcm-multiplier", pinned->param_hash()), nullptr)
      << "pinned entry must survive every eviction pass";
  EXPECT_GE(store.stats().evictions, 1u);

  // Dropping the pin makes it ordinary LRU prey.
  std::uint64_t hash1 = pinned->param_hash();
  pinned.reset();
  third.reset();
  store.get_or_build(gen, kcm_params().set("constant", std::int64_t{3}));
  EXPECT_EQ(store.lookup("kcm-multiplier", hash1), nullptr);
}

TEST(ArtifactStoreTest, ClearKeepsPinnedEntries) {
  auto gen = std::make_shared<CountingKcm>();
  ArtifactStore store;
  auto pinned = store.get_or_build(gen, kcm_params());
  store.get_or_build(gen, kcm_params().set("constant", std::int64_t{3}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.clear(), 1u);
  EXPECT_NE(store.lookup("kcm-multiplier", pinned->param_hash()), nullptr);
}

// --- satellite 3: cross-consumer determinism ------------------------------

TEST(ArtifactTest, CacheHitViewsAreByteIdenticalToColdBuild) {
  auto gen = std::make_shared<KcmGenerator>();
  ParamMap resolved = kcm_params().resolved(gen->params());

  // Cold reference: a private artifact, never shared.
  IpArtifact cold(gen, resolved);

  ArtifactStore store;
  store.get_or_build(gen, kcm_params());
  auto warm = store.get_or_build(gen, kcm_params());  // the cache hit
  ASSERT_NE(warm, nullptr);

  for (NetlistFormat fmt : {NetlistFormat::Edif, NetlistFormat::Vhdl,
                            NetlistFormat::Verilog, NetlistFormat::Json}) {
    EXPECT_EQ(cold.netlist_text(fmt), warm->netlist_text(fmt))
        << "format " << static_cast<int>(fmt);
  }
  EXPECT_EQ(cold.area().luts, warm->area().luts);
  EXPECT_EQ(cold.area().slices, warm->area().slices);
  EXPECT_DOUBLE_EQ(cold.timing().comb_delay_ns, warm->timing().comb_delay_ns);
  EXPECT_EQ(cold.hierarchy_text(), warm->hierarchy_text());
  EXPECT_EQ(cold.schematic_text(), warm->schematic_text());
  EXPECT_EQ(cold.interface_text(), warm->interface_text());
}

TEST(ArtifactTest, EightThreadHammerSeesOneSnapshot) {
  auto gen = std::make_shared<KcmGenerator>();
  IpArtifact cold(gen, kcm_params().resolved(gen->params()));
  const std::string ref_edif = cold.netlist_text(NetlistFormat::Edif);
  const std::string ref_json = cold.netlist_text(NetlistFormat::Json);
  const std::size_t ref_luts = cold.area().luts;

  ArtifactStore store;
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // All threads race get_or_build AND the lazy stage computation.
      auto art = store.get_or_build(gen, kcm_params());
      if (art->netlist_text(NetlistFormat::Edif) != ref_edif ||
          art->netlist_text(NetlistFormat::Json) != ref_json ||
          art->area().luts != ref_luts ||
          art->hierarchy_text() != cold.hierarchy_text()) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      (void)i;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- instantiate: private state, shared program ---------------------------

TEST(ArtifactTest, InstancesShareTheProgramButNotValueState) {
  auto gen = std::make_shared<KcmGenerator>();
  ArtifactStore store;
  auto art = store.get_or_build(gen, kcm_params());

  auto m1 = art->instantiate();
  auto m2 = art->instantiate();
  if (default_sim_mode() == SimMode::Compiled) {
    EXPECT_EQ(m1->compiled_program().get(), art->program().get())
        << "instances must bind the artifact's program, not recompile";
    EXPECT_EQ(m2->compiled_program().get(), art->program().get());
  }

  // Distinct value state: driving one model must not leak into the other.
  m1->set_input("multiplicand", 100);
  m2->set_input("multiplicand", 3);
  m1->cycle(art->latency() + 1);
  m2->cycle(art->latency() + 1);
  EXPECT_EQ(m1->get_output("product").to_int(), -5600);
  EXPECT_EQ(m2->get_output("product").to_int(), -168);
}

// --- packaging reads the same snapshot ------------------------------------

TEST(ArtifactTest, DeliveryBundleMatchesArtifactViews) {
  auto gen = std::make_shared<KcmGenerator>();
  ArtifactStore store;
  auto art = store.get_or_build(gen, kcm_params());
  Archive bundle = Packager::artifact_bundle(*art);
  EXPECT_EQ(bundle.name(), "kcm-multiplier-delivery");
  bool saw_edif = false;
  for (const auto& entry : bundle.entries()) {
    if (entry.name == "netlist.edif") {
      std::string text(entry.data.begin(), entry.data.end());
      EXPECT_EQ(text, art->netlist_text(NetlistFormat::Edif));
      saw_edif = true;
    }
  }
  EXPECT_TRUE(saw_edif);
}

// --- corpus-scale key diversity -------------------------------------

/// The corpus sweep's working set: dozens of distinct (module, params)
/// keys from four generators churned through a store whose byte budget
/// cannot hold even one of them. Every unpinned entry must be LRU prey
/// the moment its holder lets go; the pinned sessions (one per module)
/// must ride out the whole storm and still answer as hits afterwards.
TEST(ArtifactStoreTest, CorpusKeyDiversityStormKeepsPinnedSessions) {
  const IpCatalog catalog = standard_catalog();
  auto hash_pipe = catalog.find("hash-pipe");
  auto rf_alu = catalog.find("rf-alu");
  auto cordic = catalog.find("cordic-rotator");
  auto systolic = catalog.find("systolic-array");
  ASSERT_NE(hash_pipe, nullptr);
  ASSERT_NE(rf_alu, nullptr);
  ASSERT_NE(cordic, nullptr);
  ASSERT_NE(systolic, nullptr);

  ArtifactStore store(ArtifactStore::Config{1});  // nothing unpinned survives

  // One long-lived session per module stays pinned through the storm.
  std::vector<std::shared_ptr<const IpArtifact>> pinned;
  pinned.push_back(store.get_or_build(
      hash_pipe, ParamMap().set("data_width", std::int64_t{8})));
  pinned.push_back(store.get_or_build(
      rf_alu, ParamMap().set("regs", std::int64_t{2}).set("width",
                                                          std::int64_t{2})));
  pinned.push_back(store.get_or_build(
      cordic, ParamMap().set("width", std::int64_t{8})
                  .set("stages", std::int64_t{1})
                  .set("pipelined", false)));
  pinned.push_back(store.get_or_build(
      systolic, ParamMap().set("rows", std::int64_t{1})
                    .set("cols", std::int64_t{1})
                    .set("data_width", std::int64_t{2})
                    .set("guard_bits", std::int64_t{0})));
  const std::size_t pinned_n = pinned.size();

  // The storm: every key distinct, every holder dropped immediately.
  std::size_t storm_keys = 0;
  auto churn = [&store, &storm_keys](
                   const std::shared_ptr<const ModuleGenerator>& gen,
                   const ParamMap& params) {
    (void)store.get_or_build(gen, params);
    ++storm_keys;
  };
  for (std::int64_t k = 1; k <= 12; ++k) {
    churn(hash_pipe, ParamMap().set("data_width", k).set(
                         "poly", std::int64_t{0x82F63B78}));
  }
  for (std::int64_t regs = 3; regs <= 6; ++regs) {
    for (std::int64_t width : {3, 5}) {
      churn(rf_alu, ParamMap().set("regs", regs).set("width", width));
    }
  }
  for (std::int64_t width = 11; width <= 13; ++width) {
    for (std::int64_t stages = 1; stages <= 2; ++stages) {
      churn(cordic, ParamMap().set("width", width).set("stages", stages).set(
                        "pipelined", stages == 2));
    }
  }
  for (std::int64_t rows = 1; rows <= 2; ++rows) {
    for (std::int64_t cols = 1; cols <= 2; ++cols) {
      churn(systolic, ParamMap()
                          .set("rows", rows)
                          .set("cols", cols)
                          .set("data_width", std::int64_t{2})
                          .set("guard_bits", std::int64_t{1}));
    }
  }

  // Only the pinned sessions remain, plus the newest storm entry: during
  // its own insert it is pinned by the shared_ptr being returned, and no
  // later insert came along to evict it.
  EXPECT_EQ(store.size(), pinned_n + 1);
  ArtifactStore::Stats stats = store.stats();
  EXPECT_EQ(stats.misses, pinned_n + storm_keys);
  EXPECT_GE(stats.evictions, storm_keys - 1);
  EXPECT_GE(stats.pinned_skips, 1u);
  for (const auto& session : pinned) {
    EXPECT_NE(
        store.lookup(session->generator()->name(), session->param_hash()),
        nullptr)
        << session->generator()->name();
  }

  // Pinned keys answer warm; a storm key must rebuild.
  for (std::size_t i = 0; i < pinned_n; ++i) {
    bool hit = false;
    auto again = store.get_or_build(
        i == 0 ? hash_pipe : i == 1 ? rf_alu : i == 2 ? cordic : systolic,
        pinned[i]->params(), &hit);
    EXPECT_TRUE(hit) << i;
    EXPECT_EQ(again.get(), pinned[i].get()) << i;
  }
  bool storm_hit = true;
  (void)store.get_or_build(
      hash_pipe,
      ParamMap().set("data_width", std::int64_t{1}).set(
          "poly", std::int64_t{0x82F63B78}),
      &storm_hit);
  EXPECT_FALSE(storm_hit) << "evicted storm key must elaborate again";

  // Dropping the pins turns the survivors into ordinary LRU prey.
  pinned.clear();
  (void)store.get_or_build(hash_pipe,
                           ParamMap().set("data_width", std::int64_t{32}));
  EXPECT_LE(store.size(), 1u);
}

}  // namespace
}  // namespace jhdl::core
