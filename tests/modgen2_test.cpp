// Tests for the extended module generators: MAC, barrel shifter, LFSR,
// priority encoder, one-hot decoder, Gray code converters/counter,
// Hamming(7,4) ECC, and SRL16-mapped shift registers.
#include <gtest/gtest.h>

#include <set>

#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "estimate/area.h"
#include "modgen/modgen.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace jhdl {
namespace {

using namespace jhdl::modgen;

// ------------------------------------------------------------------- MAC

TEST(MacTest, AccumulatesProducts) {
  HWSystem hw;
  Wire* x = new Wire(&hw, 8, "x");
  const std::size_t aw = MacUnit::acc_width(8, -3);
  Wire* acc = new Wire(&hw, aw, "acc");
  Wire* clr = new Wire(&hw, 1, "clr");
  new MacUnit(&hw, x, acc, clr, -3);
  Simulator sim(hw);
  sim.put(clr, 0);
  std::int64_t expected = 0;
  Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    std::int64_t xt = rng.range(-128, 127);
    sim.put_signed(x, xt);
    sim.cycle();
    expected += -3 * xt;
    EXPECT_EQ(sim.get(acc).to_int(), expected) << "t=" << t;
  }
  // Synchronous clear.
  sim.put(clr, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(acc).to_int(), 0);
}

TEST(MacTest, AccWidthValidation) {
  HWSystem hw;
  Wire* x = new Wire(&hw, 8, "x");
  Wire* acc = new Wire(&hw, 4, "acc");
  Wire* clr = new Wire(&hw, 1, "clr");
  EXPECT_THROW(new MacUnit(&hw, x, acc, clr, 5), HdlError);
}

// --------------------------------------------------------- barrel shifter

class ShifterTest : public ::testing::TestWithParam<bool> {};

TEST_P(ShifterTest, MatchesReference) {
  const bool left = GetParam();
  HWSystem hw;
  Wire* in = new Wire(&hw, 16, "in");
  Wire* amount = new Wire(&hw, 5, "amt");
  Wire* out = new Wire(&hw, 16, "out");
  new BarrelShifter(&hw, in, amount, out,
                    left ? BarrelShifter::Direction::Left
                         : BarrelShifter::Direction::RightLogical);
  Simulator sim(hw);
  Rng rng(left ? 1 : 2);
  for (int iter = 0; iter < 300; ++iter) {
    std::uint64_t v = rng.next() & 0xFFFF;
    std::uint64_t amt = rng.below(32);
    sim.put(in, v);
    sim.put(amount, amt);
    std::uint64_t want =
        amt >= 16 ? 0 : (left ? (v << amt) & 0xFFFF : v >> amt);
    EXPECT_EQ(sim.get(out).to_uint(), want)
        << "v=" << v << " amt=" << amt << " left=" << left;
  }
}

INSTANTIATE_TEST_SUITE_P(Directions, ShifterTest, ::testing::Bool());

// ------------------------------------------------------------------ LFSR

TEST(LfsrTest, FollowsReferenceSequence) {
  const std::vector<std::size_t> taps = {7, 5, 4, 3};  // maximal for w=8
  HWSystem hw;
  Wire* q = new Wire(&hw, 8, "q");
  new Lfsr(&hw, q, taps, 0xA5);
  Simulator sim(hw);
  std::uint64_t state = 0xA5;
  EXPECT_EQ(sim.get(q).to_uint(), state);
  for (int t = 0; t < 200; ++t) {
    sim.cycle();
    state = Lfsr::next_state(state, 8, taps);
    EXPECT_EQ(sim.get(q).to_uint(), state) << "t=" << t;
  }
}

TEST(LfsrTest, MaximalLengthPeriod) {
  const std::vector<std::size_t> taps = {7, 5, 4, 3};
  HWSystem hw;
  Wire* q = new Wire(&hw, 8, "q");
  new Lfsr(&hw, q, taps, 1);
  Simulator sim(hw);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < 255; ++t) {
    EXPECT_TRUE(seen.insert(sim.get(q).to_uint()).second)
        << "state repeated early at t=" << t;
    sim.cycle();
  }
  EXPECT_EQ(sim.get(q).to_uint(), 1u) << "period must be 2^8-1";
}

TEST(LfsrTest, Validation) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 8, "q");
  EXPECT_THROW(new Lfsr(&hw, q, {}, 1), HdlError);
  Wire* q2 = new Wire(&hw, 8, "q2");
  EXPECT_THROW(new Lfsr(&hw, q2, {9}, 1), HdlError);
  Wire* q3 = new Wire(&hw, 8, "q3");
  EXPECT_THROW(new Lfsr(&hw, q3, {7}, 0), HdlError);
}

// -------------------------------------------------------------- encoders

TEST(PriorityEncoderTest, Exhaustive8) {
  HWSystem hw;
  Wire* in = new Wire(&hw, 8, "in");
  Wire* idx = new Wire(&hw, 3, "idx");
  Wire* valid = new Wire(&hw, 1, "valid");
  new PriorityEncoder(&hw, in, idx, valid);
  Simulator sim(hw);
  for (std::uint64_t v = 0; v < 256; ++v) {
    sim.put(in, v);
    if (v == 0) {
      EXPECT_EQ(sim.get(valid).to_uint(), 0u);
    } else {
      std::uint64_t top = 63 - static_cast<std::uint64_t>(__builtin_clzll(v));
      EXPECT_EQ(sim.get(valid).to_uint(), 1u);
      EXPECT_EQ(sim.get(idx).to_uint(), top) << "v=" << v;
    }
  }
}

TEST(OneHotDecoderTest, Exhaustive4to16) {
  HWSystem hw;
  Wire* in = new Wire(&hw, 4, "in");
  Wire* out = new Wire(&hw, 16, "out");
  Wire* en = new Wire(&hw, 1, "en");
  new OneHotDecoder(&hw, in, out, en);
  Simulator sim(hw);
  sim.put(en, 1);
  for (std::uint64_t v = 0; v < 16; ++v) {
    sim.put(in, v);
    EXPECT_EQ(sim.get(out).to_uint(), std::uint64_t{1} << v);
  }
  sim.put(en, 0);
  EXPECT_EQ(sim.get(out).to_uint(), 0u);
}

TEST(GrayTest, ConversionRoundTrip) {
  HWSystem hw;
  Wire* b = new Wire(&hw, 6, "b");
  Wire* g = new Wire(&hw, 6, "g");
  Wire* b2 = new Wire(&hw, 6, "b2");
  new BinaryToGray(&hw, b, g);
  new GrayToBinary(&hw, g, b2);
  Simulator sim(hw);
  for (std::uint64_t v = 0; v < 64; ++v) {
    sim.put(b, v);
    EXPECT_EQ(sim.get(g).to_uint(), v ^ (v >> 1));
    EXPECT_EQ(sim.get(b2).to_uint(), v) << "round trip";
  }
}

TEST(GrayCounterTest, OneBitChangesPerStep) {
  HWSystem hw;
  Wire* q = new Wire(&hw, 5, "q");
  new GrayCounter(&hw, q);
  Simulator sim(hw);
  std::uint64_t prev = sim.get(q).to_uint();
  for (int t = 0; t < 64; ++t) {
    sim.cycle();
    std::uint64_t cur = sim.get(q).to_uint();
    EXPECT_EQ(__builtin_popcountll(prev ^ cur), 1) << "t=" << t;
    prev = cur;
  }
}

// ----------------------------------------------------------------- ECC

TEST(HammingTest, SoftwareReferenceProperties) {
  for (std::uint32_t d = 0; d < 16; ++d) {
    bool corrected = true;
    std::uint32_t code = HammingEncoder::encode(d);
    EXPECT_EQ(HammingDecoder::decode(code, &corrected), d);
    EXPECT_FALSE(corrected);
    // Every single-bit error is corrected.
    for (int bit = 0; bit < 7; ++bit) {
      std::uint32_t bad = code ^ (1u << bit);
      EXPECT_EQ(HammingDecoder::decode(bad, &corrected), d)
          << "d=" << d << " bit=" << bit;
      EXPECT_TRUE(corrected);
    }
  }
}

TEST(HammingTest, HardwareMatchesReference) {
  HWSystem hw;
  Wire* data = new Wire(&hw, 4, "data");
  Wire* code = new Wire(&hw, 7, "code");
  new HammingEncoder(&hw, data, code);

  Wire* rx = new Wire(&hw, 7, "rx");
  Wire* out = new Wire(&hw, 4, "out");
  Wire* corrected = new Wire(&hw, 1, "corrected");
  new HammingDecoder(&hw, rx, out, corrected);

  Simulator sim(hw);
  for (std::uint64_t d = 0; d < 16; ++d) {
    sim.put(data, d);
    std::uint64_t c = sim.get(code).to_uint();
    EXPECT_EQ(c, HammingEncoder::encode(static_cast<std::uint32_t>(d)));
    // Clean and every 1-bit-corrupted word through the decoder.
    for (int bit = -1; bit < 7; ++bit) {
      std::uint64_t word = bit < 0 ? c : (c ^ (1ull << bit));
      sim.put(rx, word);
      EXPECT_EQ(sim.get(out).to_uint(), d) << "d=" << d << " bit=" << bit;
      EXPECT_EQ(sim.get(corrected).to_uint(), bit < 0 ? 0u : 1u);
    }
  }
}

// ------------------------------------------------------ SRL16 shift style

TEST(Srl16StyleTest, MatchesFfStyle) {
  for (std::size_t depth : {1u, 7u, 16u, 17u, 35u}) {
    HWSystem hw;
    Wire* in = new Wire(&hw, 2, "in");
    Wire* out_ff = new Wire(&hw, 2, "out_ff");
    Wire* out_srl = new Wire(&hw, 2, "out_srl");
    new ShiftRegister(&hw, in, out_ff, depth, ShiftRegister::Style::FF);
    new ShiftRegister(&hw, in, out_srl, depth, ShiftRegister::Style::SRL16);
    Simulator sim(hw);
    Rng rng(depth);
    for (std::size_t t = 0; t < depth + 20; ++t) {
      sim.put(in, rng.next() & 3);
      sim.cycle();
      if (t >= depth) {
        EXPECT_EQ(sim.get(out_srl).to_uint(), sim.get(out_ff).to_uint())
            << "depth=" << depth << " t=" << t;
      }
    }
  }
}

TEST(Srl16StyleTest, Srl16UsesFewerResources) {
  HWSystem hw1, hw2;
  Wire* in1 = new Wire(&hw1, 8, "in");
  Wire* out1 = new Wire(&hw1, 8, "out");
  new ShiftRegister(&hw1, in1, out1, 16, ShiftRegister::Style::FF);
  Wire* in2 = new Wire(&hw2, 8, "in");
  Wire* out2 = new Wire(&hw2, 8, "out");
  new ShiftRegister(&hw2, in2, out2, 16, ShiftRegister::Style::SRL16);
  auto ff = estimate::estimate_area(hw1);
  auto srl = estimate::estimate_area(hw2);
  EXPECT_EQ(ff.ffs, 8u * 16u);
  EXPECT_EQ(srl.luts, 8u);  // one SRL16 per bit
  EXPECT_LT(srl.slices, ff.slices);
}

}  // namespace
}  // namespace jhdl
