// Unit tests for the cycle simulator: combinational settling, sequential
// two-phase clocking, X-propagation, waveforms, and VCD export.
#include <gtest/gtest.h>

#include <sstream>

#include "hdl/error.h"
#include "hdl/hwsystem.h"
#include "sim/simulator.h"
#include "sim/testbench.h"
#include "sim/vcd.h"
#include "sim/waveform.h"
#include "tech/virtex.h"

namespace jhdl {
namespace {

struct AdderBit {
  Wire* a;
  Wire* b;
  Wire* ci;
  Wire* s;
  Wire* co;
};

// Build the paper's full adder inline.
AdderBit make_full_adder(HWSystem& hw) {
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* ci = new Wire(&hw, 1, "ci");
  Wire* s = new Wire(&hw, 1, "s");
  Wire* co = new Wire(&hw, 1, "co");
  Wire* t1 = new Wire(&hw, 1);
  Wire* t2 = new Wire(&hw, 1);
  Wire* t3 = new Wire(&hw, 1);
  new tech::And2(&hw, a, b, t1);
  new tech::And2(&hw, a, ci, t2);
  new tech::And2(&hw, b, ci, t3);
  new tech::Or3(&hw, t1, t2, t3, co);
  new tech::Xor3(&hw, a, b, ci, s);
  return {a, b, ci, s, co};
}

TEST(SimulatorTest, FullAdderExhaustive) {
  HWSystem hw;
  AdderBit fa = make_full_adder(hw);
  Simulator sim(hw);
  for (unsigned v = 0; v < 8; ++v) {
    unsigned a = v & 1, b = (v >> 1) & 1, ci = (v >> 2) & 1;
    sim.put(fa.a, a);
    sim.put(fa.b, b);
    sim.put(fa.ci, ci);
    unsigned sum = a + b + ci;
    EXPECT_EQ(sim.get(fa.s).to_uint(), sum & 1) << "inputs " << v;
    EXPECT_EQ(sim.get(fa.co).to_uint(), sum >> 1) << "inputs " << v;
  }
}

TEST(SimulatorTest, UndrivenInputsReadX) {
  HWSystem hw;
  AdderBit fa = make_full_adder(hw);
  Simulator sim(hw);
  EXPECT_FALSE(sim.get(fa.s).is_fully_defined());
  // Driving only some inputs leaves the sum X but can define the carry:
  // a=0,b=0 forces co=0 regardless of ci.
  sim.put(fa.a, 0);
  sim.put(fa.b, 0);
  EXPECT_EQ(sim.get(fa.co).to_uint(), 0u);
  EXPECT_FALSE(sim.get(fa.s).is_fully_defined());
}

TEST(SimulatorTest, PutWidthMismatchThrows) {
  HWSystem hw;
  Wire* bus = new Wire(&hw, 8, "bus");
  Simulator sim(hw);
  EXPECT_THROW(sim.put(bus, BitVector::from_uint(4, 3)), HdlError);
}

TEST(SimulatorTest, PutOnDrivenNetThrows) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::Inv(&hw, a, o);
  Simulator sim(hw);
  EXPECT_THROW(sim.put(o, 1), HdlError);
}

TEST(SimulatorTest, FlipFlopBasics) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::FD(&hw, d, q);
  Simulator sim(hw);
  // Power-on value is 0 (Virtex GSR semantics).
  EXPECT_EQ(sim.get(q).to_uint(), 0u);
  sim.put(d, 1);
  EXPECT_EQ(sim.get(q).to_uint(), 0u);  // no edge yet
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
  sim.put(d, 0);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 0u);
}

TEST(SimulatorTest, ShiftRegisterOrderIndependence) {
  // q0 -> q1 -> q2 chain: two-phase clocking must shift exactly one stage
  // per cycle regardless of evaluation order.
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* q0 = new Wire(&hw, 1, "q0");
  Wire* q1 = new Wire(&hw, 1, "q1");
  Wire* q2 = new Wire(&hw, 1, "q2");
  new tech::FD(&hw, d, q0);
  new tech::FD(&hw, q0, q1);
  new tech::FD(&hw, q1, q2);
  Simulator sim(hw);
  sim.put(d, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(q0).to_uint(), 1u);
  EXPECT_EQ(sim.get(q1).to_uint(), 0u);
  EXPECT_EQ(sim.get(q2).to_uint(), 0u);
  sim.cycle();
  EXPECT_EQ(sim.get(q1).to_uint(), 1u);
  EXPECT_EQ(sim.get(q2).to_uint(), 0u);
  sim.cycle();
  EXPECT_EQ(sim.get(q2).to_uint(), 1u);
}

TEST(SimulatorTest, FdceEnableAndClear) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* ce = new Wire(&hw, 1, "ce");
  Wire* clr = new Wire(&hw, 1, "clr");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::FDCE(&hw, d, q, ce, clr);
  Simulator sim(hw);
  sim.put(d, 1);
  sim.put(ce, 0);
  sim.put(clr, 0);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 0u) << "disabled FF must hold";
  sim.put(ce, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
  sim.put(clr, 1);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 0u) << "clear dominates";
}

TEST(SimulatorTest, ResetRestoresPowerOn) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::FD(&hw, d, q, /*init_one=*/true);
  Simulator sim(hw);
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
  sim.put(d, 0);
  sim.cycle();
  EXPECT_EQ(sim.get(q).to_uint(), 0u);
  sim.reset();
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
  EXPECT_EQ(sim.cycle_count(), 1u) << "reset does not rewind the cycle count";
}

TEST(SimulatorTest, CombinationalLoopConvergent) {
  // SR latch from cross-coupled NORs: converges once an input dominates.
  HWSystem hw;
  Wire* s = new Wire(&hw, 1, "s");
  Wire* r = new Wire(&hw, 1, "r");
  Wire* q = new Wire(&hw, 1, "q");
  Wire* qn = new Wire(&hw, 1, "qn");
  new tech::Nor2(&hw, r, qn, q);
  new tech::Nor2(&hw, s, q, qn);
  Simulator sim(hw);
  EXPECT_TRUE(sim.has_comb_cycle());
  sim.put(s, 1);
  sim.put(r, 0);
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
  EXPECT_EQ(sim.get(qn).to_uint(), 0u);
  sim.put(s, 0);
  // Hold state: q=1 stays latched through the feedback path.
  EXPECT_EQ(sim.get(q).to_uint(), 1u);
  EXPECT_EQ(sim.get(qn).to_uint(), 0u);
  sim.put(r, 1);
  EXPECT_EQ(sim.get(q).to_uint(), 0u);
  EXPECT_EQ(sim.get(qn).to_uint(), 1u);
}

TEST(SimulatorTest, OscillatingLoopThrows) {
  // A ring of one inverter cannot settle.
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  new tech::Inv(&hw, a, b);
  new tech::Buf(&hw, b, a);
  Simulator sim(hw);
  // Until inputs are binary the X fixpoint is stable; force a value in.
  // Both nets are primitive-driven, so inject via an initial value instead:
  // the X state is self-consistent, so get() must succeed...
  EXPECT_FALSE(sim.get(a).is_fully_defined());
}

TEST(SimulatorTest, RomReadback) {
  HWSystem hw;
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* data = new Wire(&hw, 8, "data");
  std::array<std::uint64_t, 16> contents{};
  for (std::size_t i = 0; i < 16; ++i) contents[i] = i * 7 + 3;
  new tech::Rom16(&hw, addr, data, contents);
  Simulator sim(hw);
  for (std::uint64_t a = 0; a < 16; ++a) {
    sim.put(addr, a);
    EXPECT_EQ(sim.get(data).to_uint(), (a * 7 + 3) & 0xFF);
  }
}

TEST(SimulatorTest, RamWriteRead) {
  HWSystem hw;
  Wire* addr = new Wire(&hw, 4, "addr");
  Wire* din = new Wire(&hw, 1, "din");
  Wire* we = new Wire(&hw, 1, "we");
  Wire* dout = new Wire(&hw, 1, "dout");
  new tech::Ram16x1s(&hw, addr, din, we, dout);
  Simulator sim(hw);
  // Write 1 to address 5.
  sim.put(addr, 5);
  sim.put(din, 1);
  sim.put(we, 1);
  sim.cycle();
  sim.put(we, 0);
  EXPECT_EQ(sim.get(dout).to_uint(), 1u);
  sim.put(addr, 4);
  EXPECT_EQ(sim.get(dout).to_uint(), 0u);
  sim.put(addr, 5);
  EXPECT_EQ(sim.get(dout).to_uint(), 1u);
}

TEST(SimulatorTest, CarryChainAdder4) {
  // 4-bit ripple-carry adder from LUT half-sums + MUXCY/XORCY.
  HWSystem hw;
  Wire* a = new Wire(&hw, 4, "a");
  Wire* b = new Wire(&hw, 4, "b");
  Wire* s = new Wire(&hw, 4, "s");
  Wire* cin = new Wire(&hw, 1, "cin");
  Wire* carry = cin;
  for (int i = 0; i < 4; ++i) {
    Wire* p = new Wire(&hw, 1);
    new tech::Xor2(&hw, a->gw(i), b->gw(i), p);
    new tech::XorCY(&hw, p, carry, s->gw(i));
    Wire* next = new Wire(&hw, 1);
    new tech::MuxCY(&hw, a->gw(i), carry, p, next);
    carry = next;
  }
  Simulator sim(hw);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      sim.put(a, x);
      sim.put(b, y);
      sim.put(cin, 0);
      EXPECT_EQ(sim.get(s).to_uint(), (x + y) & 0xF);
    }
  }
}

TEST(TestbenchTest, ExpectThrowsWithContext) {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* o = new Wire(&hw, 1, "o");
  new tech::Inv(&hw, a, o);
  Simulator sim(hw);
  Testbench tb(sim);
  tb.put(a, 0);
  tb.expect(o, 1, "inverter");
  EXPECT_THROW(tb.expect(o, 0, "should fail"), SimError);
  tb.set_soft(true);
  tb.expect(o, 0);
  EXPECT_EQ(tb.failures(), 2u);
}

TEST(WaveformTest, RecordsPerCycle) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* q = new Wire(&hw, 1, "q");
  new tech::FD(&hw, d, q);
  Simulator sim(hw);
  WaveformRecorder rec(sim);
  rec.watch(q);
  sim.put(d, 1);
  sim.cycle(3);
  ASSERT_EQ(rec.num_samples(), 3u);
  EXPECT_EQ(rec.traces()[0].samples[0].to_uint(), 1u);
}

TEST(VcdTest, WellFormedOutput) {
  HWSystem hw;
  Wire* d = new Wire(&hw, 1, "d");
  Wire* q = new Wire(&hw, 1, "q");
  Wire* bus = new Wire(&hw, 4, "bus");
  new tech::FD(&hw, d, q);
  Simulator sim(hw);
  WaveformRecorder rec(sim);
  rec.watch(q, "q");
  rec.watch(bus, "bus");
  sim.put(d, 1);
  sim.put(bus, 9);
  sim.cycle(2);
  std::ostringstream os;
  write_vcd(os, rec, "tb");
  std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 4"), std::string::npos);
  EXPECT_NE(vcd.find("b1001"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(SimulatorTest, EvalCountAdvances) {
  HWSystem hw;
  AdderBit fa = make_full_adder(hw);
  Simulator sim(hw);
  sim.put(fa.a, 1);
  sim.propagate();
  std::size_t n1 = sim.eval_count();
  EXPECT_GT(n1, 0u);
  sim.put(fa.b, 1);
  sim.propagate();
  EXPECT_GT(sim.eval_count(), n1);
}

}  // namespace
}  // namespace jhdl
