# Empty compiler generated dependencies file for dds_cosim_test.
# This may be replaced when dependencies are built.
