file(REMOVE_RECURSE
  "CMakeFiles/dds_cosim_test.dir/dds_cosim_test.cpp.o"
  "CMakeFiles/dds_cosim_test.dir/dds_cosim_test.cpp.o.d"
  "dds_cosim_test"
  "dds_cosim_test.pdb"
  "dds_cosim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dds_cosim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
