file(REMOVE_RECURSE
  "CMakeFiles/viewer_test.dir/viewer_test.cpp.o"
  "CMakeFiles/viewer_test.dir/viewer_test.cpp.o.d"
  "viewer_test"
  "viewer_test.pdb"
  "viewer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
