# Empty dependencies file for viewer_test.
# This may be replaced when dependencies are built.
