# Empty compiler generated dependencies file for modgen_test.
# This may be replaced when dependencies are built.
