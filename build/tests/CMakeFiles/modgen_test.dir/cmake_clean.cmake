file(REMOVE_RECURSE
  "CMakeFiles/modgen_test.dir/modgen_test.cpp.o"
  "CMakeFiles/modgen_test.dir/modgen_test.cpp.o.d"
  "modgen_test"
  "modgen_test.pdb"
  "modgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
