file(REMOVE_RECURSE
  "CMakeFiles/modgen2_test.dir/modgen2_test.cpp.o"
  "CMakeFiles/modgen2_test.dir/modgen2_test.cpp.o.d"
  "modgen2_test"
  "modgen2_test.pdb"
  "modgen2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modgen2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
