# Empty dependencies file for modgen2_test.
# This may be replaced when dependencies are built.
