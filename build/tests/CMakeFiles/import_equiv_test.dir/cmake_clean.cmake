file(REMOVE_RECURSE
  "CMakeFiles/import_equiv_test.dir/import_equiv_test.cpp.o"
  "CMakeFiles/import_equiv_test.dir/import_equiv_test.cpp.o.d"
  "import_equiv_test"
  "import_equiv_test.pdb"
  "import_equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/import_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
