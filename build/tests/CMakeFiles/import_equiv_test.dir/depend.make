# Empty dependencies file for import_equiv_test.
# This may be replaced when dependencies are built.
