# Empty dependencies file for tech2_test.
# This may be replaced when dependencies are built.
