file(REMOVE_RECURSE
  "CMakeFiles/tech2_test.dir/tech2_test.cpp.o"
  "CMakeFiles/tech2_test.dir/tech2_test.cpp.o.d"
  "tech2_test"
  "tech2_test.pdb"
  "tech2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
