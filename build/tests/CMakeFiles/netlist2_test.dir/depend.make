# Empty dependencies file for netlist2_test.
# This may be replaced when dependencies are built.
