file(REMOVE_RECURSE
  "CMakeFiles/netlist2_test.dir/netlist2_test.cpp.o"
  "CMakeFiles/netlist2_test.dir/netlist2_test.cpp.o.d"
  "netlist2_test"
  "netlist2_test.pdb"
  "netlist2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
