# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/hdl_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/modgen_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/estimate_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/viewer_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/modgen2_test[1]_include.cmake")
include("/root/repo/build/tests/tech2_test[1]_include.cmake")
include("/root/repo/build/tests/netlist2_test[1]_include.cmake")
include("/root/repo/build/tests/core2_test[1]_include.cmake")
include("/root/repo/build/tests/dds_cosim_test[1]_include.cmake")
include("/root/repo/build/tests/random_circuit_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/import_equiv_test[1]_include.cmake")
include("/root/repo/build/tests/shell_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
