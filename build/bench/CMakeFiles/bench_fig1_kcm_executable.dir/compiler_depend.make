# Empty compiler generated dependencies file for bench_fig1_kcm_executable.
# This may be replaced when dependencies are built.
