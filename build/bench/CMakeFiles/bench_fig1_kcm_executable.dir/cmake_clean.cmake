file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_kcm_executable.dir/bench_fig1_kcm_executable.cpp.o"
  "CMakeFiles/bench_fig1_kcm_executable.dir/bench_fig1_kcm_executable.cpp.o.d"
  "bench_fig1_kcm_executable"
  "bench_fig1_kcm_executable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_kcm_executable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
