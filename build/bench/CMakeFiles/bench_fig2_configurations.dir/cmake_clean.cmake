file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_configurations.dir/bench_fig2_configurations.cpp.o"
  "CMakeFiles/bench_fig2_configurations.dir/bench_fig2_configurations.cpp.o.d"
  "bench_fig2_configurations"
  "bench_fig2_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
