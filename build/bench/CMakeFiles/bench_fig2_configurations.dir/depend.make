# Empty dependencies file for bench_fig2_configurations.
# This may be replaced when dependencies are built.
