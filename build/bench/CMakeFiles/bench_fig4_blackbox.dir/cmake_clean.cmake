file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_blackbox.dir/bench_fig4_blackbox.cpp.o"
  "CMakeFiles/bench_fig4_blackbox.dir/bench_fig4_blackbox.cpp.o.d"
  "bench_fig4_blackbox"
  "bench_fig4_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
