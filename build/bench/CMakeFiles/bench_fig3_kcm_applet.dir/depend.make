# Empty dependencies file for bench_fig3_kcm_applet.
# This may be replaced when dependencies are built.
