file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_kcm_applet.dir/bench_fig3_kcm_applet.cpp.o"
  "CMakeFiles/bench_fig3_kcm_applet.dir/bench_fig3_kcm_applet.cpp.o.d"
  "bench_fig3_kcm_applet"
  "bench_fig3_kcm_applet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_kcm_applet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
