
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_archives.cpp" "bench/CMakeFiles/bench_table1_archives.dir/bench_table1_archives.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_archives.dir/bench_table1_archives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jhdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/jhdl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/modgen/CMakeFiles/jhdl_modgen.dir/DependInfo.cmake"
  "/root/repo/build/src/viewer/CMakeFiles/jhdl_viewer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jhdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/jhdl_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/jhdl_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/jhdl_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
