file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_archives.dir/bench_table1_archives.cpp.o"
  "CMakeFiles/bench_table1_archives.dir/bench_table1_archives.cpp.o.d"
  "bench_table1_archives"
  "bench_table1_archives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_archives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
