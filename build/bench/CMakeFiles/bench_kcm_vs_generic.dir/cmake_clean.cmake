file(REMOVE_RECURSE
  "CMakeFiles/bench_kcm_vs_generic.dir/bench_kcm_vs_generic.cpp.o"
  "CMakeFiles/bench_kcm_vs_generic.dir/bench_kcm_vs_generic.cpp.o.d"
  "bench_kcm_vs_generic"
  "bench_kcm_vs_generic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kcm_vs_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
