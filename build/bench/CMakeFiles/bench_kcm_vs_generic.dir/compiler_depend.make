# Empty compiler generated dependencies file for bench_kcm_vs_generic.
# This may be replaced when dependencies are built.
