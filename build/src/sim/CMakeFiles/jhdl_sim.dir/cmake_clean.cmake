file(REMOVE_RECURSE
  "CMakeFiles/jhdl_sim.dir/simulator.cpp.o"
  "CMakeFiles/jhdl_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/jhdl_sim.dir/testbench.cpp.o"
  "CMakeFiles/jhdl_sim.dir/testbench.cpp.o.d"
  "CMakeFiles/jhdl_sim.dir/vcd.cpp.o"
  "CMakeFiles/jhdl_sim.dir/vcd.cpp.o.d"
  "CMakeFiles/jhdl_sim.dir/waveform.cpp.o"
  "CMakeFiles/jhdl_sim.dir/waveform.cpp.o.d"
  "libjhdl_sim.a"
  "libjhdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
