# Empty dependencies file for jhdl_sim.
# This may be replaced when dependencies are built.
