file(REMOVE_RECURSE
  "libjhdl_sim.a"
)
