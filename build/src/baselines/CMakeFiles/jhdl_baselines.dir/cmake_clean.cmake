file(REMOVE_RECURSE
  "CMakeFiles/jhdl_baselines.dir/remote_eval.cpp.o"
  "CMakeFiles/jhdl_baselines.dir/remote_eval.cpp.o.d"
  "libjhdl_baselines.a"
  "libjhdl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
