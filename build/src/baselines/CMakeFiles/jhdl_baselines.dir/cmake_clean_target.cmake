file(REMOVE_RECURSE
  "libjhdl_baselines.a"
)
