# Empty dependencies file for jhdl_baselines.
# This may be replaced when dependencies are built.
