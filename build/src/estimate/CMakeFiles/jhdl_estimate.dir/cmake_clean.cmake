file(REMOVE_RECURSE
  "CMakeFiles/jhdl_estimate.dir/area.cpp.o"
  "CMakeFiles/jhdl_estimate.dir/area.cpp.o.d"
  "CMakeFiles/jhdl_estimate.dir/layout.cpp.o"
  "CMakeFiles/jhdl_estimate.dir/layout.cpp.o.d"
  "CMakeFiles/jhdl_estimate.dir/timing.cpp.o"
  "CMakeFiles/jhdl_estimate.dir/timing.cpp.o.d"
  "libjhdl_estimate.a"
  "libjhdl_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
