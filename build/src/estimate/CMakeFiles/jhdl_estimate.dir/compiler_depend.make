# Empty compiler generated dependencies file for jhdl_estimate.
# This may be replaced when dependencies are built.
