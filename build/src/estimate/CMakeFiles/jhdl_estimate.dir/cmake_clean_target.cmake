file(REMOVE_RECURSE
  "libjhdl_estimate.a"
)
