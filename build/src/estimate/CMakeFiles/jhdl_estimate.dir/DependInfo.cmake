
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimate/area.cpp" "src/estimate/CMakeFiles/jhdl_estimate.dir/area.cpp.o" "gcc" "src/estimate/CMakeFiles/jhdl_estimate.dir/area.cpp.o.d"
  "/root/repo/src/estimate/layout.cpp" "src/estimate/CMakeFiles/jhdl_estimate.dir/layout.cpp.o" "gcc" "src/estimate/CMakeFiles/jhdl_estimate.dir/layout.cpp.o.d"
  "/root/repo/src/estimate/timing.cpp" "src/estimate/CMakeFiles/jhdl_estimate.dir/timing.cpp.o" "gcc" "src/estimate/CMakeFiles/jhdl_estimate.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/jhdl_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/jhdl_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
