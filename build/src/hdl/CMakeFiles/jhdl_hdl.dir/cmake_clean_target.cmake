file(REMOVE_RECURSE
  "libjhdl_hdl.a"
)
