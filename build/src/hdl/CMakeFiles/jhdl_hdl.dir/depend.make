# Empty dependencies file for jhdl_hdl.
# This may be replaced when dependencies are built.
