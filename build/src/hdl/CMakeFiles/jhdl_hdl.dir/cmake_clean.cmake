file(REMOVE_RECURSE
  "CMakeFiles/jhdl_hdl.dir/cell.cpp.o"
  "CMakeFiles/jhdl_hdl.dir/cell.cpp.o.d"
  "CMakeFiles/jhdl_hdl.dir/hwsystem.cpp.o"
  "CMakeFiles/jhdl_hdl.dir/hwsystem.cpp.o.d"
  "CMakeFiles/jhdl_hdl.dir/primitive.cpp.o"
  "CMakeFiles/jhdl_hdl.dir/primitive.cpp.o.d"
  "CMakeFiles/jhdl_hdl.dir/visitor.cpp.o"
  "CMakeFiles/jhdl_hdl.dir/visitor.cpp.o.d"
  "CMakeFiles/jhdl_hdl.dir/wire.cpp.o"
  "CMakeFiles/jhdl_hdl.dir/wire.cpp.o.d"
  "libjhdl_hdl.a"
  "libjhdl_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
