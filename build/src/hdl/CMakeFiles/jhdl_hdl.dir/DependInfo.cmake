
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdl/cell.cpp" "src/hdl/CMakeFiles/jhdl_hdl.dir/cell.cpp.o" "gcc" "src/hdl/CMakeFiles/jhdl_hdl.dir/cell.cpp.o.d"
  "/root/repo/src/hdl/hwsystem.cpp" "src/hdl/CMakeFiles/jhdl_hdl.dir/hwsystem.cpp.o" "gcc" "src/hdl/CMakeFiles/jhdl_hdl.dir/hwsystem.cpp.o.d"
  "/root/repo/src/hdl/primitive.cpp" "src/hdl/CMakeFiles/jhdl_hdl.dir/primitive.cpp.o" "gcc" "src/hdl/CMakeFiles/jhdl_hdl.dir/primitive.cpp.o.d"
  "/root/repo/src/hdl/visitor.cpp" "src/hdl/CMakeFiles/jhdl_hdl.dir/visitor.cpp.o" "gcc" "src/hdl/CMakeFiles/jhdl_hdl.dir/visitor.cpp.o.d"
  "/root/repo/src/hdl/wire.cpp" "src/hdl/CMakeFiles/jhdl_hdl.dir/wire.cpp.o" "gcc" "src/hdl/CMakeFiles/jhdl_hdl.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
