file(REMOVE_RECURSE
  "libjhdl_tech.a"
)
