# Empty dependencies file for jhdl_tech.
# This may be replaced when dependencies are built.
