file(REMOVE_RECURSE
  "CMakeFiles/jhdl_tech.dir/bram.cpp.o"
  "CMakeFiles/jhdl_tech.dir/bram.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/carry.cpp.o"
  "CMakeFiles/jhdl_tech.dir/carry.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/constants.cpp.o"
  "CMakeFiles/jhdl_tech.dir/constants.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/ff.cpp.o"
  "CMakeFiles/jhdl_tech.dir/ff.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/gates.cpp.o"
  "CMakeFiles/jhdl_tech.dir/gates.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/library.cpp.o"
  "CMakeFiles/jhdl_tech.dir/library.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/lut.cpp.o"
  "CMakeFiles/jhdl_tech.dir/lut.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/memory.cpp.o"
  "CMakeFiles/jhdl_tech.dir/memory.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/pads.cpp.o"
  "CMakeFiles/jhdl_tech.dir/pads.cpp.o.d"
  "CMakeFiles/jhdl_tech.dir/srl.cpp.o"
  "CMakeFiles/jhdl_tech.dir/srl.cpp.o.d"
  "libjhdl_tech.a"
  "libjhdl_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
