
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/bram.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/bram.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/bram.cpp.o.d"
  "/root/repo/src/tech/carry.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/carry.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/carry.cpp.o.d"
  "/root/repo/src/tech/constants.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/constants.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/constants.cpp.o.d"
  "/root/repo/src/tech/ff.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/ff.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/ff.cpp.o.d"
  "/root/repo/src/tech/gates.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/gates.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/gates.cpp.o.d"
  "/root/repo/src/tech/library.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/library.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/library.cpp.o.d"
  "/root/repo/src/tech/lut.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/lut.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/lut.cpp.o.d"
  "/root/repo/src/tech/memory.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/memory.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/memory.cpp.o.d"
  "/root/repo/src/tech/pads.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/pads.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/pads.cpp.o.d"
  "/root/repo/src/tech/srl.cpp" "src/tech/CMakeFiles/jhdl_tech.dir/srl.cpp.o" "gcc" "src/tech/CMakeFiles/jhdl_tech.dir/srl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/jhdl_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
