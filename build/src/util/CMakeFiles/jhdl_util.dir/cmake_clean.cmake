file(REMOVE_RECURSE
  "CMakeFiles/jhdl_util.dir/bitvector.cpp.o"
  "CMakeFiles/jhdl_util.dir/bitvector.cpp.o.d"
  "CMakeFiles/jhdl_util.dir/bytestream.cpp.o"
  "CMakeFiles/jhdl_util.dir/bytestream.cpp.o.d"
  "CMakeFiles/jhdl_util.dir/cipher.cpp.o"
  "CMakeFiles/jhdl_util.dir/cipher.cpp.o.d"
  "CMakeFiles/jhdl_util.dir/compress.cpp.o"
  "CMakeFiles/jhdl_util.dir/compress.cpp.o.d"
  "CMakeFiles/jhdl_util.dir/crc32.cpp.o"
  "CMakeFiles/jhdl_util.dir/crc32.cpp.o.d"
  "CMakeFiles/jhdl_util.dir/json.cpp.o"
  "CMakeFiles/jhdl_util.dir/json.cpp.o.d"
  "CMakeFiles/jhdl_util.dir/logic.cpp.o"
  "CMakeFiles/jhdl_util.dir/logic.cpp.o.d"
  "CMakeFiles/jhdl_util.dir/strings.cpp.o"
  "CMakeFiles/jhdl_util.dir/strings.cpp.o.d"
  "libjhdl_util.a"
  "libjhdl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
