
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitvector.cpp" "src/util/CMakeFiles/jhdl_util.dir/bitvector.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/bitvector.cpp.o.d"
  "/root/repo/src/util/bytestream.cpp" "src/util/CMakeFiles/jhdl_util.dir/bytestream.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/bytestream.cpp.o.d"
  "/root/repo/src/util/cipher.cpp" "src/util/CMakeFiles/jhdl_util.dir/cipher.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/cipher.cpp.o.d"
  "/root/repo/src/util/compress.cpp" "src/util/CMakeFiles/jhdl_util.dir/compress.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/compress.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/util/CMakeFiles/jhdl_util.dir/crc32.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/crc32.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/util/CMakeFiles/jhdl_util.dir/json.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/json.cpp.o.d"
  "/root/repo/src/util/logic.cpp" "src/util/CMakeFiles/jhdl_util.dir/logic.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/logic.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/jhdl_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/jhdl_util.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
