# Empty compiler generated dependencies file for jhdl_util.
# This may be replaced when dependencies are built.
