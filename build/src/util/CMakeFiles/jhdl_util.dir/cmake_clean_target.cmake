file(REMOVE_RECURSE
  "libjhdl_util.a"
)
