file(REMOVE_RECURSE
  "CMakeFiles/jhdl_modgen.dir/adder.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/adder.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/counter.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/counter.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/dds.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/dds.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/ecc.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/ecc.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/encode.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/encode.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/fir.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/fir.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/kcm.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/kcm.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/lfsr.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/lfsr.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/mac.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/mac.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/mult.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/mult.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/register.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/register.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/shifter.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/shifter.cpp.o.d"
  "CMakeFiles/jhdl_modgen.dir/wires.cpp.o"
  "CMakeFiles/jhdl_modgen.dir/wires.cpp.o.d"
  "libjhdl_modgen.a"
  "libjhdl_modgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_modgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
