file(REMOVE_RECURSE
  "libjhdl_modgen.a"
)
