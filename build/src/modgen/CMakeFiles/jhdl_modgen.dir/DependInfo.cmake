
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modgen/adder.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/adder.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/adder.cpp.o.d"
  "/root/repo/src/modgen/counter.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/counter.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/counter.cpp.o.d"
  "/root/repo/src/modgen/dds.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/dds.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/dds.cpp.o.d"
  "/root/repo/src/modgen/ecc.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/ecc.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/ecc.cpp.o.d"
  "/root/repo/src/modgen/encode.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/encode.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/encode.cpp.o.d"
  "/root/repo/src/modgen/fir.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/fir.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/fir.cpp.o.d"
  "/root/repo/src/modgen/kcm.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/kcm.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/kcm.cpp.o.d"
  "/root/repo/src/modgen/lfsr.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/lfsr.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/lfsr.cpp.o.d"
  "/root/repo/src/modgen/mac.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/mac.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/mac.cpp.o.d"
  "/root/repo/src/modgen/mult.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/mult.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/mult.cpp.o.d"
  "/root/repo/src/modgen/register.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/register.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/register.cpp.o.d"
  "/root/repo/src/modgen/shifter.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/shifter.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/shifter.cpp.o.d"
  "/root/repo/src/modgen/wires.cpp" "src/modgen/CMakeFiles/jhdl_modgen.dir/wires.cpp.o" "gcc" "src/modgen/CMakeFiles/jhdl_modgen.dir/wires.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/jhdl_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/jhdl_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
