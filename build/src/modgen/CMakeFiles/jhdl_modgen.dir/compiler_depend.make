# Empty compiler generated dependencies file for jhdl_modgen.
# This may be replaced when dependencies are built.
