file(REMOVE_RECURSE
  "CMakeFiles/jhdl_viewer.dir/hierarchy.cpp.o"
  "CMakeFiles/jhdl_viewer.dir/hierarchy.cpp.o.d"
  "CMakeFiles/jhdl_viewer.dir/layout_view.cpp.o"
  "CMakeFiles/jhdl_viewer.dir/layout_view.cpp.o.d"
  "CMakeFiles/jhdl_viewer.dir/memview.cpp.o"
  "CMakeFiles/jhdl_viewer.dir/memview.cpp.o.d"
  "CMakeFiles/jhdl_viewer.dir/schematic.cpp.o"
  "CMakeFiles/jhdl_viewer.dir/schematic.cpp.o.d"
  "CMakeFiles/jhdl_viewer.dir/waveview.cpp.o"
  "CMakeFiles/jhdl_viewer.dir/waveview.cpp.o.d"
  "libjhdl_viewer.a"
  "libjhdl_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
