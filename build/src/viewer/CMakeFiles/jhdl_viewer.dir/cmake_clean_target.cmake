file(REMOVE_RECURSE
  "libjhdl_viewer.a"
)
