
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viewer/hierarchy.cpp" "src/viewer/CMakeFiles/jhdl_viewer.dir/hierarchy.cpp.o" "gcc" "src/viewer/CMakeFiles/jhdl_viewer.dir/hierarchy.cpp.o.d"
  "/root/repo/src/viewer/layout_view.cpp" "src/viewer/CMakeFiles/jhdl_viewer.dir/layout_view.cpp.o" "gcc" "src/viewer/CMakeFiles/jhdl_viewer.dir/layout_view.cpp.o.d"
  "/root/repo/src/viewer/memview.cpp" "src/viewer/CMakeFiles/jhdl_viewer.dir/memview.cpp.o" "gcc" "src/viewer/CMakeFiles/jhdl_viewer.dir/memview.cpp.o.d"
  "/root/repo/src/viewer/schematic.cpp" "src/viewer/CMakeFiles/jhdl_viewer.dir/schematic.cpp.o" "gcc" "src/viewer/CMakeFiles/jhdl_viewer.dir/schematic.cpp.o.d"
  "/root/repo/src/viewer/waveview.cpp" "src/viewer/CMakeFiles/jhdl_viewer.dir/waveview.cpp.o" "gcc" "src/viewer/CMakeFiles/jhdl_viewer.dir/waveview.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/jhdl_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/jhdl_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jhdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/jhdl_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
