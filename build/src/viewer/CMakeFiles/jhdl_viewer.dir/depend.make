# Empty dependencies file for jhdl_viewer.
# This may be replaced when dependencies are built.
