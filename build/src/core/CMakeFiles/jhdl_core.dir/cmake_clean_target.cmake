file(REMOVE_RECURSE
  "libjhdl_core.a"
)
