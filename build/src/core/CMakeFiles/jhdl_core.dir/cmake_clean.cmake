file(REMOVE_RECURSE
  "CMakeFiles/jhdl_core.dir/applet.cpp.o"
  "CMakeFiles/jhdl_core.dir/applet.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/blackbox.cpp.o"
  "CMakeFiles/jhdl_core.dir/blackbox.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/catalog.cpp.o"
  "CMakeFiles/jhdl_core.dir/catalog.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/feature.cpp.o"
  "CMakeFiles/jhdl_core.dir/feature.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/generators.cpp.o"
  "CMakeFiles/jhdl_core.dir/generators.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/license.cpp.o"
  "CMakeFiles/jhdl_core.dir/license.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/packaging.cpp.o"
  "CMakeFiles/jhdl_core.dir/packaging.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/params.cpp.o"
  "CMakeFiles/jhdl_core.dir/params.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/protect.cpp.o"
  "CMakeFiles/jhdl_core.dir/protect.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/secure.cpp.o"
  "CMakeFiles/jhdl_core.dir/secure.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/shell.cpp.o"
  "CMakeFiles/jhdl_core.dir/shell.cpp.o.d"
  "CMakeFiles/jhdl_core.dir/webpage.cpp.o"
  "CMakeFiles/jhdl_core.dir/webpage.cpp.o.d"
  "libjhdl_core.a"
  "libjhdl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
