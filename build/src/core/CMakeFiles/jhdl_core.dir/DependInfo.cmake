
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/applet.cpp" "src/core/CMakeFiles/jhdl_core.dir/applet.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/applet.cpp.o.d"
  "/root/repo/src/core/blackbox.cpp" "src/core/CMakeFiles/jhdl_core.dir/blackbox.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/blackbox.cpp.o.d"
  "/root/repo/src/core/catalog.cpp" "src/core/CMakeFiles/jhdl_core.dir/catalog.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/catalog.cpp.o.d"
  "/root/repo/src/core/feature.cpp" "src/core/CMakeFiles/jhdl_core.dir/feature.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/feature.cpp.o.d"
  "/root/repo/src/core/generators.cpp" "src/core/CMakeFiles/jhdl_core.dir/generators.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/generators.cpp.o.d"
  "/root/repo/src/core/license.cpp" "src/core/CMakeFiles/jhdl_core.dir/license.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/license.cpp.o.d"
  "/root/repo/src/core/packaging.cpp" "src/core/CMakeFiles/jhdl_core.dir/packaging.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/packaging.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/jhdl_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/params.cpp.o.d"
  "/root/repo/src/core/protect.cpp" "src/core/CMakeFiles/jhdl_core.dir/protect.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/protect.cpp.o.d"
  "/root/repo/src/core/secure.cpp" "src/core/CMakeFiles/jhdl_core.dir/secure.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/secure.cpp.o.d"
  "/root/repo/src/core/shell.cpp" "src/core/CMakeFiles/jhdl_core.dir/shell.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/shell.cpp.o.d"
  "/root/repo/src/core/webpage.cpp" "src/core/CMakeFiles/jhdl_core.dir/webpage.cpp.o" "gcc" "src/core/CMakeFiles/jhdl_core.dir/webpage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/jhdl_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/jhdl_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jhdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/jhdl_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/jhdl_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/modgen/CMakeFiles/jhdl_modgen.dir/DependInfo.cmake"
  "/root/repo/build/src/viewer/CMakeFiles/jhdl_viewer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
