# Empty dependencies file for jhdl_core.
# This may be replaced when dependencies are built.
