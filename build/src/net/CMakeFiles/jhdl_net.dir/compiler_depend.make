# Empty compiler generated dependencies file for jhdl_net.
# This may be replaced when dependencies are built.
