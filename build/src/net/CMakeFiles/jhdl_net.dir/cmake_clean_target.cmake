file(REMOVE_RECURSE
  "libjhdl_net.a"
)
