file(REMOVE_RECURSE
  "CMakeFiles/jhdl_net.dir/cosim_stub.cpp.o"
  "CMakeFiles/jhdl_net.dir/cosim_stub.cpp.o.d"
  "CMakeFiles/jhdl_net.dir/protocol.cpp.o"
  "CMakeFiles/jhdl_net.dir/protocol.cpp.o.d"
  "CMakeFiles/jhdl_net.dir/sim_client.cpp.o"
  "CMakeFiles/jhdl_net.dir/sim_client.cpp.o.d"
  "CMakeFiles/jhdl_net.dir/sim_server.cpp.o"
  "CMakeFiles/jhdl_net.dir/sim_server.cpp.o.d"
  "CMakeFiles/jhdl_net.dir/socket.cpp.o"
  "CMakeFiles/jhdl_net.dir/socket.cpp.o.d"
  "libjhdl_net.a"
  "libjhdl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
