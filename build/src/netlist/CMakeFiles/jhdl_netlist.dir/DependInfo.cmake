
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/design.cpp" "src/netlist/CMakeFiles/jhdl_netlist.dir/design.cpp.o" "gcc" "src/netlist/CMakeFiles/jhdl_netlist.dir/design.cpp.o.d"
  "/root/repo/src/netlist/edif.cpp" "src/netlist/CMakeFiles/jhdl_netlist.dir/edif.cpp.o" "gcc" "src/netlist/CMakeFiles/jhdl_netlist.dir/edif.cpp.o.d"
  "/root/repo/src/netlist/edif_import.cpp" "src/netlist/CMakeFiles/jhdl_netlist.dir/edif_import.cpp.o" "gcc" "src/netlist/CMakeFiles/jhdl_netlist.dir/edif_import.cpp.o.d"
  "/root/repo/src/netlist/edif_reader.cpp" "src/netlist/CMakeFiles/jhdl_netlist.dir/edif_reader.cpp.o" "gcc" "src/netlist/CMakeFiles/jhdl_netlist.dir/edif_reader.cpp.o.d"
  "/root/repo/src/netlist/json_netlist.cpp" "src/netlist/CMakeFiles/jhdl_netlist.dir/json_netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/jhdl_netlist.dir/json_netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/jhdl_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/jhdl_netlist.dir/verilog.cpp.o.d"
  "/root/repo/src/netlist/vhdl.cpp" "src/netlist/CMakeFiles/jhdl_netlist.dir/vhdl.cpp.o" "gcc" "src/netlist/CMakeFiles/jhdl_netlist.dir/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdl/CMakeFiles/jhdl_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/jhdl_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jhdl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
