file(REMOVE_RECURSE
  "CMakeFiles/jhdl_netlist.dir/design.cpp.o"
  "CMakeFiles/jhdl_netlist.dir/design.cpp.o.d"
  "CMakeFiles/jhdl_netlist.dir/edif.cpp.o"
  "CMakeFiles/jhdl_netlist.dir/edif.cpp.o.d"
  "CMakeFiles/jhdl_netlist.dir/edif_import.cpp.o"
  "CMakeFiles/jhdl_netlist.dir/edif_import.cpp.o.d"
  "CMakeFiles/jhdl_netlist.dir/edif_reader.cpp.o"
  "CMakeFiles/jhdl_netlist.dir/edif_reader.cpp.o.d"
  "CMakeFiles/jhdl_netlist.dir/json_netlist.cpp.o"
  "CMakeFiles/jhdl_netlist.dir/json_netlist.cpp.o.d"
  "CMakeFiles/jhdl_netlist.dir/verilog.cpp.o"
  "CMakeFiles/jhdl_netlist.dir/verilog.cpp.o.d"
  "CMakeFiles/jhdl_netlist.dir/vhdl.cpp.o"
  "CMakeFiles/jhdl_netlist.dir/vhdl.cpp.o.d"
  "libjhdl_netlist.a"
  "libjhdl_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jhdl_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
