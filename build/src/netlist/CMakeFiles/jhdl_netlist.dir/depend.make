# Empty dependencies file for jhdl_netlist.
# This may be replaced when dependencies are built.
