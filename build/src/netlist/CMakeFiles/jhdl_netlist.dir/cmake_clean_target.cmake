file(REMOVE_RECURSE
  "libjhdl_netlist.a"
)
