# Empty dependencies file for fir_designer.
# This may be replaced when dependencies are built.
