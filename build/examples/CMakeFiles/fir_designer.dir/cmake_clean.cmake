file(REMOVE_RECURSE
  "CMakeFiles/fir_designer.dir/fir_designer.cpp.o"
  "CMakeFiles/fir_designer.dir/fir_designer.cpp.o.d"
  "fir_designer"
  "fir_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
