# Empty dependencies file for kcm_applet.
# This may be replaced when dependencies are built.
