file(REMOVE_RECURSE
  "CMakeFiles/kcm_applet.dir/kcm_applet.cpp.o"
  "CMakeFiles/kcm_applet.dir/kcm_applet.cpp.o.d"
  "kcm_applet"
  "kcm_applet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcm_applet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
