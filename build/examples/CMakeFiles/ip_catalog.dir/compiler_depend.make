# Empty compiler generated dependencies file for ip_catalog.
# This may be replaced when dependencies are built.
