file(REMOVE_RECURSE
  "CMakeFiles/ip_catalog.dir/ip_catalog.cpp.o"
  "CMakeFiles/ip_catalog.dir/ip_catalog.cpp.o.d"
  "ip_catalog"
  "ip_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
