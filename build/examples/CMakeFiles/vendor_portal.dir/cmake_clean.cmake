file(REMOVE_RECURSE
  "CMakeFiles/vendor_portal.dir/vendor_portal.cpp.o"
  "CMakeFiles/vendor_portal.dir/vendor_portal.cpp.o.d"
  "vendor_portal"
  "vendor_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
