# Empty compiler generated dependencies file for vendor_portal.
# This may be replaced when dependencies are built.
