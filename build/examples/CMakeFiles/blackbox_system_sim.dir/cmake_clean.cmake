file(REMOVE_RECURSE
  "CMakeFiles/blackbox_system_sim.dir/blackbox_system_sim.cpp.o"
  "CMakeFiles/blackbox_system_sim.dir/blackbox_system_sim.cpp.o.d"
  "blackbox_system_sim"
  "blackbox_system_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackbox_system_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
