# Empty compiler generated dependencies file for blackbox_system_sim.
# This may be replaced when dependencies are built.
